//! Cross-crate scenarios wiring substrates together *without* the
//! platform façade — each test checks a seam between two or three
//! crates directly.

use metaverse_dao::dao::{Dao, DaoConfig};
use metaverse_dao::voting::{Choice, VotingScheme};
use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::tx::{Transaction, TxPayload};
use metaverse_privacy::firewall::{DataFlowFirewall, FlowRule};
use metaverse_privacy::pets::{PetPipeline, PrivacyBudget};
use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use metaverse_reputation::sybil::SybilAttack;
use metaverse_social::graph::SocialGraph;
use metaverse_social::propagation::{spread, PropagationConfig, Rumor};
use metaverse_twins::registry::{TwinRegistry, VerifyOutcome};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::DigitalTwin;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_chain(name: &str) -> Chain {
    Chain::poa_single(name, ChainConfig { key_tree_depth: 5, ..ChainConfig::default() })
}

#[test]
fn reputation_weighted_voting_dampens_sybil_takeover() {
    // Seam: reputation → dao. External-weighted ballots use reputation
    // voting weight, so a Sybil swarm of fresh accounts carries little.
    let mut reputation = ReputationEngine::new(EngineConfig {
        neutral_prior_millis: 5_000, // fresh accounts start low
        epoch_action_limit: u32::MAX,
        ..EngineConfig::default()
    });
    let mut dao = Dao::new(
        "gov",
        DaoConfig { scheme: VotingScheme::ExternalWeighted, ..DaoConfig::default() },
    );

    // Five established members with real standing.
    for m in 0..5 {
        let name = format!("member-{m}");
        reputation.register(&name, 0).unwrap();
        reputation.system_delta(&name, 55_000, "history", 0).unwrap();
        dao.add_member(&name).unwrap();
    }
    // Twenty sybils.
    let attack = SybilAttack { puppet_prefix: "sybil".into(), puppets: 20, actions_per_puppet: 0 };
    let _ = attack; // puppets created below as DAO members directly
    for s in 0..20 {
        let name = format!("sybil-{s}");
        reputation.register(&name, 0).unwrap();
        dao.add_member(&name).unwrap();
    }

    let id = dao.propose("member-0", "sybil-backed proposal", 0).unwrap();
    for s in 0..20 {
        let name = format!("sybil-{s}");
        let weight = reputation.voting_weight(&name, 100).unwrap();
        dao.vote_weighted(&name, id, Choice::Yes, weight, 0).unwrap();
    }
    for m in 0..5 {
        let name = format!("member-{m}");
        let weight = reputation.voting_weight(&name, 100).unwrap();
        dao.vote_weighted(&name, id, Choice::No, weight, 0).unwrap();
    }
    let tally = dao.tally(id).unwrap();
    assert!(
        tally.no > tally.yes,
        "5 reputable members outweigh 20 sybils: yes={} no={}",
        tally.yes,
        tally.no
    );
}

#[test]
fn firewall_pet_chain_pipeline_preserves_audit_trail() {
    // Seam: privacy → ledger. A flow allowed with obfuscation passes
    // through a PET pipeline, and its audit event is sealed on-chain.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut chain = small_chain("privacy-auditor");
    let mut firewall = DataFlowFirewall::deny_by_default("alice");
    use metaverse_ledger::audit::{LawfulBasis, SensorClass};

    firewall.set_switch(SensorClass::Gaze, true);
    firewall.set_rule(SensorClass::Gaze, "foveation", FlowRule::RequireObfuscation);

    let user = metaverse_privacy::sensor::UserProfile::random("alice", &mut rng);
    let samples = user.gaze_stream(50, &mut rng);
    let (shipped, decision) = firewall
        .ship(&samples, SensorClass::Gaze, "render-svc", "foveation", LawfulBasis::Consent, 0)
        .unwrap();
    assert_eq!(decision, metaverse_privacy::firewall::FirewallDecision::AllowObfuscated);

    // Obfuscate per the decision before transmission.
    let mut to_send = shipped.to_vec();
    PetPipeline::new().noise(0.5).aggregate(10).apply(&mut to_send, &mut rng).unwrap();
    assert_eq!(to_send.len(), 5, "aggregation compressed the stream");

    for event in firewall.drain_audit_events() {
        chain
            .submit(Transaction::new(event.collector.clone(), TxPayload::DataCollection(event)))
            .unwrap();
    }
    chain.seal_all().unwrap();
    chain.verify_integrity().unwrap();
    let audits = chain
        .iter_txs()
        .filter(|t| matches!(t.payload, TxPayload::DataCollection(_)))
        .count();
    assert_eq!(audits, 1);
}

#[test]
fn dp_budget_exhaustion_stops_release_even_mid_session() {
    // Seam: pets budget + firewall semantics — once epsilon is spent,
    // further releases fail loudly rather than leaking quietly.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let user = metaverse_privacy::sensor::UserProfile::random("alice", &mut rng);
    let mut budget = PrivacyBudget::new(2.0);
    let dp = metaverse_privacy::pets::DifferentialPrivacy { epsilon: 0.9, sensitivity: 1.0 };
    let mut stream = user.gaze_stream(20, &mut rng);
    assert!(dp.release(&mut stream, &mut budget, &mut rng).is_ok());
    assert!(dp.release(&mut stream, &mut budget, &mut rng).is_ok());
    let err = dp.release(&mut stream, &mut budget, &mut rng).unwrap_err();
    assert!(matches!(err, metaverse_privacy::error::PrivacyError::BudgetExhausted { .. }));
    assert!(budget.remaining() < 0.9);
}

#[test]
fn twin_attestations_survive_lossy_sync_and_catch_forgery() {
    // Seam: twins → ledger. Attestations generated by the sync channel
    // are sealed, then used to authenticate (and reject) claims.
    let mut chain = small_chain("twin-auditor");
    let mut registry = TwinRegistry::new();
    let mut twin = DigitalTwin::new(42, "factory-robot", "acme", 4);
    registry.register(&mut chain, 42, "acme").unwrap();

    let mut channel = SyncChannel::new(SyncConfig {
        loss_rate: 0.25,
        reconcile_interval: 40,
        seed: 5,
        ..SyncConfig::default()
    });
    channel.run(&mut twin, 400);
    let attestations = channel.drain_attestations();
    assert!(!attestations.is_empty());
    for (twin_id, digest, tick) in &attestations {
        chain
            .submit(Transaction::new(
                "acme",
                TxPayload::TwinAttestation { twin_id: *twin_id, state: *digest, tick: *tick },
            ))
            .unwrap();
    }
    chain.seal_all().unwrap();

    // The physical state at the last reconciliation verifies; a mutated
    // claim does not. (The replica equals the physical state right after
    // the final reconciliation only if no later update diverged it, so
    // verify against the attested digest via the physical snapshot.)
    let mut forged = twin.physical.clone();
    forged.apply(0, 123.0);
    assert_eq!(registry.verify(&chain, 42, &forged), VerifyOutcome::Forged);
    assert_eq!(registry.verify(&chain, 99, &forged), VerifyOutcome::UnknownTwin);
    chain.verify_integrity().unwrap();
}

#[test]
fn moderation_records_and_governance_share_one_chain() {
    // Seam: moderation + dao → ledger, interleaved in one block stream.
    let mut chain = small_chain("shared");
    let mut ladder = metaverse_moderation::actions::EscalationLadder::new();
    let mut dao = Dao::new("root", DaoConfig::default());
    dao.add_member("alice").unwrap();
    dao.add_member("bob").unwrap();

    ladder.punish("griefer", "mods");
    let id = dao.propose("alice", "amnesty for griefer", 0).unwrap();
    dao.vote("alice", id, Choice::Yes, 0).unwrap();
    dao.vote("bob", id, Choice::Yes, 0).unwrap();
    let (status, _) = dao.close(id, 0).unwrap();
    assert_eq!(status, metaverse_dao::proposal::ProposalStatus::Accepted);
    ladder.amnesty("griefer", "dao:root");

    for payload in ladder.drain_ledger_records().into_iter().chain(dao.drain_ledger_records()) {
        chain.submit(Transaction::new("platform", payload)).unwrap();
    }
    chain.seal_all().unwrap();
    chain.verify_integrity().unwrap();
    assert_eq!(ladder.offenses("griefer"), 0);
    assert!(chain.iter_txs().count() >= 6);
}

#[test]
fn rumor_spread_respects_graph_structure() {
    // Seam: graph generators → propagation. A disconnected component
    // never hears the rumour.
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let mut graph = SocialGraph::empty(20);
    // Two cliques of 10, no bridge.
    for c in 0..2 {
        let base = c * 10;
        for i in 0..10 {
            for j in (i + 1)..10 {
                graph.add_edge(base + i, base + j);
            }
        }
    }
    let rumor = Rumor { veracity: false, virality: 1.0 };
    let config = PropagationConfig { transmission: 1.0, fact_check: 0.0, ..Default::default() };
    let (report, states) = spread(&graph, rumor, &[0], &config, &mut rng, |_, _| true);
    assert!((report.outbreak_size - 0.5).abs() < 1e-9, "exactly one clique infected");
    assert!(states[10..].iter().all(|s| *s == metaverse_social::propagation::NodeState::Susceptible));
}

#[test]
fn escrowed_asset_sale_settles_atomically_on_chain() {
    // Seam: ledger escrow smart-records → assets registry. The escrow
    // decides; the registry executes the decided transfer; the chain
    // carries the whole story.
    use metaverse_assets::registry::NftRegistry;
    use metaverse_ledger::escrow::{EscrowBook, EscrowState};

    let mut chain = small_chain("escrow-validator");
    let mut registry = NftRegistry::new();
    let mut book = EscrowBook::new();

    let asset = registry.mint("seller", "meta://land/7", b"parcel-7", 0.9, 0).unwrap();
    let escrow = book.open(asset, "seller", 500, 100).unwrap();
    book.fund(escrow, "buyer", 500, 10).unwrap();
    let settled = book.settle(escrow, 11).unwrap();
    assert_eq!(settled.state, EscrowState::Settled);

    // Execute the settlement against the registry and publish both
    // subsystems' records.
    registry.transfer(asset, "seller", "buyer", 500, 11).unwrap();
    for payload in book.drain_ledger_records().into_iter().chain(registry.drain_ledger_records()) {
        chain.submit(Transaction::new("platform", payload)).unwrap();
    }
    chain.seal_all().unwrap();
    chain.verify_integrity().unwrap();

    assert_eq!(registry.get(asset).unwrap().owner, "buyer");
    // Both the escrow transfer record and the registry transfer are
    // visible on-chain (double-entry transparency).
    let transfers = chain
        .iter_txs()
        .filter(|t| matches!(t.payload, TxPayload::AssetTransfer { price: 500, .. }))
        .count();
    assert_eq!(transfers, 2);
}

#[test]
fn expired_escrow_never_moves_the_asset() {
    use metaverse_assets::registry::NftRegistry;
    use metaverse_ledger::escrow::EscrowBook;

    let mut registry = NftRegistry::new();
    let mut book = EscrowBook::new();
    let asset = registry.mint("seller", "meta://land/8", b"parcel-8", 0.9, 0).unwrap();
    let escrow = book.open(asset, "seller", 500, 10).unwrap();
    book.fund(escrow, "buyer", 300, 5).unwrap(); // partial
    let refund = book.expire(escrow, 11).unwrap();
    assert_eq!(refund, 300);
    assert!(book.settle(escrow, 12).is_err(), "refunded escrow cannot settle");
    assert_eq!(registry.get(asset).unwrap().owner, "seller", "asset untouched");
}
