//! Smoke tests over the full experiment suite: every experiment runs,
//! produces well-formed tables, and reproduces deterministically for a
//! fixed seed. (Per-experiment *shape* assertions live next to each
//! experiment in `metaverse-bench`.)

use metaverse_bench::experiments::{run_all, run_direct};

#[test]
fn all_experiments_run_and_are_well_formed() {
    let results = run_all(metaverse_bench::DEFAULT_SEED);
    assert_eq!(results.len(), 28);
    for (i, result) in results.iter().enumerate() {
        assert_eq!(result.id, format!("E{}", i + 1));
        assert!(!result.title.is_empty());
        assert!(!result.claim.is_empty(), "{}: claim missing", result.id);
        assert!(!result.tables.is_empty(), "{}: no tables", result.id);
        for table in &result.tables {
            assert!(!table.headers.is_empty());
            assert!(!table.rows.is_empty(), "{}: empty table {:?}", result.id, table.caption);
            for row in &table.rows {
                assert_eq!(row.len(), table.headers.len(), "{}: ragged row", result.id);
            }
        }
        assert!(!result.notes.is_empty(), "{}: no notes", result.id);
        // Render and JSON serialisation never panic and carry the id.
        assert!(result.render().contains(&result.id));
        assert!(result.to_json().contains(&result.id));
    }
}

// The rerun-based tests below cover the direct-call experiments
// (E1–E19) only: the gateway-scale experiments (E20–E28) replay a
// 120k-op stream per cell, and each already has a dedicated
// re-run/byte-identity gate (`gateway/tests/determinism.rs`,
// `gateway/tests/replication_determinism.rs`, and the per-experiment
// shape tests), so repeating them here would add minutes per call
// without adding coverage.

#[test]
fn experiments_are_deterministic_for_fixed_seed() {
    let a = run_direct(17);
    let b = run_direct(17);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_json(), y.to_json(), "{} not deterministic", x.id);
    }
}

#[test]
fn experiments_vary_with_seed_where_stochastic() {
    let a = run_direct(17);
    let b = run_direct(18);
    // At least half the experiments should produce different numbers
    // under a different seed (E14 is deterministic by design).
    let differing = a
        .iter()
        .zip(&b)
        .filter(|(x, y)| x.to_json() != y.to_json())
        .count();
    assert!(differing >= 7, "only {differing} experiments varied with seed");
}
