//! End-to-end integration tests driving the whole stack through the
//! `MetaversePlatform` façade.

use metaverse_core::module::{ModuleDescriptor, ModuleKind};
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::policy::Jurisdiction;
use metaverse_ledger::audit::{DataCollectionEvent, LawfulBasis, SensorClass};
use metaverse_ledger::tx::TxPayload;
use metaverse_moderation::actions::ModAction;
use metaverse_privacy::firewall::FlowRule;
use metaverse_world::geometry::Vec2;
use metaverse_world::world::{InteractionKind, InteractionOutcome};

fn platform_with_users(users: &[&str]) -> MetaversePlatform {
    let mut p = MetaversePlatform::builder().build();
    for u in users {
        p.register_user(u).unwrap();
    }
    p
}

#[test]
fn full_lifecycle_governance_assets_moderation_on_one_ledger() {
    let mut p = platform_with_users(&["alice", "bob", "carol", "dave"]);
    p.deposit("bob", 10_000);

    // Governance.
    let prop = p.propose("assets", "alice", "Add creator royalties").unwrap();
    for (voter, support) in [("alice", true), ("bob", true), ("carol", true), ("dave", false)] {
        p.vote("assets", voter, prop, support).unwrap();
    }
    let (accepted, _) = p.close_proposal("assets", prop).unwrap();
    assert!(accepted);

    // Assets.
    let art = p.mint_asset("alice", "meta://a/1", b"artwork", 0.8).unwrap();
    p.list_asset("alice", art, 500).unwrap();
    p.buy_asset("bob", art).unwrap();

    // Moderation.
    assert_eq!(p.report("alice", "dave").unwrap(), ModAction::Warn);

    // Privacy flows.
    {
        let fw = p.firewall_mut("carol").unwrap();
        fw.set_switch(SensorClass::Audio, true);
        fw.set_rule(SensorClass::Audio, "voice-chat", FlowRule::Allow);
        fw.request_flow(SensorClass::Audio, "chat-svc", "voice-chat", LawfulBasis::Consent, 64, 0);
    }

    // Commit and verify: one ledger carries all four subsystems.
    p.advance_ticks(10);
    let sealed = p.commit_epoch().unwrap();
    assert!(sealed >= 1);
    p.verify_ledger().unwrap();

    let kinds: Vec<&'static str> = p
        .chain()
        .iter_txs()
        .map(|tx| match &tx.payload {
            TxPayload::ProposalCreated { .. } => "proposal",
            TxPayload::VoteCast { .. } => "vote",
            TxPayload::ProposalDecided { .. } => "decision",
            TxPayload::AssetMint { .. } => "mint",
            TxPayload::AssetTransfer { .. } => "transfer",
            TxPayload::ReputationDelta { .. } => "reputation",
            TxPayload::ModerationAction { .. } => "moderation",
            TxPayload::DataCollection(_) => "collection",
            _ => "other",
        })
        .collect();
    for expected in
        ["proposal", "vote", "decision", "mint", "transfer", "reputation", "moderation", "collection"]
    {
        assert!(kinds.contains(&expected), "missing {expected} on chain: {kinds:?}");
    }
}

#[test]
fn light_client_can_prove_any_platform_action() {
    let mut p = platform_with_users(&["alice", "bob"]);
    let prop = p.propose("root", "alice", "constitution v2").unwrap();
    p.vote("root", "alice", prop, true).unwrap();
    p.vote("root", "bob", prop, true).unwrap();
    p.close_proposal("root", prop).unwrap();
    p.commit_epoch().unwrap();

    // Prove every transaction on the chain with only header + proof.
    let ids: Vec<_> = p.chain().iter_txs().map(|t| t.id()).collect();
    assert!(!ids.is_empty());
    for id in ids {
        let (header, proof) = p.chain().prove_tx(&id).expect("indexed");
        let (h, i) = p.chain().find_tx(&id).unwrap();
        let tx = &p.chain().block_at(h).unwrap().transactions[i];
        assert!(proof.verify(&header.tx_root, &tx.canonical_bytes()));
    }
}

#[test]
fn world_interactions_respect_governed_privacy_tools() {
    let mut p = platform_with_users(&["alice", "troll"]);
    let a = p.enter_world("alice", "wanderer", Vec2::new(10.0, 10.0)).unwrap();
    let t = p.enter_world("troll", "lurker", Vec2::new(11.0, 10.0)).unwrap();

    // Unprotected: the approach lands.
    assert_eq!(
        p.world_mut().interact(t, a, InteractionKind::Approach).unwrap(),
        InteractionOutcome::Delivered
    );
    // Alice enables her bubble (the tool E3 evaluates); now it blocks.
    p.world_mut().avatar_mut(a).unwrap().enable_bubble(4.0);
    assert_eq!(
        p.world_mut().interact(t, a, InteractionKind::Approach).unwrap(),
        InteractionOutcome::BlockedByBubble
    );
    // The attempt trail is observable (for moderation evidence).
    let blocked = p
        .world()
        .events()
        .iter()
        .filter(|e| e.outcome == InteractionOutcome::BlockedByBubble)
        .count();
    assert_eq!(blocked, 1);
}

#[test]
fn repeated_epochs_accumulate_consistent_history() {
    let mut p = platform_with_users(&["alice", "bob"]);
    for epoch in 0..5 {
        let prop = p.propose("privacy", "alice", &format!("tweak {epoch}")).unwrap();
        p.vote("privacy", "alice", prop, true).unwrap();
        p.vote("privacy", "bob", prop, epoch % 2 == 0).unwrap();
        p.close_proposal("privacy", prop).unwrap();
        p.advance_ticks(50);
        p.commit_epoch().unwrap();
        p.verify_ledger().unwrap();
    }
    let decisions = p
        .chain()
        .iter_txs()
        .filter(|t| matches!(t.payload, TxPayload::ProposalDecided { .. }))
        .count();
    assert_eq!(decisions, 5);
    // Ticks are monotone across blocks.
    let ticks: Vec<u64> = p.chain().blocks().iter().map(|b| b.header.tick).collect();
    assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "{ticks:?}");
}

#[test]
fn jurisdiction_swap_is_recorded_and_effective() {
    let mut p = platform_with_users(&["alice"]);
    p.record_collection(DataCollectionEvent {
        collector: "svc".into(),
        subject: "alice".into(),
        sensor: SensorClass::Gaze,
        purpose: "ui".into(),
        basis: LawfulBasis::LegitimateInterest,
        tick: 0,
        bytes: 10,
    });
    assert!(!p.compliance_report().compliant);
    p.set_jurisdiction(Jurisdiction::ccpa());
    assert!(p.compliance_report().compliant);
    p.commit_epoch().unwrap();
    // The swap itself is on the ledger.
    let swaps = p
        .chain()
        .iter_txs()
        .filter(|t| matches!(&t.payload, TxPayload::Note { text } if text.contains("policy:CCPA")))
        .count();
    assert_eq!(swaps, 1);
}

#[test]
fn ethics_audit_tracks_module_changes_live() {
    let mut p = platform_with_users(&["alice"]);
    assert!(p.ethics_audit().fully_ethical());
    let mut opaque = ModuleDescriptor::open(ModuleKind::Reputation, "hidden-score");
    opaque.transparent = false;
    p.install_module(opaque);
    assert!(!p.ethics_audit().fully_ethical());
    p.install_module(ModuleDescriptor::open(ModuleKind::Reputation, "open-score"));
    assert!(p.ethics_audit().fully_ethical());
}

#[test]
fn banned_reputation_blocks_marketplace_but_not_governance() {
    // Design point: losing marketplace admission (reputation) must not
    // disenfranchise a member's vote — rights layering.
    let mut p = platform_with_users(&["alice", "bob"]);
    p.reputation_mut().system_delta("alice", -40_000, "sanction", 0).unwrap();
    let art = p.mint_asset("alice", "meta://x", b"c", 0.9).unwrap();
    assert!(p.list_asset("alice", art, 10).is_err(), "market gate applies");
    let prop = p.propose("root", "alice", "appeal my sanction").unwrap();
    p.vote("root", "alice", prop, true).unwrap(); // still allowed
    p.vote("root", "bob", prop, true).unwrap();
    let (accepted, _) = p.close_proposal("root", prop).unwrap();
    assert!(accepted);
}
