//! A virtual NFT gallery under attack: honest creators, one scam mill,
//! community reports, and the reputation gate doing its job.
//!
//! Dramatises the §IV-A scenario from the paper: an open creator market,
//! scammers exploiting it, and the community's reputation-based remedy.
//!
//! ```text
//! cargo run --example virtual_gallery
//! ```

use metaverse_core::platform::MetaversePlatform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = MetaversePlatform::builder().build();

    // A gallery of honest creators and collectors — and one scam mill.
    let creators = ["ayla", "botan", "chike", "dara"];
    let collectors = ["kei", "lio", "mira", "noor", "oki"];
    for user in creators.iter().chain(collectors.iter()) {
        platform.register_user(user)?;
    }
    platform.register_user("scam-mill")?;
    for collector in &collectors {
        platform.deposit(collector, 10_000);
    }

    println!("— opening night —");
    let mut round = 0u64;
    let mut minted = Vec::new();
    for creator in &creators {
        let content = format!("original-artwork-by-{creator}");
        let id = platform.mint_asset(
            creator,
            &format!("meta://gallery/{creator}/1"),
            content.as_bytes(),
            0.9,
        )?;
        platform.list_asset(creator, id, 400)?;
        minted.push(id);
        println!("  {creator} lists piece #{id}");
    }

    // Collectors buy; burned buyers report the mill; the mill restocks
    // every day — until the reputation gate slams shut.
    println!("— trading days —");
    let mut scam_serial = 0;
    for day in 0..6 {
        round += 1;
        platform.advance_ticks(1);
        // The mill restocks with fresh derivatives each morning.
        let mut rejected = false;
        for _ in 0..4 {
            scam_serial += 1;
            let content = format!("low-effort-copy-{scam_serial}");
            let id = platform.mint_asset(
                "scam-mill",
                &format!("meta://gallery/scam/{scam_serial}"),
                content.as_bytes(),
                0.05,
            )?;
            if platform.list_asset("scam-mill", id, 50).is_err() {
                rejected = true;
            }
        }
        if rejected {
            println!("  day {round}: scam-mill's listings bounce off the reputation gate");
        }
        let listings: Vec<_> =
            platform.market().listings().iter().map(|l| (l.asset, l.seller.clone())).collect();
        for (i, collector) in collectors.iter().enumerate() {
            if let Some((asset, seller)) = listings.get((day + i) % listings.len().max(1)) {
                if platform.buy_asset(collector, *asset).is_ok() {
                    let quality = platform.assets().get(*asset).unwrap().quality;
                    if quality < 0.2 {
                        // A scam purchase: report the seller.
                        let action = platform.report(collector, seller)?;
                        println!(
                            "  day {round}: {collector} got burned by {seller} → report ({action:?})"
                        );
                    } else {
                        let _ = platform.endorse(collector, seller);
                    }
                }
            }
        }
        platform.commit_epoch()?;
    }

    // The gate: scam-mill's reputation has collapsed below the
    // marketplace threshold, so its next listing bounces.
    println!("— aftermath —");
    for who in ["ayla", "scam-mill"] {
        println!("  reputation[{who}] = {:.1} points", platform.reputation_points(who)?);
    }
    let next_scam =
        platform.mint_asset("scam-mill", "meta://gallery/scam/next", b"yet-another-copy", 0.05)?;
    match platform.list_asset("scam-mill", next_scam, 50) {
        Err(e) => println!("  scam-mill tries to list again → rejected: {e}"),
        Ok(()) => println!("  scam-mill slipped through (raise the gate?)"),
    }
    let ayla_next = platform.mint_asset("ayla", "meta://gallery/ayla/2", b"new-original", 0.95)?;
    platform.list_asset("ayla", ayla_next, 500)?;
    println!("  ayla lists a new piece without friction");

    // Everything is on the ledger.
    platform.commit_epoch()?;
    platform.verify_ledger()?;
    println!(
        "ledger: height {}, all {} assets' provenance publicly verifiable",
        platform.chain().height(),
        platform.assets().len()
    );
    Ok(())
}
