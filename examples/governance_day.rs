//! A governance day: scoped DAO votes, a jurisdiction swap when the
//! platform expands into a new region, and the ethics audit gating it
//! all — the paper's Figure-3 architecture end to end.
//!
//! ```text
//! cargo run --example governance_day
//! ```

use metaverse_core::module::{ModuleDescriptor, ModuleKind};
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::policy::Jurisdiction;
use metaverse_ledger::audit::{DataCollectionEvent, LawfulBasis, SensorClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = MetaversePlatform::builder().build();
    let citizens = ["ana", "bea", "cal", "dev", "eli", "fay"];
    for c in &citizens {
        platform.register_user(c)?;
    }

    // Morning: the privacy DAO debates stronger bubble defaults.
    println!("— 09:00 privacy DAO —");
    let p1 = platform.propose("privacy", "ana", "Raise default bubble radius to 4 m")?;
    for (i, c) in citizens.iter().enumerate() {
        platform.vote("privacy", c, p1, i % 3 != 2)?; // 4 yes, 2 no
    }
    let (accepted, tally) = platform.close_proposal("privacy", p1)?;
    println!("  bubble proposal: accepted={accepted} ({} / {})", tally.yes, tally.no);

    // Midday: the moderation DAO bans a repeat offender.
    println!("— 12:00 moderation DAO —");
    platform.register_user("griefer")?;
    for reporter in &citizens[..3] {
        let action = platform.report(reporter, "griefer")?;
        println!("  report by {reporter} → {action:?}");
    }

    // Afternoon: expansion to California. The policy module swaps from
    // GDPR to CCPA; the same collected data is re-evaluated.
    println!("— 15:00 regulation swap —");
    platform.record_collection(DataCollectionEvent {
        collector: "analytics-svc".into(),
        subject: "ana".into(),
        sensor: SensorClass::Gaze,
        purpose: "engagement".into(),
        basis: LawfulBasis::LegitimateInterest,
        tick: platform.tick(),
        bytes: 2048,
    });
    for collector in ["render-svc", "voice-svc", "social-svc"] {
        platform.record_collection(DataCollectionEvent {
            collector: collector.into(),
            subject: "bea".into(),
            sensor: SensorClass::Audio,
            purpose: "chat".into(),
            basis: LawfulBasis::Consent,
            tick: platform.tick(),
            bytes: 2048,
        });
    }
    let before = platform.compliance_report();
    println!(
        "  under {}: {} findings",
        before.jurisdiction,
        before.findings.len()
    );
    platform.set_jurisdiction(Jurisdiction::ccpa());
    let after = platform.compliance_report();
    println!("  under {}: {} findings (module swapped, same data)", after.jurisdiction, after.findings.len());

    // Evening: the root DAO considers an opaque AI moderator. The
    // ethics audit catches it before and after.
    println!("— 18:00 ethics audit —");
    println!(
        "  before: fully ethical = {}",
        platform.ethics_audit().fully_ethical()
    );
    let mut blackbox = ModuleDescriptor::open(ModuleKind::Moderation, "vendor-blackbox-ai");
    blackbox.transparent = false;
    platform.install_module(blackbox);
    let audit = platform.ethics_audit();
    println!("  after installing opaque AI: fully ethical = {}", audit.fully_ethical());
    for finding in &audit.findings {
        println!("    finding [{:?}]: {}", finding.layer, finding.check);
    }
    // The community reverses the decision.
    platform.install_module(ModuleDescriptor::open(
        ModuleKind::Moderation,
        "community-auditable-moderation",
    ));
    println!(
        "  after community reversal: fully ethical = {}",
        platform.ethics_audit().fully_ethical()
    );

    // Night: everything to the ledger.
    platform.advance_ticks(200);
    let blocks = platform.commit_epoch()?;
    platform.verify_ledger()?;
    println!("— 23:59 commit: {blocks} block(s), chain height {} —", platform.chain().height());
    Ok(())
}
