//! Digital-twin commerce: a factory robot's twin is kept in sync over a
//! lossy link, its state attested on-chain, and finally sold through an
//! escrow smart-record — §IV-A's digital-twin ownership story end to
//! end.
//!
//! ```text
//! cargo run --example factory_twin
//! ```

use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::escrow::{EscrowBook, EscrowState};
use metaverse_ledger::tx::{Transaction, TxPayload};
use metaverse_twins::registry::{TwinRegistry, VerifyOutcome};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::DigitalTwin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chain = Chain::poa_single(
        "factory-validator",
        ChainConfig { key_tree_depth: 6, ..ChainConfig::default() },
    );
    let mut twins = TwinRegistry::new();
    let mut escrows = EscrowBook::new();

    // 1. Acme registers robot #42's twin and streams a shift of state
    //    changes over a 15%-lossy industrial link.
    let mut robot = DigitalTwin::new(42, "welder-42", "acme", 6);
    twins.register(&mut chain, 42, "acme")?;
    let mut channel = SyncChannel::new(SyncConfig {
        loss_rate: 0.15,
        reconcile_interval: 50,
        seed: 2026,
        ..SyncConfig::default()
    });
    let report = channel.run(&mut robot, 1000);
    println!(
        "shift complete: {} updates lost, mean divergence {:.3}, {} reconciliations",
        report.updates_lost, report.mean_divergence, report.reconciliations
    );

    // 2. Every reconciliation snapshot is attested on the ledger.
    for (twin_id, digest, tick) in channel.drain_attestations() {
        chain.submit(Transaction::new(
            "acme",
            TxPayload::TwinAttestation { twin_id, state: digest, tick },
        ))?;
    }
    chain.seal_all()?;
    println!("attestations sealed; chain height {}", chain.height());

    // 3. A buyer checks authenticity before purchase: the genuine state
    //    verifies, a doctored spec sheet does not.
    twins.attest(&mut chain, 42, &robot.physical, 1000)?;
    chain.seal_all()?;
    match twins.verify(&chain, 42, &robot.physical) {
        VerifyOutcome::Authentic { height } => {
            println!("buyer verifies the robot's state: attested at block {height}")
        }
        other => println!("unexpected: {other:?}"),
    }
    let mut doctored = robot.physical.clone();
    doctored.apply(0, 9999.0); // "barely used!"
    println!(
        "doctored spec sheet verification: {:?}",
        twins.verify(&chain, 42, &doctored)
    );

    // 4. The sale goes through an escrow smart-record: funds locked,
    //    then settled atomically.
    let escrow = escrows.open(42, "acme", 75_000, 2000)?;
    escrows.fund(escrow, "beta-corp", 75_000, 1100)?;
    let settled = escrows.settle(escrow, 1101)?;
    assert_eq!(settled.state, EscrowState::Settled);
    for payload in escrows.drain_ledger_records() {
        chain.submit(Transaction::new("platform", payload))?;
    }
    chain.seal_all()?;
    chain.verify_integrity()?;
    println!(
        "escrow settled: welder-42 sold to {} for {} — full provenance on-chain ({} blocks verified)",
        settled.buyer.as_deref().unwrap_or("?"),
        settled.price,
        chain.height()
    );
    Ok(())
}
