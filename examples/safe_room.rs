//! Safety and sensory privacy in one room-scale session: PET-filtered
//! gaze telemetry, APF redirected walking, and shadow avatars for a
//! co-located friend — §II-A and §II-C running together.
//!
//! ```text
//! cargo run --example safe_room
//! ```

use metaverse_privacy::attack::PreferenceInferenceAttack;
use metaverse_privacy::pets::PetPipeline;
use metaverse_privacy::sensor::UserProfile;
use metaverse_safety::redirect::{simulate_walk, RedirectionConfig};
use metaverse_safety::room::PhysicalRoom;
use metaverse_safety::shadow::{run_shadow_sim, ShadowConfig};
use metaverse_world::geometry::Vec2;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // The living room: 5×4 m with a coffee table and a plant.
    let mut room = PhysicalRoom::empty(5.0, 4.0);
    room.add_obstacle(Vec2::new(1.2, 1.0), 0.4); // coffee table
    room.add_obstacle(Vec2::new(4.2, 3.2), 0.3); // plant
    println!("room: 5×4 m, 2 obstacles");

    // 1. Sensory privacy: headsets stream gaze data to the game, but
    //    only after the on-device PET pipeline has run. Measured over a
    //    lobby of 30 users, the inference attack collapses toward coin
    //    flipping.
    let users: Vec<UserProfile> =
        (0..30).map(|i| UserProfile::random(format!("user-{i}"), &mut rng)).collect();
    let pipeline = PetPipeline::new().noise(3.0).aggregate(50);
    let mut raw_cases = Vec::new();
    let mut pet_cases = Vec::new();
    for user in &users {
        let raw = user.gaze_stream(200, &mut rng);
        let mut protected = raw.clone();
        pipeline.apply(&mut protected, &mut rng).expect("valid PET parameters");
        raw_cases.push((raw, user.gaze.prefers_a));
        pet_cases.push((protected, user.gaze.prefers_a));
    }
    let attack = PreferenceInferenceAttack::default();
    println!("gaze → preference attack over 30 users:");
    println!("  on raw streams:      {:.0}% correct", attack.accuracy(&raw_cases) * 100.0);
    println!("  on PET-filtered:     {:.0}% correct (chance = 50%)", attack.accuracy(&pet_cases) * 100.0);

    // 2. Solo walking: redirected walking halves the immersion breaks.
    println!("walking 300 virtual metres:");
    for (label, enabled, gain) in
        [("no redirection", false, 0.0), ("APF redirection", true, 1.0)]
    {
        let mut walk_rng = ChaCha8Rng::seed_from_u64(7);
        let out = simulate_walk(
            &room,
            &RedirectionConfig { enabled, gain, ..RedirectionConfig::default() },
            300.0,
            &mut walk_rng,
        );
        println!(
            "  {label:16} → {} resets ({:.1} per 100 m), {} collisions",
            out.resets, out.resets_per_100m, out.collisions
        );
    }

    // 3. A friend joins in the same physical room: shadow avatars keep
    //    the two from walking into each other.
    println!("co-located session (2 users, 150 m each):");
    for (label, shadows) in [("shadows off", false), ("shadows on", true)] {
        let mut sim_rng = ChaCha8Rng::seed_from_u64(9);
        let report = run_shadow_sim(
            &room,
            &ShadowConfig { users: 2, shadows_enabled: shadows, ..ShadowConfig::default() },
            &mut sim_rng,
        );
        println!(
            "  {label:12} → {} body contacts ({:.2} per 100 m)",
            report.person_collisions, report.collisions_per_100m
        );
    }
}
