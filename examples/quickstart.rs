//! Quickstart: stand up a metaverse platform, govern it, trade in it,
//! and read everything back off the transparency ledger.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use metaverse_core::platform::MetaversePlatform;
use metaverse_ledger::audit::{LawfulBasis, SensorClass};
use metaverse_ledger::tx::TxPayload;
use metaverse_privacy::firewall::FlowRule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A platform with the paper's recommended defaults: GDPR policy
    //    module, deny-by-default sensor firewalls, reputation-gated
    //    marketplace, scoped DAOs, all modules transparent.
    let mut platform = MetaversePlatform::builder().build();
    for user in ["alice", "bob", "carol"] {
        platform.register_user(user)?;
    }
    println!(
        "platform up: {} users, jurisdiction {}",
        platform.user_count(),
        platform.jurisdiction_name()
    );

    // 2. Governance: alice proposes a privacy change, everyone votes.
    let proposal = platform.propose("privacy", "alice", "Enable privacy bubbles by default")?;
    platform.vote("privacy", "alice", proposal, true)?;
    platform.vote("privacy", "bob", proposal, true)?;
    platform.vote("privacy", "carol", proposal, false)?;
    let (accepted, tally) = platform.close_proposal("privacy", proposal)?;
    println!("proposal #{proposal}: accepted={accepted} (yes={} no={})", tally.yes, tally.no);

    // 3. Assets: alice mints and sells an artwork through the
    //    reputation-gated market.
    platform.deposit("bob", 500);
    let art = platform.mint_asset("alice", "meta://gallery/sunrise", b"sunrise-pixels", 0.92)?;
    platform.list_asset("alice", art, 120)?;
    platform.buy_asset("bob", art)?;
    println!("asset #{art} sold to {}", platform.assets().get(art).unwrap().owner);

    // 4. Privacy: alice opens exactly one sensor flow; everything else
    //    stays dark. The allowed flow emits a visual cue and an audit
    //    event; the denied ad-profiling flow emits nothing.
    let firewall = platform.firewall_mut("alice").expect("alice registered");
    firewall.set_switch(SensorClass::HeadMovement, true);
    firewall.set_rule(SensorClass::HeadMovement, "rendering", FlowRule::Allow);
    // Head movement is biometric under GDPR Art. 9, so the platform
    // asked for explicit consent when the switch was flipped.
    firewall.request_flow(
        SensorClass::HeadMovement,
        "render-svc",
        "rendering",
        LawfulBasis::Consent,
        256,
        0,
    );
    firewall.request_flow(SensorClass::Gaze, "ads-svc", "profiling", LawfulBasis::None, 256, 0);
    println!("firewall cues: {} (denied flows never blink)", firewall.cue_log().len());

    // 5. Commit: every action above lands on the proof-of-authority
    //    ledger and the whole chain re-verifies from genesis.
    let blocks = platform.commit_epoch()?;
    platform.verify_ledger()?;
    println!("sealed {blocks} block(s); chain height {}", platform.chain().height());

    // 6. Transparency: read the governance trail back off the chain.
    let votes = platform
        .chain()
        .iter_txs()
        .filter(|tx| matches!(tx.payload, TxPayload::VoteCast { .. }))
        .count();
    println!("votes visible on-chain: {votes}");

    // 7. Compliance + ethics: the two audits of the paper's Figure 3.
    let compliance = platform.compliance_report();
    println!(
        "compliance under {}: {} ({} findings)",
        compliance.jurisdiction,
        if compliance.compliant { "clean" } else { "violations" },
        compliance.findings.len()
    );
    let ethics = platform.ethics_audit();
    println!(
        "ethics audit: {}",
        if ethics.fully_ethical() { "fully ethical" } else { "findings raised" }
    );
    for (layer, passed, total) in &ethics.scores {
        println!("  {layer:?}: {passed}/{total}");
    }
    Ok(())
}
