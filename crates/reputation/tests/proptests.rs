//! Property-based tests for reputation invariants.

use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use metaverse_reputation::score::{ReputationScore, MAX_SCORE_MILLIS};
use proptest::prelude::*;

proptest! {
    /// Scores never escape [0, MAX] under any delta sequence.
    #[test]
    fn score_always_bounded(
        prior in 0i64..=MAX_SCORE_MILLIS,
        deltas in proptest::collection::vec(-200_000i64..200_000, 0..100),
    ) {
        let mut s = ReputationScore::with_prior(prior);
        for d in deltas {
            s.apply_delta(d);
            prop_assert!((0..=MAX_SCORE_MILLIS).contains(&s.millis()));
        }
    }

    /// Decay always moves the score strictly toward the prior (or keeps
    /// it there), never past it.
    #[test]
    fn decay_contracts_toward_prior(
        start in 0i64..=MAX_SCORE_MILLIS,
        prior in 0i64..=MAX_SCORE_MILLIS,
        elapsed in 1u64..10_000,
        half_life in 1u64..10_000,
    ) {
        let mut s = ReputationScore::with_prior(start);
        let before = s.millis();
        s.decay_toward(prior, elapsed, half_life);
        let after = s.millis();
        if before >= prior {
            prop_assert!(after <= before && after >= prior, "{before}->{after} prior {prior}");
        } else {
            prop_assert!(after >= before && after <= prior, "{before}->{after} prior {prior}");
        }
    }

    /// The Wilson trust bound is a valid probability and grows with
    /// uniform positive evidence.
    #[test]
    fn trust_bound_valid(positive in 0u64..500, negative in 0u64..500) {
        let mut s = ReputationScore::with_prior(50_000);
        s.positive = positive;
        s.negative = negative;
        let t = s.trust();
        prop_assert!((0.0..=1.0).contains(&t.lower_bound));
        prop_assert_eq!(t.observations, positive + negative);
        // Adding a positive observation never lowers the bound.
        let mut s2 = s;
        s2.positive += 1;
        prop_assert!(s2.trust().lower_bound >= t.lower_bound - 1e-12);
    }

    /// Rater weight stays in [min_weight, 1] regardless of history.
    #[test]
    fn rater_weight_bounded(
        deltas in proptest::collection::vec(-50_000i64..50_000, 0..30),
        min_weight in 0.0f64..0.5,
    ) {
        let mut engine = ReputationEngine::new(EngineConfig {
            min_rater_weight: min_weight,
            epoch_action_limit: u32::MAX,
            ..EngineConfig::default()
        });
        engine.register("rater", 0).unwrap();
        for (i, d) in deltas.iter().enumerate() {
            engine.system_delta("rater", *d, "prop", i as u64).unwrap();
        }
        let w = engine.rater_weight("rater").unwrap();
        prop_assert!(w >= min_weight - 1e-12 && w <= 1.0, "weight {w}");
    }

    /// Ledger-record conservation: every successful endorse/report emits
    /// exactly one record, failures emit none.
    #[test]
    fn ledger_records_match_successes(
        actions in proptest::collection::vec((0usize..4, 0usize..4, any::<bool>()), 1..60),
    ) {
        let mut engine = ReputationEngine::new(EngineConfig {
            epoch_action_limit: u32::MAX,
            ..EngineConfig::default()
        });
        for i in 0..4 {
            engine.register(&format!("a{i}"), 0).unwrap();
        }
        let mut successes = 0;
        for (rater, subject, positive) in actions {
            let (r, s) = (format!("a{rater}"), format!("a{subject}"));
            let result = if positive {
                engine.endorse(&r, &s, 0)
            } else {
                engine.report(&r, &s, 0)
            };
            if result.is_ok() {
                successes += 1;
            }
        }
        prop_assert_eq!(engine.drain_ledger_records().len(), successes);
    }

    /// Voting weight scales linearly with the scale parameter.
    #[test]
    fn voting_weight_scales_linearly(
        delta in -50_000i64..50_000,
        scale in 1u64..1000,
    ) {
        let mut engine = ReputationEngine::new(EngineConfig::default());
        engine.register("v", 0).unwrap();
        engine.system_delta("v", delta, "prop", 0).unwrap();
        let w1 = engine.voting_weight("v", scale).unwrap();
        let w10 = engine.voting_weight("v", scale * 10).unwrap();
        // Within rounding, 10x scale gives 10x weight.
        prop_assert!((w10 as i64 - (w1 as i64) * 10).abs() <= 5);
    }
}
