//! Error types for the reputation crate.

/// Errors returned by reputation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReputationError {
    /// Referenced account does not exist.
    UnknownAccount {
        /// The missing account id.
        account: String,
    },
    /// An account tried to endorse or report itself.
    SelfReferential {
        /// The offending account id.
        account: String,
    },
    /// The actor exceeded its per-epoch action budget.
    RateLimited {
        /// The throttled account id.
        account: String,
        /// Actions permitted per epoch.
        limit: u32,
    },
    /// The account already exists.
    DuplicateAccount {
        /// The duplicated account id.
        account: String,
    },
}

impl std::fmt::Display for ReputationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReputationError::UnknownAccount { account } => {
                write!(f, "unknown account {account:?}")
            }
            ReputationError::SelfReferential { account } => {
                write!(f, "account {account:?} cannot rate itself")
            }
            ReputationError::RateLimited { account, limit } => {
                write!(f, "account {account:?} exceeded {limit} actions this epoch")
            }
            ReputationError::DuplicateAccount { account } => {
                write!(f, "account {account:?} already registered")
            }
        }
    }
}

impl std::error::Error for ReputationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_account() {
        let e = ReputationError::UnknownAccount { account: "mallory".into() };
        assert!(e.to_string().contains("mallory"));
    }
}
