//! Sybil and whitewashing attack models.
//!
//! The paper assigns reputation the job of "counterbalanc\[ing\] attacks
//! during decision-making processes" (§IV-C). These adversaries give the
//! experiments something concrete to counterbalance:
//!
//! * [`SybilAttack`] — an attacker spawns `k` fresh accounts that all
//!   endorse a target (to pump it) or report a victim (to bury them).
//! * [`WhitewashAttack`] — a damaged account is abandoned and re-created
//!   to shed its negative history.
//!
//! Both return a measurable outcome so benches can sweep attacker budgets
//! and chart the achieved score distortion.

use crate::engine::ReputationEngine;
use crate::error::ReputationError;

/// A Sybil endorsement/report attack.
#[derive(Debug, Clone)]
pub struct SybilAttack {
    /// Prefix for generated puppet account names.
    pub puppet_prefix: String,
    /// Number of puppet accounts to create.
    pub puppets: usize,
    /// Endorsements/reports issued per puppet.
    pub actions_per_puppet: u32,
}

/// Outcome of a simulated attack, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Target score before the attack (points).
    pub before: f64,
    /// Target score after the attack (points).
    pub after: f64,
    /// Total accounts the attacker had to create.
    pub accounts_spent: usize,
}

impl AttackOutcome {
    /// Absolute score distortion achieved.
    pub fn distortion(&self) -> f64 {
        (self.after - self.before).abs()
    }
}

impl SybilAttack {
    /// Runs the attack: all puppets endorse `target` (pump).
    pub fn pump(
        &self,
        engine: &mut ReputationEngine,
        target: &str,
        now: u64,
    ) -> Result<AttackOutcome, ReputationError> {
        self.run(engine, target, now, true)
    }

    /// Runs the attack: all puppets report `target` (bury).
    pub fn bury(
        &self,
        engine: &mut ReputationEngine,
        target: &str,
        now: u64,
    ) -> Result<AttackOutcome, ReputationError> {
        self.run(engine, target, now, false)
    }

    fn run(
        &self,
        engine: &mut ReputationEngine,
        target: &str,
        now: u64,
        positive: bool,
    ) -> Result<AttackOutcome, ReputationError> {
        let before = engine.score(target)?.points();
        for i in 0..self.puppets {
            let name = format!("{}-{i}", self.puppet_prefix);
            // Puppets may collide with a previous wave; ignore duplicates.
            let _ = engine.register(&name, now);
            for _ in 0..self.actions_per_puppet {
                let res = if positive {
                    engine.endorse(&name, target, now)
                } else {
                    engine.report(&name, target, now)
                };
                match res {
                    Ok(_) => {}
                    Err(ReputationError::RateLimited { .. }) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        let after = engine.score(target)?.points();
        Ok(AttackOutcome { before, after, accounts_spent: self.puppets })
    }
}

/// A whitewashing attack: abandon a damaged identity, return as new.
#[derive(Debug, Clone)]
pub struct WhitewashAttack {
    /// The damaged account to abandon.
    pub old_identity: String,
    /// The fresh identity to re-register under.
    pub new_identity: String,
}

impl WhitewashAttack {
    /// Executes the whitewash. Returns `(old_score, new_score)` in points;
    /// the attack "succeeds" when the new score exceeds the old one.
    pub fn run(
        &self,
        engine: &mut ReputationEngine,
        now: u64,
    ) -> Result<(f64, f64), ReputationError> {
        let old = engine.score(&self.old_identity)?.points();
        engine.deregister(&self.old_identity)?;
        engine.register(&self.new_identity, now)?;
        let new = engine.score(&self.new_identity)?.points();
        Ok((old, new))
    }

    /// Whether whitewashing pays off under the engine's prior: true when
    /// a fresh account's score beats `damaged_score`.
    pub fn profitable(damaged_score: f64, neutral_prior_points: f64) -> bool {
        neutral_prior_points > damaged_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine_with(prior: i64, min_weight: f64) -> ReputationEngine {
        let mut e = ReputationEngine::new(EngineConfig {
            neutral_prior_millis: prior,
            min_rater_weight: min_weight,
            epoch_action_limit: 100,
            ..EngineConfig::default()
        });
        e.register("victim", 0).unwrap();
        e.register("honest-1", 0).unwrap();
        e.register("honest-2", 0).unwrap();
        e
    }

    #[test]
    fn sybil_bury_moves_score_less_than_honest_reports_per_account() {
        // With a low neutral prior, each puppet carries little weight, so
        // k puppet reports distort less than k established-account
        // reports would.
        let mut sybil_engine = engine_with(10_000, 0.05);
        let attack = SybilAttack {
            puppet_prefix: "sybil".into(),
            puppets: 5,
            actions_per_puppet: 1,
        };
        let sybil_out = attack.bury(&mut sybil_engine, "victim", 0).unwrap();

        let mut honest_engine = engine_with(10_000, 0.05);
        // Give honest raters standing + history.
        for r in ["honest-1", "honest-2"] {
            honest_engine.system_delta(r, 60_000, "standing", 0).unwrap();
            for _ in 0..20 {
                honest_engine.system_delta(r, 1, "history", 0).unwrap();
            }
        }
        let mut honest_victim_before = honest_engine.score("victim").unwrap().points();
        for r in ["honest-1", "honest-2"] {
            honest_engine.report(r, "victim", 0).unwrap();
        }
        let honest_after = honest_engine.score("victim").unwrap().points();
        honest_victim_before -= honest_after;
        let honest_per_account = honest_victim_before / 2.0;
        let sybil_per_account = sybil_out.distortion() / attack.puppets as f64;
        assert!(
            sybil_per_account < honest_per_account,
            "sybil {sybil_per_account} should underperform honest {honest_per_account}"
        );
    }

    #[test]
    fn sybil_pump_distortion_bounded_by_weight() {
        let mut e = engine_with(5_000, 0.05);
        let attack = SybilAttack {
            puppet_prefix: "pump".into(),
            puppets: 10,
            actions_per_puppet: 2,
        };
        let out = attack.pump(&mut e, "victim", 0).unwrap();
        assert!(out.after > out.before);
        // 20 endorsements at full weight would add 20 * 1.5 = 30 points;
        // low-prior puppets must achieve far less.
        assert!(out.distortion() < 15.0, "distortion {}", out.distortion());
    }

    #[test]
    fn rate_limit_caps_each_puppet() {
        let mut e = ReputationEngine::new(EngineConfig {
            epoch_action_limit: 3,
            ..EngineConfig::default()
        });
        e.register("victim", 0).unwrap();
        let attack = SybilAttack {
            puppet_prefix: "s".into(),
            puppets: 1,
            actions_per_puppet: 50,
        };
        // Must not error: the attack stops at the rate limit.
        attack.bury(&mut e, "victim", 0).unwrap();
    }

    #[test]
    fn whitewash_profitable_only_above_prior() {
        let mut e = engine_with(30_000, 0.1);
        e.system_delta("victim", -25_000, "sanction", 0).unwrap(); // 5 points
        let attack = WhitewashAttack {
            old_identity: "victim".into(),
            new_identity: "victim-reborn".into(),
        };
        let (old, new) = attack.run(&mut e, 1).unwrap();
        assert!(new > old, "fresh identity beats damaged one: {new} vs {old}");
        assert!(WhitewashAttack::profitable(old, 30.0));
        assert!(!WhitewashAttack::profitable(80.0, 30.0));
    }

    #[test]
    fn repeated_waves_tolerate_existing_puppets() {
        let mut e = engine_with(10_000, 0.05);
        let attack = SybilAttack {
            puppet_prefix: "wave".into(),
            puppets: 3,
            actions_per_puppet: 1,
        };
        attack.bury(&mut e, "victim", 0).unwrap();
        e.begin_epoch();
        attack.bury(&mut e, "victim", 1).unwrap(); // same puppet names
    }
}
