//! Bounded reputation scores with decay and trust estimation.

use serde::{Deserialize, Serialize};

/// Milli-points: scores are stored as integers to keep ledger records and
/// cross-platform replays exact.
pub const MILLIS: i64 = 1000;

/// Maximum score (100.000 points).
pub const MAX_SCORE_MILLIS: i64 = 100 * MILLIS;

/// A single account's reputation state.
///
/// Scores live in `[0, 100]` points (stored in milli-points). New
/// accounts start at a configurable neutral prior rather than zero, so an
/// attacker gains nothing by abandoning a damaged account and re-joining
/// *unless* the neutral prior is below their damaged score — the classic
/// whitewashing trade-off, measured in experiment E9.
///
/// ```
/// use metaverse_reputation::score::ReputationScore;
/// let mut s = ReputationScore::with_prior(50_000);
/// s.apply_delta(10_000);
/// assert_eq!(s.points(), 60.0);
/// s.apply_delta(-200_000); // clamps at 0
/// assert_eq!(s.points(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReputationScore {
    millis: i64,
    /// Positive interactions observed (endorsements received).
    pub positive: u64,
    /// Negative interactions observed (upheld reports).
    pub negative: u64,
}

impl ReputationScore {
    /// Creates a score at the given prior (in milli-points).
    pub fn with_prior(prior_millis: i64) -> Self {
        ReputationScore {
            millis: prior_millis.clamp(0, MAX_SCORE_MILLIS),
            positive: 0,
            negative: 0,
        }
    }

    /// Current score in milli-points.
    pub fn millis(&self) -> i64 {
        self.millis
    }

    /// Current score in points (0.0 ..= 100.0).
    pub fn points(&self) -> f64 {
        self.millis as f64 / MILLIS as f64
    }

    /// Applies a signed delta, clamping to the valid range. Returns the
    /// delta actually applied after clamping.
    pub fn apply_delta(&mut self, delta_millis: i64) -> i64 {
        let before = self.millis;
        self.millis = (self.millis + delta_millis).clamp(0, MAX_SCORE_MILLIS);
        if delta_millis > 0 {
            self.positive += 1;
        } else if delta_millis < 0 {
            self.negative += 1;
        }
        self.millis - before
    }

    /// Exponential decay toward the neutral prior over `elapsed` ticks
    /// with the given half-life. Half-life 0 disables decay.
    ///
    /// Decay models the paper's implicit requirement that reputation
    /// reflect *recent* behaviour: old endorsements should not shield a
    /// newly malicious account forever.
    pub fn decay_toward(&mut self, prior_millis: i64, elapsed: u64, half_life: u64) {
        if half_life == 0 || elapsed == 0 {
            return;
        }
        let factor = 0.5f64.powf(elapsed as f64 / half_life as f64);
        let prior = prior_millis.clamp(0, MAX_SCORE_MILLIS) as f64;
        let current = self.millis as f64;
        self.millis = (prior + (current - prior) * factor).round() as i64;
        self.millis = self.millis.clamp(0, MAX_SCORE_MILLIS);
    }

    /// Wilson lower-bound trust estimate from the positive/negative
    /// interaction record (z = 1.96, 95% confidence).
    ///
    /// This is the statistic marketplaces use to rank sellers: it is
    /// pessimistic for accounts with few interactions, which is exactly
    /// the anti-Sybil behaviour the paper wants ("counterbalance attacks
    /// during decision-making").
    pub fn trust(&self) -> TrustEstimate {
        let n = (self.positive + self.negative) as f64;
        if n == 0.0 {
            return TrustEstimate { lower_bound: 0.0, observations: 0 };
        }
        let z = 1.96f64;
        let p = self.positive as f64 / n;
        let denom = 1.0 + z * z / n;
        let centre = p + z * z / (2.0 * n);
        let margin = z * ((p * (1.0 - p) + z * z / (4.0 * n)) / n).sqrt();
        TrustEstimate {
            lower_bound: ((centre - margin) / denom).clamp(0.0, 1.0),
            observations: self.positive + self.negative,
        }
    }
}

/// A Wilson-interval trust estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustEstimate {
    /// Lower bound of the 95% confidence interval on the positive rate.
    pub lower_bound: f64,
    /// Number of interactions the estimate is based on.
    pub observations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_at_bounds() {
        let mut s = ReputationScore::with_prior(95_000);
        let applied = s.apply_delta(10_000);
        assert_eq!(applied, 5_000);
        assert_eq!(s.millis(), MAX_SCORE_MILLIS);
        let applied = s.apply_delta(-200_000);
        assert_eq!(applied, -MAX_SCORE_MILLIS);
        assert_eq!(s.millis(), 0);
    }

    #[test]
    fn prior_clamped() {
        assert_eq!(ReputationScore::with_prior(-5).millis(), 0);
        assert_eq!(ReputationScore::with_prior(i64::MAX).millis(), MAX_SCORE_MILLIS);
    }

    #[test]
    fn decay_halves_distance_to_prior() {
        let mut s = ReputationScore::with_prior(80_000);
        s.decay_toward(50_000, 10, 10);
        assert_eq!(s.millis(), 65_000); // halfway between 80k and 50k
        s.decay_toward(50_000, 10, 10);
        assert_eq!(s.millis(), 57_500);
    }

    #[test]
    fn decay_from_below_prior_rises() {
        let mut s = ReputationScore::with_prior(10_000);
        s.decay_toward(50_000, 10, 10);
        assert_eq!(s.millis(), 30_000);
    }

    #[test]
    fn zero_half_life_disables_decay() {
        let mut s = ReputationScore::with_prior(80_000);
        s.decay_toward(50_000, 100, 0);
        assert_eq!(s.millis(), 80_000);
    }

    #[test]
    fn trust_pessimistic_for_few_observations() {
        let mut few = ReputationScore::with_prior(50_000);
        few.apply_delta(1);
        few.apply_delta(1); // 2 positives
        let mut many = ReputationScore::with_prior(50_000);
        for _ in 0..100 {
            many.apply_delta(1);
        }
        assert!(few.trust().lower_bound < many.trust().lower_bound);
        assert!(many.trust().lower_bound > 0.9);
    }

    #[test]
    fn trust_empty_is_zero() {
        let s = ReputationScore::with_prior(50_000);
        assert_eq!(s.trust().lower_bound, 0.0);
        assert_eq!(s.trust().observations, 0);
    }

    #[test]
    fn trust_reflects_negative_history() {
        let mut bad = ReputationScore::with_prior(50_000);
        for _ in 0..50 {
            bad.apply_delta(-1);
        }
        assert!(bad.trust().lower_bound < 0.1);
    }
}
