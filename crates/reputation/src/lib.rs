//! # metaverse-reputation
//!
//! The reputation subsystem of `metaverse-kit`, implementing the paper's
//! "Human effort" layer:
//!
//! > "The metaverse will include a reputation-based system that will be
//! > inherently attached to users and will be managed by Blockchain and
//! > DAOs. This reputation system will allow users to report malicious
//! > users' misbehaviour and malpractice while voting using DAOs." — §IV-C
//!
//! and its role as an attack counterbalance:
//!
//! > "A reputation-based system under the Blockchain will enable the
//! > metaverse with a tool to counterbalance attacks during
//! > decision-making processes and limit the spread of misinformation."
//!
//! Components:
//!
//! * [`score`] — bounded reputation scores with exponential decay and a
//!   Wilson-interval trust estimate.
//! * [`engine`] — the account-level engine: endorsements, reports,
//!   reporter-weighting, per-epoch rate limits, and ledger anchoring
//!   (every change is exported as a [`metaverse_ledger::tx::TxPayload`]).
//! * [`sybil`] — Sybil and whitewashing attack models plus resistance
//!   metrics (experiments E9/E10/E11 use these as adversaries).
//! * [`incentives`] — the incentive mechanisms the paper borrows from the
//!   Minecraft governance study: reward positive behaviour, restrain
//!   negative players, and observe the population response.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod incentives;
pub mod score;
pub mod sybil;

pub use engine::{EngineConfig, ReputationEngine};
pub use error::ReputationError;
pub use incentives::{ActionKind, Agent, IncentiveConfig, IncentiveEngine, PopulationStats};
pub use score::{ReputationScore, TrustEstimate};
pub use sybil::{SybilAttack, WhitewashAttack};
