//! The account-level reputation engine.
//!
//! Endorsements and reports move a subject's score by an amount *weighted
//! by the rater's own standing* — an account with no track record moves a
//! target's score very little, which is the primary Sybil counterbalance
//! the paper asks reputation to provide. Every applied change is exported
//! as a ledger transaction payload so the platform's audit trail is
//! complete ("managed by Blockchain and DAOs", §IV-C).

use std::collections::BTreeMap;

use metaverse_ledger::tx::TxPayload;

use crate::error::ReputationError;
use crate::score::{ReputationScore, MAX_SCORE_MILLIS, MILLIS};

/// Tuning knobs for a [`ReputationEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Score assigned to new accounts, in milli-points.
    pub neutral_prior_millis: i64,
    /// Base magnitude of one endorsement, in milli-points.
    pub endorse_base_millis: i64,
    /// Base magnitude of one upheld report, in milli-points.
    pub report_base_millis: i64,
    /// Half-life of decay toward the prior, in ticks (0 = no decay).
    pub decay_half_life: u64,
    /// Maximum endorse/report actions per account per epoch.
    pub epoch_action_limit: u32,
    /// Minimum rater trust weight applied even to brand-new accounts,
    /// in `[0, 1]`. Keeps the system live before history accumulates.
    pub min_rater_weight: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            neutral_prior_millis: 50 * MILLIS,
            endorse_base_millis: 1500,
            report_base_millis: 4000,
            decay_half_life: 1000,
            epoch_action_limit: 20,
            min_rater_weight: 0.1,
        }
    }
}

#[derive(Debug, Clone)]
struct Account {
    score: ReputationScore,
    last_update: u64,
    actions_this_epoch: u32,
}

/// The reputation engine over a set of named accounts.
///
/// ```
/// use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
/// let mut eng = ReputationEngine::new(EngineConfig::default());
/// eng.register("alice", 0).unwrap();
/// eng.register("bob", 0).unwrap();
/// eng.endorse("alice", "bob", 0).unwrap();
/// assert!(eng.score("bob").unwrap().points() > 50.0);
/// assert_eq!(eng.drain_ledger_records().len(), 1);
/// ```
#[derive(Debug)]
pub struct ReputationEngine {
    config: EngineConfig,
    accounts: BTreeMap<String, Account>,
    epoch: u64,
    pending_records: Vec<TxPayload>,
}

impl ReputationEngine {
    /// Creates an empty engine.
    pub fn new(config: EngineConfig) -> Self {
        ReputationEngine { config, accounts: BTreeMap::new(), epoch: 0, pending_records: Vec::new() }
    }

    /// The engine's tuning (read access — e.g. so a settlement layer
    /// can apply remote ratings at the configured base magnitudes).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a new account at the neutral prior.
    pub fn register(&mut self, account: &str, now: u64) -> Result<(), ReputationError> {
        if self.accounts.contains_key(account) {
            return Err(ReputationError::DuplicateAccount { account: account.into() });
        }
        self.accounts.insert(
            account.to_string(),
            Account {
                score: ReputationScore::with_prior(self.config.neutral_prior_millis),
                last_update: now,
                actions_this_epoch: 0,
            },
        );
        Ok(())
    }

    /// Removes an account (used by whitewashing attack models).
    pub fn deregister(&mut self, account: &str) -> Result<(), ReputationError> {
        self.accounts
            .remove(account)
            .map(|_| ())
            .ok_or_else(|| ReputationError::UnknownAccount { account: account.into() })
    }

    /// Whether an account exists.
    pub fn contains(&self, account: &str) -> bool {
        self.accounts.contains_key(account)
    }

    /// Number of registered accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when no accounts are registered.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Current decayed score of an account.
    pub fn score(&self, account: &str) -> Result<ReputationScore, ReputationError> {
        self.accounts
            .get(account)
            .map(|a| a.score)
            .ok_or_else(|| ReputationError::UnknownAccount { account: account.into() })
    }

    /// The weight a rater's actions carry, in `[min_rater_weight, 1]`.
    ///
    /// Combines the normalized score with the Wilson trust lower bound so
    /// that *both* a good standing and a real track record are needed for
    /// full influence.
    pub fn rater_weight(&self, rater: &str) -> Result<f64, ReputationError> {
        let acct = self
            .accounts
            .get(rater)
            .ok_or_else(|| ReputationError::UnknownAccount { account: rater.into() })?;
        let norm = acct.score.millis() as f64 / MAX_SCORE_MILLIS as f64;
        let trust = acct.score.trust().lower_bound;
        // Blend: standing dominates early, history dominates late.
        let n = acct.score.trust().observations as f64;
        let alpha = n / (n + 10.0);
        let weight = (1.0 - alpha) * norm + alpha * trust;
        Ok(weight.max(self.config.min_rater_weight).min(1.0))
    }

    fn apply(
        &mut self,
        rater: &str,
        subject: &str,
        base_millis: i64,
        reason: &str,
        now: u64,
    ) -> Result<i64, ReputationError> {
        if rater == subject {
            return Err(ReputationError::SelfReferential { account: rater.into() });
        }
        if !self.accounts.contains_key(subject) {
            return Err(ReputationError::UnknownAccount { account: subject.into() });
        }
        let weight = self.rater_weight(rater)?;
        {
            let limit = self.config.epoch_action_limit;
            let rater_acct = self
                .accounts
                .get_mut(rater)
                .ok_or_else(|| ReputationError::UnknownAccount { account: rater.into() })?;
            if rater_acct.actions_this_epoch >= limit {
                return Err(ReputationError::RateLimited { account: rater.into(), limit });
            }
            rater_acct.actions_this_epoch += 1;
        }
        self.touch(subject, now);
        let delta = (base_millis as f64 * weight).round() as i64;
        let acct = self
            .accounts
            .get_mut(subject)
            .ok_or_else(|| ReputationError::UnknownAccount { account: subject.into() })?;
        let applied = acct.score.apply_delta(delta);
        self.pending_records.push(TxPayload::ReputationDelta {
            subject: subject.to_string(),
            delta_millis: applied,
            reason: format!("{reason} by {rater}"),
        });
        Ok(applied)
    }

    /// `rater` endorses `subject` (positive signal).
    pub fn endorse(&mut self, rater: &str, subject: &str, now: u64) -> Result<i64, ReputationError> {
        let base = self.config.endorse_base_millis;
        self.apply(rater, subject, base, "endorse", now)
    }

    /// `rater` files an upheld report against `subject` (negative signal).
    pub fn report(&mut self, rater: &str, subject: &str, now: u64) -> Result<i64, ReputationError> {
        let base = -self.config.report_base_millis;
        self.apply(rater, subject, base, "report", now)
    }

    /// Applies a direct system-level delta (e.g. an incentive payout or a
    /// DAO-decided sanction), bypassing rater weighting.
    pub fn system_delta(
        &mut self,
        subject: &str,
        delta_millis: i64,
        reason: &str,
        now: u64,
    ) -> Result<i64, ReputationError> {
        if !self.accounts.contains_key(subject) {
            return Err(ReputationError::UnknownAccount { account: subject.into() });
        }
        self.touch(subject, now);
        let acct = self
            .accounts
            .get_mut(subject)
            .ok_or_else(|| ReputationError::UnknownAccount { account: subject.into() })?;
        let applied = acct.score.apply_delta(delta_millis);
        self.pending_records.push(TxPayload::ReputationDelta {
            subject: subject.to_string(),
            delta_millis: applied,
            reason: format!("system:{reason}"),
        });
        Ok(applied)
    }

    /// Applies decay for elapsed time up to `now` on one account.
    fn touch(&mut self, account: &str, now: u64) {
        let prior = self.config.neutral_prior_millis;
        let half_life = self.config.decay_half_life;
        if let Some(acct) = self.accounts.get_mut(account) {
            if now > acct.last_update {
                acct.score.decay_toward(prior, now - acct.last_update, half_life);
                acct.last_update = now;
            }
        }
    }

    /// Applies decay to every account up to `now`.
    pub fn decay_all(&mut self, now: u64) {
        let names: Vec<String> = self.accounts.keys().cloned().collect();
        for name in names {
            self.touch(&name, now);
        }
    }

    /// Starts a new rate-limit epoch (typically once per governance
    /// round).
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
        for acct in self.accounts.values_mut() {
            acct.actions_this_epoch = 0;
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Takes the ledger records accumulated since the last drain. The
    /// platform layer submits these to the chain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }

    /// Accounts sorted by descending score — a leaderboard view.
    pub fn leaderboard(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .accounts
            .iter()
            .map(|(k, v)| (k.clone(), v.score.points()))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }

    /// Voting weight for reputation-weighted governance: normalized score
    /// in `[0, 1]` scaled to integer weight units.
    pub fn voting_weight(&self, account: &str, scale: u64) -> Result<u64, ReputationError> {
        let score = self.score(account)?;
        Ok(((score.millis() as f64 / MAX_SCORE_MILLIS as f64) * scale as f64).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ReputationEngine {
        let mut e = ReputationEngine::new(EngineConfig::default());
        for a in ["alice", "bob", "carol"] {
            e.register(a, 0).unwrap();
        }
        e
    }

    #[test]
    fn endorse_raises_report_lowers() {
        let mut e = engine();
        e.endorse("alice", "bob", 0).unwrap();
        assert!(e.score("bob").unwrap().points() > 50.0);
        e.report("alice", "carol", 0).unwrap();
        assert!(e.score("carol").unwrap().points() < 50.0);
    }

    #[test]
    fn self_rating_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.endorse("alice", "alice", 0),
            Err(ReputationError::SelfReferential { .. })
        ));
    }

    #[test]
    fn unknown_accounts_rejected() {
        let mut e = engine();
        assert!(e.endorse("ghost", "bob", 0).is_err());
        assert!(e.endorse("alice", "ghost", 0).is_err());
        assert!(e.score("ghost").is_err());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.register("alice", 0),
            Err(ReputationError::DuplicateAccount { .. })
        ));
    }

    #[test]
    fn rate_limit_enforced_and_reset_by_epoch() {
        let mut e = ReputationEngine::new(EngineConfig {
            epoch_action_limit: 2,
            ..EngineConfig::default()
        });
        e.register("a", 0).unwrap();
        e.register("b", 0).unwrap();
        e.endorse("a", "b", 0).unwrap();
        e.endorse("a", "b", 0).unwrap();
        assert!(matches!(e.endorse("a", "b", 0), Err(ReputationError::RateLimited { .. })));
        e.begin_epoch();
        e.endorse("a", "b", 0).unwrap();
    }

    #[test]
    fn low_reputation_rater_has_less_influence() {
        let mut e = engine();
        // Tank alice's reputation via system deltas.
        e.system_delta("alice", -45_000, "test", 0).unwrap();
        let w_low = e.rater_weight("alice").unwrap();
        let w_mid = e.rater_weight("bob").unwrap();
        assert!(w_low < w_mid);

        let d_low = e.endorse("alice", "carol", 0).unwrap();
        let d_mid = e.endorse("bob", "carol", 0).unwrap();
        assert!(d_low < d_mid, "weaker rater moves score less: {d_low} vs {d_mid}");
    }

    #[test]
    fn ledger_records_exported() {
        let mut e = engine();
        e.endorse("alice", "bob", 0).unwrap();
        e.report("bob", "carol", 0).unwrap();
        e.system_delta("carol", 100, "incentive", 0).unwrap();
        let records = e.drain_ledger_records();
        assert_eq!(records.len(), 3);
        assert!(e.drain_ledger_records().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn decay_pulls_to_prior() {
        let mut e = engine();
        e.system_delta("bob", 40_000, "boost", 0).unwrap();
        let before = e.score("bob").unwrap().points();
        e.decay_all(10_000); // 10 half-lives
        let after = e.score("bob").unwrap().points();
        assert!(after < before);
        assert!((after - 50.0).abs() < 1.0, "near prior after many half-lives: {after}");
    }

    #[test]
    fn voting_weight_scales() {
        let mut e = engine();
        assert_eq!(e.voting_weight("alice", 100).unwrap(), 50);
        e.system_delta("alice", 50_000, "max", 0).unwrap();
        assert_eq!(e.voting_weight("alice", 100).unwrap(), 100);
    }

    #[test]
    fn leaderboard_sorted() {
        let mut e = engine();
        e.system_delta("carol", 20_000, "x", 0).unwrap();
        e.system_delta("bob", -20_000, "x", 0).unwrap();
        let lb = e.leaderboard();
        assert_eq!(lb[0].0, "carol");
        assert_eq!(lb[2].0, "bob");
    }

    #[test]
    fn deregister_removes() {
        let mut e = engine();
        e.deregister("bob").unwrap();
        assert!(!e.contains("bob"));
        assert!(e.deregister("bob").is_err());
    }
}
