//! Incentive mechanisms for shaping population behaviour.
//!
//! Implements the mechanism the paper adopts from the two-year Minecraft
//! community study (§III-D):
//!
//! > "They also propose incentive mechanisms to promote positive
//! > behaviour and restrain negative players. These incentive systems can
//! > also encourage collaboration, shared planning, and teamwork."
//!
//! The model: a population of [`Agent`]s repeatedly chooses between a
//! positive action (helping, creating, collaborating) and a negative one
//! (griefing, spamming). Each agent has an intrinsic disposition; the
//! platform overlays *extrinsic* utility — incentive payouts for positive
//! actions and reputation penalties (with imperfect detection) for
//! negative ones. Agents adapt their behaviour via a logistic best
//! response to realized utility, so turning the incentive engine on or
//! off produces a measurable shift in the population's positive-action
//! rate (experiment E9).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::engine::ReputationEngine;

/// The two action classes the Minecraft study distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// Prosocial behaviour: helping, building, collaborating.
    Positive,
    /// Antisocial behaviour: griefing, spam, harassment.
    Negative,
}

/// Configuration of the incentive engine.
#[derive(Debug, Clone)]
pub struct IncentiveConfig {
    /// Reputation payout for a positive action, in milli-points.
    pub positive_reward_millis: i64,
    /// Reputation penalty for a *detected* negative action, milli-points.
    pub negative_penalty_millis: i64,
    /// Probability a negative action is detected (moderation coverage).
    pub detection_probability: f64,
    /// Learning rate of the agents' behavioural adaptation.
    pub adaptation_rate: f64,
    /// Intrinsic utility of the negative action (what griefers get out of
    /// griefing); positive actions have intrinsic utility 1.0.
    pub negative_intrinsic_utility: f64,
}

impl Default for IncentiveConfig {
    fn default() -> Self {
        IncentiveConfig {
            positive_reward_millis: 500,
            negative_penalty_millis: 3000,
            detection_probability: 0.4,
            adaptation_rate: 0.15,
            negative_intrinsic_utility: 1.4,
        }
    }
}

/// A behavioural agent with an adaptive positive-action propensity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Agent {
    /// Account name (must be registered in the [`ReputationEngine`]).
    pub name: String,
    /// Probability of choosing the positive action this round.
    pub propensity: f64,
    /// Immutable disposition in `[0, 1]`: 1.0 = saint, 0.0 = griefer.
    pub disposition: f64,
    /// Cumulative realized utility (diagnostic).
    pub utility: f64,
}

impl Agent {
    /// Creates an agent whose initial propensity equals its disposition.
    pub fn new(name: impl Into<String>, disposition: f64) -> Self {
        let d = disposition.clamp(0.0, 1.0);
        Agent { name: name.into(), propensity: d, disposition: d, utility: 0.0 }
    }
}

/// Aggregate statistics of one simulation round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationStats {
    /// Fraction of actions this round that were positive.
    pub positive_rate: f64,
    /// Mean propensity across agents after adaptation.
    pub mean_propensity: f64,
    /// Mean reputation points across agents.
    pub mean_reputation: f64,
    /// Number of negative actions that went undetected.
    pub undetected_negative: usize,
}

/// Drives a population of agents against a reputation engine.
#[derive(Debug)]
pub struct IncentiveEngine {
    config: IncentiveConfig,
    /// Whether extrinsic incentives are applied (the E9 ablation switch).
    pub enabled: bool,
}

impl IncentiveEngine {
    /// Creates an engine with incentives enabled.
    pub fn new(config: IncentiveConfig) -> Self {
        IncentiveEngine { config, enabled: true }
    }

    /// Runs one round: every agent acts once, incentives are applied, and
    /// agents adapt their propensity.
    pub fn step<R: Rng + ?Sized>(
        &self,
        agents: &mut [Agent],
        reputation: &mut ReputationEngine,
        now: u64,
        rng: &mut R,
    ) -> PopulationStats {
        let mut positive = 0usize;
        let mut undetected = 0usize;

        for agent in agents.iter_mut() {
            let acts_positive = rng.gen_bool(agent.propensity.clamp(0.0, 1.0));
            // Realized utilities this round.
            let (u_pos, u_neg);
            if acts_positive {
                positive += 1;
                let reward = if self.enabled {
                    let _ = reputation.system_delta(
                        &agent.name,
                        self.config.positive_reward_millis,
                        "incentive:positive",
                        now,
                    );
                    self.config.positive_reward_millis as f64 / 1000.0
                } else {
                    0.0
                };
                u_pos = 1.0 + reward;
                u_neg = self.expected_negative_utility();
                agent.utility += u_pos;
            } else {
                let detected = rng.gen_bool(self.config.detection_probability);
                let penalty = if detected && self.enabled {
                    let _ = reputation.system_delta(
                        &agent.name,
                        -self.config.negative_penalty_millis,
                        "incentive:penalty",
                        now,
                    );
                    self.config.negative_penalty_millis as f64 / 1000.0
                } else {
                    if !detected {
                        undetected += 1;
                    }
                    0.0
                };
                u_neg = self.config.negative_intrinsic_utility - penalty;
                u_pos = 1.0 + self.expected_positive_reward();
                agent.utility += u_neg;
            }

            // Logistic best response: drift toward the higher-utility
            // action, anchored by intrinsic disposition.
            let advantage = u_pos - u_neg;
            let target = 1.0 / (1.0 + (-2.0 * advantage).exp());
            let anchored = 0.5 * target + 0.5 * agent.disposition;
            agent.propensity += self.config.adaptation_rate * (anchored - agent.propensity);
            agent.propensity = agent.propensity.clamp(0.01, 0.99);
        }

        let mean_propensity =
            agents.iter().map(|a| a.propensity).sum::<f64>() / agents.len().max(1) as f64;
        let mean_reputation = agents
            .iter()
            .filter_map(|a| reputation.score(&a.name).ok())
            .map(|s| s.points())
            .sum::<f64>()
            / agents.len().max(1) as f64;

        PopulationStats {
            positive_rate: positive as f64 / agents.len().max(1) as f64,
            mean_propensity,
            mean_reputation,
            undetected_negative: undetected,
        }
    }

    fn expected_positive_reward(&self) -> f64 {
        if self.enabled {
            self.config.positive_reward_millis as f64 / 1000.0
        } else {
            0.0
        }
    }

    fn expected_negative_utility(&self) -> f64 {
        let penalty = if self.enabled {
            self.config.detection_probability * self.config.negative_penalty_millis as f64 / 1000.0
        } else {
            0.0
        };
        self.config.negative_intrinsic_utility - penalty
    }

    /// Runs `rounds` rounds and returns per-round statistics.
    pub fn run<R: Rng + ?Sized>(
        &self,
        agents: &mut [Agent],
        reputation: &mut ReputationEngine,
        rounds: usize,
        rng: &mut R,
    ) -> Vec<PopulationStats> {
        (0..rounds)
            .map(|round| {
                reputation.begin_epoch();
                self.step(agents, reputation, round as u64, rng)
            })
            .collect()
    }
}

/// Builds a mixed population: `n` agents with dispositions drawn from a
/// triangular-ish mixture (mostly decent, a griefing tail), matching the
/// Minecraft study's description of youth communities.
pub fn mixed_population<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Agent> {
    (0..n)
        .map(|i| {
            let disposition = if rng.gen_bool(0.15) {
                rng.gen_range(0.05..0.3) // griefing tail
            } else {
                rng.gen_range(0.5..0.95)
            };
            Agent::new(format!("agent-{i}"), disposition)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Vec<Agent>, ReputationEngine, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let agents = mixed_population(n, &mut rng);
        let mut rep = ReputationEngine::new(EngineConfig::default());
        for a in &agents {
            rep.register(&a.name, 0).unwrap();
        }
        (agents, rep, rng)
    }

    #[test]
    fn incentives_raise_positive_rate() {
        let (mut agents_on, mut rep_on, mut rng_on) = setup(200, 7);
        let (mut agents_off, mut rep_off, mut rng_off) = setup(200, 7);

        let on = IncentiveEngine::new(IncentiveConfig::default());
        let mut off = IncentiveEngine::new(IncentiveConfig::default());
        off.enabled = false;

        let stats_on = on.run(&mut agents_on, &mut rep_on, 30, &mut rng_on);
        let stats_off = off.run(&mut agents_off, &mut rep_off, 30, &mut rng_off);

        let late_on: f64 =
            stats_on[20..].iter().map(|s| s.positive_rate).sum::<f64>() / 10.0;
        let late_off: f64 =
            stats_off[20..].iter().map(|s| s.positive_rate).sum::<f64>() / 10.0;
        assert!(
            late_on > late_off + 0.05,
            "incentives should lift positive rate: on={late_on:.3} off={late_off:.3}"
        );
    }

    #[test]
    fn propensity_stays_in_bounds() {
        let (mut agents, mut rep, mut rng) = setup(50, 11);
        let eng = IncentiveEngine::new(IncentiveConfig {
            adaptation_rate: 0.9,
            ..IncentiveConfig::default()
        });
        eng.run(&mut agents, &mut rep, 50, &mut rng);
        for a in &agents {
            assert!((0.01..=0.99).contains(&a.propensity), "{}", a.propensity);
        }
    }

    #[test]
    fn detection_probability_extremes() {
        // With perfect detection and heavy penalties, even griefers
        // converge upward relative to no detection at all.
        let run_with = |p: f64, seed: u64| {
            let (mut agents, mut rep, mut rng) = setup(100, seed);
            for a in agents.iter_mut() {
                a.disposition = 0.2;
                a.propensity = 0.2;
            }
            let eng = IncentiveEngine::new(IncentiveConfig {
                detection_probability: p,
                negative_penalty_millis: 5000,
                ..IncentiveConfig::default()
            });
            let stats = eng.run(&mut agents, &mut rep, 40, &mut rng);
            stats.last().unwrap().mean_propensity
        };
        assert!(run_with(1.0, 3) > run_with(0.0, 3) + 0.05);
    }

    #[test]
    fn mixed_population_has_griefing_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop = mixed_population(1000, &mut rng);
        let griefers = pop.iter().filter(|a| a.disposition < 0.3).count();
        assert!((50..400).contains(&griefers), "griefers: {griefers}");
    }

    #[test]
    fn stats_fields_consistent() {
        let (mut agents, mut rep, mut rng) = setup(40, 13);
        let eng = IncentiveEngine::new(IncentiveConfig::default());
        let s = eng.step(&mut agents, &mut rep, 0, &mut rng);
        assert!((0.0..=1.0).contains(&s.positive_rate));
        assert!((0.0..=1.0).contains(&s.mean_propensity));
        assert!(s.mean_reputation >= 0.0 && s.mean_reputation <= 100.0);
        assert!(s.undetected_negative <= 40);
    }

    #[test]
    fn reputation_engine_receives_ledger_records() {
        let (mut agents, mut rep, mut rng) = setup(30, 17);
        let eng = IncentiveEngine::new(IncentiveConfig::default());
        eng.step(&mut agents, &mut rep, 0, &mut rng);
        assert!(!rep.drain_ledger_records().is_empty());
    }
}
