//! # metaverse-ledger
//!
//! A from-scratch distributed-ledger substrate for the `metaverse-kit`
//! workspace, reproducing the ledger role the paper assigns to Blockchain:
//!
//! > "A distributed ledger (Blockchain) can register any party's data
//! > collection and processing activities in the metaverse. Finally, the
//! > metaverse should guarantee no data monopoly from any parties in the
//! > data collection practices." — §II-D
//!
//! The crate provides:
//!
//! * [`crypto`] — SHA-256 ([`crypto::sha256`]) and Lamport one-time
//!   signatures with Merkle key trees ([`crypto::lamport`]), implemented
//!   from scratch. These primitives exist to give the simulation *real
//!   integrity semantics* (tamper detection, verifiable provenance); they
//!   are **not** hardened for production cryptography.
//! * [`merkle`] — binary Merkle trees with logarithmic inclusion proofs.
//! * [`tx`] — the transaction vocabulary of the metaverse ledger
//!   (governance records, asset transfers, audit events, attestations).
//! * [`block`] / [`chain`] — proof-of-authority block chain with full
//!   validation and tamper detection.
//! * [`audit`] — the data-collection audit registry and the
//!   data-monopoly metric (Herfindahl–Hirschman index) from §II-D.
//! * [`escrow`] — deterministic smart-record escrow for asset sales
//!   (§III-B's "automatically handle services").
//!
//! ## Quick example
//!
//! ```
//! use metaverse_ledger::chain::{Chain, ChainConfig};
//! use metaverse_ledger::tx::{Transaction, TxPayload};
//!
//! let mut chain = Chain::poa_single("validator-0", ChainConfig::default());
//! let tx = Transaction::new(
//!     "alice",
//!     TxPayload::Note { text: "hello metaverse".into() },
//! );
//! chain.submit(tx).unwrap();
//! let block = chain.seal_block().unwrap();
//! assert_eq!(block.header.height, 1);
//! assert!(chain.verify_integrity().is_ok());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod block;
pub mod chain;
pub mod crypto;
pub mod escrow;
pub mod error;
pub mod merkle;
pub mod tx;

pub use audit::{AuditRegistry, DataCollectionEvent, LawfulBasis, SensorClass};
pub use block::{Block, BlockHeader};
pub use chain::{Chain, ChainConfig, SealProfile};
pub use crypto::sha256::{sha256, Digest};
pub use error::LedgerError;
pub use escrow::{Escrow, EscrowBook, EscrowState};
pub use merkle::{MerkleProof, MerkleTree};
pub use tx::{Transaction, TxId, TxPayload};

/// Logical simulation time, measured in discrete ticks.
///
/// The whole workspace avoids wall-clock time inside simulation logic so
/// that every experiment is deterministic and reproducible.
pub type Tick = u64;
