//! SHA-256 implemented from scratch per FIPS 180-4.
//!
//! The implementation is a straightforward translation of the
//! specification: 512-bit blocks, 64-round compression, Merkle–Damgård
//! padding. It is validated against the official test vectors in the unit
//! tests at the bottom of this file.

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
///
/// Wraps `[u8; 32]` to give digests a distinct type, hex formatting, and
/// ordering (used for deterministic map iteration in consensus code).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the parent of genesis blocks.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a 64-character hex string into a digest.
    ///
    /// Returns `None` when the string has the wrong length or contains a
    /// non-hex character.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for i in 0..32 {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// A short 8-hex-character prefix, handy for logs and display.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use metaverse_ledger::crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; 64], buffered: 0, length: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partial buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Like `update` but does not count padding bytes in the length.
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    /// The FIPS 180-4 compression function over one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte slices, without
/// allocating an intermediate buffer.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // FIPS 180-4 test vector: 448-bit message crossing padding edge.
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 129] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn concat_matches_oneshot() {
        let a = b"hello ".as_slice();
        let b = b"metaverse".as_slice();
        let joined = [a, b].concat();
        assert_eq!(sha256_concat(&[a, b]), sha256(&joined));
    }

    #[test]
    fn padding_edge_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must not
        // panic and must be distinct.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=130usize {
            let data = vec![0xabu8; len];
            assert!(seen.insert(sha256(&data)), "collision at length {len}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn display_and_short() {
        let d = sha256(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
        assert_eq!(d.short().len(), 8);
        assert!(d.to_hex().starts_with(&d.short()));
    }
}
