//! From-scratch cryptographic primitives used by the ledger.
//!
//! Everything here is implemented against published specifications
//! (FIPS 180-4 for SHA-256, Lamport '79 for one-time signatures) so the
//! ledger has *genuine* integrity semantics — a tampered byte really does
//! invalidate proofs — while remaining dependency-free.
//!
//! **Security disclaimer.** These implementations are written for a
//! research simulation. They are not constant-time and have not been
//! audited; do not reuse them to protect real data.

pub mod lamport;
pub mod sha256;

pub use lamport::{KeyTree, LamportKeypair, LamportSignature, TreeSignature};
pub use sha256::{sha256, sha256_concat, Digest};
