//! Lamport one-time signatures and Merkle key trees.
//!
//! A Lamport keypair (Lamport, 1979) signs a single 256-bit message digest
//! by revealing, for each digest bit, one of two preimages committed in the
//! public key. Because each keypair must only ever sign once, we layer a
//! Merkle tree of `2^depth` one-time public keys on top ([`KeyTree`]),
//! giving a many-time scheme whose root hash is a compact long-lived
//! identity — the same construction that underlies hash-based signature
//! standards such as XMSS.
//!
//! Validators in [`crate::chain`] use [`KeyTree`] identities to seal
//! blocks, so the simulated metaverse ledger has verifiable block
//! provenance without any external cryptography dependency.

use rand::Rng;

use super::sha256::{sha256, sha256_concat, Digest};

/// Number of bits in the message digest being signed.
const BITS: usize = 256;

/// A Lamport one-time secret/public keypair.
///
/// The secret key is 2×256 random 32-byte values; the public key is their
/// hashes. Signing reveals one secret value per digest bit.
#[derive(Clone)]
pub struct LamportKeypair {
    secret: Box<[[Digest; 2]]>,
    public: Box<[[Digest; 2]]>,
    /// Whether this one-time key has already produced a signature.
    used: bool,
}

impl std::fmt::Debug for LamportKeypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LamportKeypair")
            .field("public_digest", &self.public_digest())
            .field("used", &self.used)
            .finish()
    }
}

/// A Lamport one-time signature: one revealed preimage per digest bit.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature {
    revealed: Box<[Digest]>,
}

impl std::fmt::Debug for LamportSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LamportSignature({} preimages)", self.revealed.len())
    }
}

impl LamportKeypair {
    /// Generates a fresh one-time keypair from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut secret = Vec::with_capacity(BITS);
        let mut public = Vec::with_capacity(BITS);
        for _ in 0..BITS {
            let mut s0 = [0u8; 32];
            let mut s1 = [0u8; 32];
            rng.fill(&mut s0);
            rng.fill(&mut s1);
            let sk = [Digest(s0), Digest(s1)];
            let pk = [sha256(&s0), sha256(&s1)];
            secret.push(sk);
            public.push(pk);
        }
        LamportKeypair {
            secret: secret.into_boxed_slice(),
            public: public.into_boxed_slice(),
            used: false,
        }
    }

    /// Hash of the full public key; used as the leaf in a [`KeyTree`].
    pub fn public_digest(&self) -> Digest {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(BITS * 2);
        for pair in self.public.iter() {
            parts.push(pair[0].as_bytes());
            parts.push(pair[1].as_bytes());
        }
        sha256_concat(&parts)
    }

    /// Signs a message digest, consuming the one-time property.
    ///
    /// Returns `None` if this keypair has already signed (reusing a
    /// Lamport key leaks secret material, so the API refuses).
    pub fn sign(&mut self, message: &Digest) -> Option<LamportSignature> {
        if self.used {
            return None;
        }
        self.used = true;
        let mut revealed = Vec::with_capacity(BITS);
        for (i, pair) in self.secret.iter().enumerate() {
            let bit = (message.0[i / 8] >> (7 - (i % 8))) & 1;
            revealed.push(pair[bit as usize]);
        }
        Some(LamportSignature { revealed: revealed.into_boxed_slice() })
    }

    /// Verifies `sig` over `message` against this keypair's public half.
    pub fn verify(&self, message: &Digest, sig: &LamportSignature) -> bool {
        verify_against(&self.public, message, sig)
    }

    /// True once [`LamportKeypair::sign`] has been called.
    pub fn is_used(&self) -> bool {
        self.used
    }

    /// The public half (pairs of hashes), needed to verify detached.
    pub fn public_key(&self) -> Vec<[Digest; 2]> {
        self.public.to_vec()
    }
}

/// Verifies a Lamport signature against an explicit public key.
pub fn verify_against(public: &[[Digest; 2]], message: &Digest, sig: &LamportSignature) -> bool {
    if public.len() != BITS || sig.revealed.len() != BITS {
        return false;
    }
    for (i, (pair, revealed)) in public.iter().zip(&sig.revealed).enumerate() {
        let bit = (message.0[i / 8] >> (7 - (i % 8))) & 1;
        if sha256(revealed.as_bytes()) != pair[bit as usize] {
            return false;
        }
    }
    true
}

/// A Merkle tree of Lamport one-time keys: a many-time signature identity.
///
/// `KeyTree::new(rng, depth)` prepares `2^depth` one-time keys. The tree
/// root ([`KeyTree::root`]) is the signer's long-lived public identity.
/// Each [`KeyTree::sign`] consumes the next unused leaf and emits a
/// [`TreeSignature`] carrying the leaf index, the one-time public key, the
/// Lamport signature, and the Merkle authentication path to the root.
///
/// ```
/// use metaverse_ledger::crypto::lamport::{KeyTree, TreeSignature};
/// use metaverse_ledger::crypto::sha256::sha256;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut tree = KeyTree::new(&mut rng, 2); // 4 one-time keys
/// let msg = sha256(b"seal block 1");
/// let sig = tree.sign(&msg).unwrap();
/// assert!(TreeSignature::verify(&tree.root(), &msg, &sig));
/// ```
#[derive(Debug, Clone)]
pub struct KeyTree {
    leaves: Vec<LamportKeypair>,
    /// `levels[0]` = leaf digests, last level = root (length 1).
    levels: Vec<Vec<Digest>>,
    next: usize,
}

/// A signature produced by a [`KeyTree`], verifiable against its root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSignature {
    /// Index of the one-time key used.
    pub leaf_index: usize,
    /// The one-time public key (pairs of hashes).
    pub one_time_public: Vec<[Digest; 2]>,
    /// The Lamport signature over the message.
    pub signature: LamportSignature,
    /// Sibling digests from leaf to root.
    pub auth_path: Vec<Digest>,
}

impl KeyTree {
    /// Builds a tree with `2^depth` one-time keys. `depth` must be ≤ 16.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 16` (65k keys ≈ 2 GiB of secret material — a
    /// configuration bug, not a runtime condition).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, depth: usize) -> Self {
        assert!(depth <= 16, "KeyTree depth {depth} too large");
        let n = 1usize << depth;
        let leaves: Vec<LamportKeypair> =
            (0..n).map(|_| LamportKeypair::generate(rng)).collect();
        let mut levels = Vec::with_capacity(depth + 1);
        levels.push(leaves.iter().map(|k| k.public_digest()).collect::<Vec<_>>());
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len() / 2);
            for pair in prev.chunks(2) {
                next.push(sha256_concat(&[pair[0].as_bytes(), pair[1].as_bytes()]));
            }
            levels.push(next);
        }
        KeyTree { leaves, levels, next: 0 }
    }

    /// The long-lived public identity of this signer.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of signatures this tree can still produce.
    pub fn remaining(&self) -> usize {
        self.leaves.len() - self.next
    }

    /// Total capacity (`2^depth`).
    pub fn capacity(&self) -> usize {
        self.leaves.len()
    }

    /// Signs `message` with the next unused one-time key.
    ///
    /// Returns `None` when every leaf has been consumed.
    pub fn sign(&mut self, message: &Digest) -> Option<TreeSignature> {
        if self.next >= self.leaves.len() {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let keypair = &mut self.leaves[index];
        let signature = keypair.sign(message)?;
        let one_time_public = keypair.public_key();

        let mut auth_path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            auth_path.push(level[idx ^ 1]);
            idx >>= 1;
        }

        Some(TreeSignature { leaf_index: index, one_time_public, signature, auth_path })
    }
}

impl TreeSignature {
    /// Verifies this signature over `message` against a tree `root`.
    pub fn verify(root: &Digest, message: &Digest, sig: &TreeSignature) -> bool {
        // 1. The Lamport signature must open the one-time public key.
        if !verify_against(&sig.one_time_public, message, &sig.signature) {
            return false;
        }
        // 2. The one-time public key must hash to a leaf that chains up to
        //    the root along the authentication path.
        let mut parts: Vec<&[u8]> = Vec::with_capacity(BITS * 2);
        for pair in &sig.one_time_public {
            parts.push(pair[0].as_bytes());
            parts.push(pair[1].as_bytes());
        }
        let mut node = sha256_concat(&parts);
        let mut idx = sig.leaf_index;
        for sibling in &sig.auth_path {
            node = if idx & 1 == 0 {
                sha256_concat(&[node.as_bytes(), sibling.as_bytes()])
            } else {
                sha256_concat(&[sibling.as_bytes(), node.as_bytes()])
            };
            idx >>= 1;
        }
        node == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rng();
        let mut kp = LamportKeypair::generate(&mut r);
        let msg = sha256(b"the metaverse");
        let sig = kp.sign(&msg).unwrap();
        assert!(kp.verify(&msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut r = rng();
        let mut kp = LamportKeypair::generate(&mut r);
        let sig = kp.sign(&sha256(b"m1")).unwrap();
        assert!(!kp.verify(&sha256(b"m2"), &sig));
    }

    #[test]
    fn one_time_property_enforced() {
        let mut r = rng();
        let mut kp = LamportKeypair::generate(&mut r);
        assert!(!kp.is_used());
        assert!(kp.sign(&sha256(b"a")).is_some());
        assert!(kp.is_used());
        assert!(kp.sign(&sha256(b"b")).is_none(), "second sign must be refused");
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut r = rng();
        let mut kp = LamportKeypair::generate(&mut r);
        let msg = sha256(b"tamper");
        let mut sig = kp.sign(&msg).unwrap();
        sig.revealed[0].0[0] ^= 1;
        assert!(!kp.verify(&msg, &sig));
    }

    #[test]
    fn key_tree_signs_to_capacity() {
        let mut r = rng();
        let mut tree = KeyTree::new(&mut r, 3);
        let root = tree.root();
        assert_eq!(tree.capacity(), 8);
        for i in 0..8 {
            let msg = sha256(format!("block {i}").as_bytes());
            let sig = tree.sign(&msg).expect("capacity remains");
            assert_eq!(sig.leaf_index, i);
            assert!(TreeSignature::verify(&root, &msg, &sig));
            assert_eq!(tree.remaining(), 8 - i - 1);
        }
        assert!(tree.sign(&sha256(b"overflow")).is_none());
    }

    #[test]
    fn tree_signature_cross_message_rejected() {
        let mut r = rng();
        let mut tree = KeyTree::new(&mut r, 1);
        let sig = tree.sign(&sha256(b"real")).unwrap();
        assert!(!TreeSignature::verify(&tree.root(), &sha256(b"forged"), &sig));
    }

    #[test]
    fn tree_signature_wrong_root_rejected() {
        let mut r = rng();
        let mut tree_a = KeyTree::new(&mut r, 1);
        let tree_b = KeyTree::new(&mut r, 1);
        let msg = sha256(b"block");
        let sig = tree_a.sign(&msg).unwrap();
        assert!(!TreeSignature::verify(&tree_b.root(), &msg, &sig));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut r = rng();
        let mut tree = KeyTree::new(&mut r, 2);
        let msg = sha256(b"path");
        let mut sig = tree.sign(&msg).unwrap();
        sig.auth_path[0].0[5] ^= 0xff;
        assert!(!TreeSignature::verify(&tree.root(), &msg, &sig));
    }

    #[test]
    fn distinct_keys_distinct_roots() {
        let mut r = rng();
        let t1 = KeyTree::new(&mut r, 1);
        let t2 = KeyTree::new(&mut r, 1);
        assert_ne!(t1.root(), t2.root());
    }
}
