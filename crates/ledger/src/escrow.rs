//! Escrow smart-records: deterministic contract execution on the chain.
//!
//! §III-B: DAOs "are based on Blockchain and smart contract
//! technologies […] The system can also automatically handle services,
//! such as selling a property asset in the metaverse, while being
//! transparent and fully accessible to any metaverse user."
//!
//! [`EscrowBook`] is a minimal smart-contract runtime for that sentence:
//! an asset sale is opened as an escrow; the buyer funds it; settlement
//! releases funds to the seller and (by convention) the asset to the
//! buyer; expiry refunds the buyer. Every state transition is a
//! deterministic function of chain transactions, so replaying the chain
//! reproduces the book exactly — the transparency property the paper
//! wants.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::LedgerError;
use crate::tx::TxPayload;
use crate::Tick;

/// Identifier of an escrow agreement.
pub type EscrowId = u64;

/// Lifecycle of an escrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscrowState {
    /// Opened by the seller; awaiting buyer funds.
    Open,
    /// Buyer has deposited the full price.
    Funded,
    /// Settled: funds to seller, asset to buyer.
    Settled,
    /// Expired or cancelled: funds returned to buyer (if any).
    Refunded,
}

/// One escrow agreement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Escrow {
    /// Unique id.
    pub id: EscrowId,
    /// Asset under sale.
    pub asset_id: u64,
    /// Selling account.
    pub seller: String,
    /// Buying account (fixed at opening; open offers use the funder).
    pub buyer: Option<String>,
    /// Sale price.
    pub price: u64,
    /// Deposited amount so far.
    pub deposited: u64,
    /// Tick after which the escrow can be expired.
    pub deadline: Tick,
    /// Current state.
    pub state: EscrowState,
}

/// The deterministic escrow state machine.
///
/// ```
/// use metaverse_ledger::escrow::{EscrowBook, EscrowState};
/// let mut book = EscrowBook::new();
/// let id = book.open(7, "seller", 100, 50).unwrap();
/// book.fund(id, "buyer", 100, 10).unwrap();
/// let settled = book.settle(id, 20).unwrap();
/// assert_eq!(settled.state, EscrowState::Settled);
/// assert_eq!(settled.buyer.as_deref(), Some("buyer"));
/// ```
#[derive(Debug, Default)]
pub struct EscrowBook {
    escrows: BTreeMap<EscrowId, Escrow>,
    next_id: EscrowId,
    pending_records: Vec<TxPayload>,
}

impl EscrowBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        EscrowBook { next_id: 1, ..Default::default() }
    }

    /// Opens an escrow for an asset sale. `window` ticks until expiry.
    pub fn open(
        &mut self,
        asset_id: u64,
        seller: &str,
        price: u64,
        window: Tick,
    ) -> Result<EscrowId, LedgerError> {
        if price == 0 {
            return Err(LedgerError::NotFound { what: "non-zero price".into() });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.escrows.insert(
            id,
            Escrow {
                id,
                asset_id,
                seller: seller.to_string(),
                buyer: None,
                price,
                deposited: 0,
                deadline: window,
                state: EscrowState::Open,
            },
        );
        self.pending_records.push(TxPayload::Note {
            text: format!("escrow:{id}:open:asset={asset_id}:seller={seller}:price={price}"),
        });
        Ok(id)
    }

    fn get_mut(&mut self, id: EscrowId) -> Result<&mut Escrow, LedgerError> {
        self.escrows
            .get_mut(&id)
            .ok_or(LedgerError::NotFound { what: format!("escrow {id}") })
    }

    /// Buyer deposits `amount` toward the price. Transitions to `Funded`
    /// when the full price is covered. Over-deposits are rejected.
    pub fn fund(
        &mut self,
        id: EscrowId,
        buyer: &str,
        amount: u64,
        now: Tick,
    ) -> Result<&Escrow, LedgerError> {
        let escrow = self.get_mut(id)?;
        if escrow.state != EscrowState::Open {
            return Err(LedgerError::NotFound { what: format!("open escrow {id}") });
        }
        if now > escrow.deadline {
            return Err(LedgerError::NotFound { what: format!("unexpired escrow {id}") });
        }
        match &escrow.buyer {
            None => escrow.buyer = Some(buyer.to_string()),
            Some(existing) if existing == buyer => {}
            Some(_) => {
                return Err(LedgerError::NotFound {
                    what: format!("escrow {id} already has a buyer"),
                })
            }
        }
        if escrow.deposited + amount > escrow.price {
            return Err(LedgerError::NotFound {
                what: format!("escrow {id} over-deposit"),
            });
        }
        escrow.deposited += amount;
        if escrow.deposited == escrow.price {
            escrow.state = EscrowState::Funded;
        }
        self.pending_records.push(TxPayload::Note {
            text: format!("escrow:{id}:fund:{buyer}:{amount}"),
        });
        self.escrows
            .get(&id)
            .ok_or_else(|| LedgerError::NotFound { what: format!("escrow {id}") })
    }

    /// Settles a funded escrow: emits the asset-transfer record.
    pub fn settle(&mut self, id: EscrowId, now: Tick) -> Result<Escrow, LedgerError> {
        let escrow = self.get_mut(id)?;
        if escrow.state != EscrowState::Funded {
            return Err(LedgerError::NotFound { what: format!("funded escrow {id}") });
        }
        escrow.state = EscrowState::Settled;
        let snapshot = escrow.clone();
        let buyer = snapshot.buyer.clone().ok_or_else(|| LedgerError::NotFound {
            what: format!("buyer of funded escrow {id}"),
        })?;
        self.pending_records.push(TxPayload::AssetTransfer {
            asset_id: snapshot.asset_id,
            from: snapshot.seller.clone(),
            to: buyer,
            price: snapshot.price,
        });
        self.pending_records.push(TxPayload::Note {
            text: format!("escrow:{id}:settled:tick={now}"),
        });
        Ok(snapshot)
    }

    /// Expires an escrow past its deadline (or cancels an unfunded one),
    /// refunding any deposit. Returns the refunded amount.
    pub fn expire(&mut self, id: EscrowId, now: Tick) -> Result<u64, LedgerError> {
        let escrow = self.get_mut(id)?;
        match escrow.state {
            EscrowState::Open | EscrowState::Funded => {}
            _ => return Err(LedgerError::NotFound { what: format!("live escrow {id}") }),
        }
        if now <= escrow.deadline && escrow.state == EscrowState::Funded {
            return Err(LedgerError::NotFound {
                what: format!("escrow {id} not yet expirable"),
            });
        }
        let refund = escrow.deposited;
        escrow.state = EscrowState::Refunded;
        let buyer = escrow.buyer.clone().unwrap_or_default();
        self.pending_records.push(TxPayload::Note {
            text: format!("escrow:{id}:refund:{buyer}:{refund}"),
        });
        Ok(refund)
    }

    /// Looks up an escrow.
    pub fn get(&self, id: EscrowId) -> Option<&Escrow> {
        self.escrows.get(&id)
    }

    /// Number of escrows ever opened.
    pub fn len(&self) -> usize {
        self.escrows.len()
    }

    /// True when no escrow was ever opened.
    pub fn is_empty(&self) -> bool {
        self.escrows.is_empty()
    }

    /// Escrows currently awaiting funds or settlement.
    pub fn live(&self) -> Vec<&Escrow> {
        self.escrows
            .values()
            .filter(|e| matches!(e.state, EscrowState::Open | EscrowState::Funded))
            .collect()
    }

    /// Takes the ledger records accumulated since the last drain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_settlement() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "seller", 100, 50).unwrap();
        assert_eq!(book.get(id).unwrap().state, EscrowState::Open);
        book.fund(id, "buyer", 60, 1).unwrap();
        assert_eq!(book.get(id).unwrap().state, EscrowState::Open, "partial");
        book.fund(id, "buyer", 40, 2).unwrap();
        assert_eq!(book.get(id).unwrap().state, EscrowState::Funded);
        let settled = book.settle(id, 3).unwrap();
        assert_eq!(settled.state, EscrowState::Settled);
        let records = book.drain_ledger_records();
        assert!(records
            .iter()
            .any(|r| matches!(r, TxPayload::AssetTransfer { price: 100, .. })));
    }

    #[test]
    fn cannot_settle_unfunded() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "s", 100, 50).unwrap();
        assert!(book.settle(id, 1).is_err());
        book.fund(id, "b", 50, 1).unwrap();
        assert!(book.settle(id, 2).is_err(), "half-funded cannot settle");
    }

    #[test]
    fn over_deposit_rejected() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "s", 100, 50).unwrap();
        assert!(book.fund(id, "b", 150, 1).is_err());
        book.fund(id, "b", 100, 1).unwrap();
        assert!(book.fund(id, "b", 1, 2).is_err(), "funded escrow takes no more");
    }

    #[test]
    fn second_buyer_rejected() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "s", 100, 50).unwrap();
        book.fund(id, "first", 10, 1).unwrap();
        assert!(book.fund(id, "second", 10, 2).is_err());
    }

    #[test]
    fn expiry_refunds_deposit() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "s", 100, 10).unwrap();
        book.fund(id, "b", 70, 5).unwrap();
        // Not expirable early while partially funded? Open state allows
        // cancellation any time; at tick 5 state is Open (70 < 100).
        let refund = book.expire(id, 5).unwrap();
        assert_eq!(refund, 70);
        assert_eq!(book.get(id).unwrap().state, EscrowState::Refunded);
        assert!(book.expire(id, 6).is_err(), "already refunded");
    }

    #[test]
    fn funded_escrow_expires_only_after_deadline() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "s", 100, 10).unwrap();
        book.fund(id, "b", 100, 5).unwrap();
        assert!(book.expire(id, 10).is_err(), "funded + in window: protected");
        let refund = book.expire(id, 11).unwrap();
        assert_eq!(refund, 100);
    }

    #[test]
    fn funding_after_deadline_rejected() {
        let mut book = EscrowBook::new();
        let id = book.open(7, "s", 100, 10).unwrap();
        assert!(book.fund(id, "b", 10, 11).is_err());
    }

    #[test]
    fn zero_price_rejected() {
        let mut book = EscrowBook::new();
        assert!(book.open(7, "s", 0, 10).is_err());
    }

    #[test]
    fn live_view() {
        let mut book = EscrowBook::new();
        let a = book.open(1, "s", 10, 10).unwrap();
        let b = book.open(2, "s", 10, 10).unwrap();
        book.fund(b, "b", 10, 1).unwrap();
        book.settle(b, 2).unwrap();
        let live: Vec<u64> = book.live().iter().map(|e| e.id).collect();
        assert_eq!(live, vec![a]);
        assert_eq!(book.len(), 2);
    }
}
