//! Blocks and block headers.

use crate::crypto::lamport::TreeSignature;
use crate::crypto::sha256::{sha256, Digest};
use crate::merkle::MerkleTree;
use crate::tx::Transaction;
use crate::Tick;

/// The sealed header of a block.
#[derive(Debug, Clone)]
pub struct BlockHeader {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Digest of the previous block's header.
    pub parent: Digest,
    /// Merkle root over the block's transactions.
    pub tx_root: Digest,
    /// Logical time at which the block was sealed.
    pub tick: Tick,
    /// Identity string of the sealing validator.
    pub validator: String,
}

impl BlockHeader {
    /// Canonical bytes of the header (what gets hashed and signed).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96 + self.validator.len());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(self.parent.as_bytes());
        out.extend_from_slice(self.tx_root.as_bytes());
        out.extend_from_slice(&self.tick.to_be_bytes());
        out.extend_from_slice(&(self.validator.len() as u64).to_be_bytes());
        out.extend_from_slice(self.validator.as_bytes());
        out
    }

    /// Digest of the header; the block's identity.
    pub fn digest(&self) -> Digest {
        sha256(&self.canonical_bytes())
    }
}

/// A block: header, transactions, and the validator's hash-based seal.
#[derive(Debug, Clone)]
pub struct Block {
    /// The sealed header.
    pub header: BlockHeader,
    /// Transactions included in this block.
    pub transactions: Vec<Transaction>,
    /// Hash-based signature over the header digest (absent only on
    /// genesis).
    pub seal: Option<TreeSignature>,
}

impl Block {
    /// The genesis block for a chain labelled by `network`.
    pub fn genesis(network: &str) -> Self {
        let header = BlockHeader {
            height: 0,
            parent: Digest::ZERO,
            tx_root: MerkleTree::empty_root(),
            tick: 0,
            validator: format!("genesis:{network}"),
        };
        Block { header, transactions: Vec::new(), seal: None }
    }

    /// Recomputes the Merkle root over this block's transactions.
    pub fn computed_tx_root(&self) -> Digest {
        MerkleTree::from_leaves(self.transactions.iter().map(|t| t.canonical_bytes())).root()
    }

    /// The Merkle tree over this block's transactions (for proofs).
    pub fn tx_tree(&self) -> MerkleTree {
        MerkleTree::from_leaves(self.transactions.iter().map(|t| t.canonical_bytes()))
    }

    /// The block id (header digest).
    pub fn id(&self) -> Digest {
        self.header.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxPayload;

    #[test]
    fn genesis_shape() {
        let g = Block::genesis("testnet");
        assert_eq!(g.header.height, 0);
        assert_eq!(g.header.parent, Digest::ZERO);
        assert!(g.transactions.is_empty());
        assert!(g.seal.is_none());
        assert_eq!(g.header.tx_root, MerkleTree::empty_root());
    }

    #[test]
    fn different_networks_different_genesis() {
        assert_ne!(Block::genesis("a").id(), Block::genesis("b").id());
    }

    #[test]
    fn header_digest_covers_all_fields() {
        let base = Block::genesis("x").header;
        let mut h = base.clone();
        h.height = 1;
        assert_ne!(base.digest(), h.digest());
        let mut h = base.clone();
        h.tick = 99;
        assert_ne!(base.digest(), h.digest());
        let mut h = base.clone();
        h.validator = "other".into();
        assert_ne!(base.digest(), h.digest());
    }

    #[test]
    fn computed_root_matches_tree() {
        let mut b = Block::genesis("t");
        b.transactions.push(Transaction::new("a", TxPayload::Note { text: "1".into() }));
        b.transactions.push(Transaction::new("b", TxPayload::Note { text: "2".into() }));
        assert_eq!(b.computed_tx_root(), b.tx_tree().root());
        assert_ne!(b.computed_tx_root(), MerkleTree::empty_root());
    }
}
