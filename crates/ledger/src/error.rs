//! Error types for the ledger crate.

use crate::crypto::sha256::Digest;

/// Errors returned by ledger operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LedgerError {
    /// A block referenced a parent that does not match the chain head.
    ParentMismatch {
        /// Height of the offending block.
        height: u64,
        /// Parent digest the block carried.
        expected: Digest,
        /// Actual digest of the previous block.
        actual: Digest,
    },
    /// A block's height is not `head + 1`.
    HeightMismatch {
        /// Height the block claimed.
        claimed: u64,
        /// Height the chain expected.
        expected: u64,
    },
    /// The block's transaction Merkle root does not match its body.
    TxRootMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// The block is not sealed by an authorized validator.
    UnknownValidator {
        /// Identity string the block carried.
        validator: String,
    },
    /// It is not `validator`'s turn in the round-robin schedule.
    OutOfTurn {
        /// Identity that tried to seal.
        validator: String,
        /// Identity whose turn it is.
        expected: String,
    },
    /// The block signature failed verification.
    BadSignature {
        /// Height of the offending block.
        height: u64,
    },
    /// A validator has exhausted its one-time signing keys.
    SignerExhausted {
        /// Identity that ran out of keys.
        validator: String,
    },
    /// A transaction was submitted twice.
    DuplicateTransaction {
        /// The duplicated transaction id.
        tx: Digest,
    },
    /// Attempted to seal a block with an empty mempool and
    /// `allow_empty_blocks` disabled.
    NothingToSeal,
    /// Integrity sweep found a corrupted block.
    CorruptBlock {
        /// Height of the corrupted block.
        height: u64,
        /// Human-readable description of the corruption.
        detail: String,
    },
    /// A requested item was not present.
    NotFound {
        /// What was being looked up.
        what: String,
    },
    /// The chain has no blocks at all — not even genesis. Unreachable
    /// through [`crate::chain::Chain`]'s constructors; the typed escape
    /// hatch [`crate::chain::Chain::try_head`] surfaces instead of a
    /// hot-path panic if the invariant is ever broken.
    EmptyChain,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::ParentMismatch { height, expected, actual } => write!(
                f,
                "block {height}: parent digest {expected} does not match chain head {actual}"
            ),
            LedgerError::HeightMismatch { claimed, expected } => {
                write!(f, "block claims height {claimed}, chain expects {expected}")
            }
            LedgerError::TxRootMismatch { height } => {
                write!(f, "block {height}: transaction merkle root mismatch")
            }
            LedgerError::UnknownValidator { validator } => {
                write!(f, "validator {validator:?} is not authorized")
            }
            LedgerError::OutOfTurn { validator, expected } => {
                write!(f, "validator {validator:?} sealed out of turn (expected {expected:?})")
            }
            LedgerError::BadSignature { height } => {
                write!(f, "block {height}: seal signature failed verification")
            }
            LedgerError::SignerExhausted { validator } => {
                write!(f, "validator {validator:?} has no one-time keys left")
            }
            LedgerError::DuplicateTransaction { tx } => {
                write!(f, "transaction {tx} already known")
            }
            LedgerError::NothingToSeal => write!(f, "mempool empty and empty blocks disabled"),
            LedgerError::CorruptBlock { height, detail } => {
                write!(f, "block {height} corrupted: {detail}")
            }
            LedgerError::NotFound { what } => write!(f, "not found: {what}"),
            LedgerError::EmptyChain => write!(f, "chain has no blocks (missing genesis)"),
        }
    }
}

impl std::error::Error for LedgerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LedgerError::HeightMismatch { claimed: 5, expected: 3 };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('3'));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(LedgerError::NothingToSeal);
    }
}
