//! Data-collection audit registry and data-monopoly metrics.
//!
//! Implements §II-D of the paper:
//!
//! > "A distributed ledger (Blockchain) can register any party's data
//! > collection and processing activities in the metaverse. Finally, the
//! > metaverse should guarantee no data monopoly from any parties in the
//! > data collection practices."
//!
//! Every sensor read that leaves a user's device is registered as a
//! [`DataCollectionEvent`]. The [`AuditRegistry`] aggregates events and
//! computes a concentration metric — the Herfindahl–Hirschman index (HHI)
//! over per-party collection shares — so the platform can detect and act
//! on emerging data monopolies (experiment E6).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Tick;

/// Category of sensor data collected, following the paper's taxonomy of
/// sensory-level privacy threats (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SensorClass {
    /// Eye-tracking / gaze direction ("gaze data can give away users'
    /// sexual preferences").
    Gaze,
    /// Gait and body movement.
    Gait,
    /// Heart rate and other physiological signals.
    HeartRate,
    /// Head movement from the HMD IMU.
    HeadMovement,
    /// Spatial scans of the user's surroundings (rooms, bystanders).
    SpatialScan,
    /// Microphone audio.
    Audio,
    /// Hand and controller tracking.
    HandTracking,
    /// In-world behavioural telemetry (interactions, visits).
    Behavioural,
}

impl SensorClass {
    /// All sensor classes, in canonical order.
    pub const ALL: [SensorClass; 8] = [
        SensorClass::Gaze,
        SensorClass::Gait,
        SensorClass::HeartRate,
        SensorClass::HeadMovement,
        SensorClass::SpatialScan,
        SensorClass::Audio,
        SensorClass::HandTracking,
        SensorClass::Behavioural,
    ];

    /// Whether this class is biometric in the GDPR Art. 9 sense
    /// (special-category data demanding a stricter lawful basis).
    pub fn is_biometric(self) -> bool {
        matches!(
            self,
            SensorClass::Gaze
                | SensorClass::Gait
                | SensorClass::HeartRate
                | SensorClass::HeadMovement
                | SensorClass::HandTracking
        )
    }

    /// Stable numeric tag used by the canonical encoding.
    pub fn tag(self) -> u8 {
        match self {
            SensorClass::Gaze => 0,
            SensorClass::Gait => 1,
            SensorClass::HeartRate => 2,
            SensorClass::HeadMovement => 3,
            SensorClass::SpatialScan => 4,
            SensorClass::Audio => 5,
            SensorClass::HandTracking => 6,
            SensorClass::Behavioural => 7,
        }
    }
}

/// Lawful basis for a collection event, mirroring GDPR Art. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LawfulBasis {
    /// Explicit user consent.
    Consent,
    /// Necessary for the service contract (e.g. head pose to render).
    Contract,
    /// Legitimate interest claimed by the collector.
    LegitimateInterest,
    /// Safety-critical processing (e.g. collision avoidance scans).
    VitalInterest,
    /// No basis recorded — flagged as a violation by compliance checks.
    None,
}

impl LawfulBasis {
    /// Stable numeric tag used by the canonical encoding.
    pub fn tag(self) -> u8 {
        match self {
            LawfulBasis::Consent => 0,
            LawfulBasis::Contract => 1,
            LawfulBasis::LegitimateInterest => 2,
            LawfulBasis::VitalInterest => 3,
            LawfulBasis::None => 4,
        }
    }
}

/// One registered data-collection or processing activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataCollectionEvent {
    /// The party (company, module, service) collecting the data.
    pub collector: String,
    /// The user the data is about.
    pub subject: String,
    /// What kind of sensor data was taken.
    pub sensor: SensorClass,
    /// Declared purpose ("rendering", "analytics", "ads", …).
    pub purpose: String,
    /// Lawful basis claimed for the collection.
    pub basis: LawfulBasis,
    /// Logical time of the event.
    pub tick: Tick,
    /// Approximate payload size in bytes (drives monopoly shares).
    pub bytes: u64,
}

impl DataCollectionEvent {
    /// Appends the canonical byte encoding (used inside transactions).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u64).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        put_str(out, &self.collector);
        put_str(out, &self.subject);
        out.push(self.sensor.tag());
        put_str(out, &self.purpose);
        out.push(self.basis.tag());
        out.extend_from_slice(&self.tick.to_be_bytes());
        out.extend_from_slice(&self.bytes.to_be_bytes());
    }
}

/// Aggregated view over registered collection events.
///
/// ```
/// use metaverse_ledger::audit::*;
/// let mut reg = AuditRegistry::new();
/// reg.record(DataCollectionEvent {
///     collector: "megacorp".into(),
///     subject: "alice".into(),
///     sensor: SensorClass::Gaze,
///     purpose: "ads".into(),
///     basis: LawfulBasis::None,
///     tick: 0,
///     bytes: 1024,
/// });
/// assert_eq!(reg.violations().len(), 1);
/// assert!((reg.hhi() - 1.0).abs() < 1e-9); // single collector = monopoly
/// ```
#[derive(Debug, Clone, Default)]
pub struct AuditRegistry {
    events: Vec<DataCollectionEvent>,
    bytes_by_collector: BTreeMap<String, u64>,
}

impl AuditRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an event.
    pub fn record(&mut self, event: DataCollectionEvent) {
        *self.bytes_by_collector.entry(event.collector.clone()).or_insert(0) += event.bytes;
        self.events.push(event);
    }

    /// All registered events, in registration order.
    pub fn events(&self) -> &[DataCollectionEvent] {
        &self.events
    }

    /// Number of registered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events lacking a lawful basis, or biometric events collected
    /// without explicit consent — the compliance findings an IRB-style
    /// review (paper §II-D) would raise.
    pub fn violations(&self) -> Vec<&DataCollectionEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.basis == LawfulBasis::None
                    || (e.sensor.is_biometric()
                        && !matches!(e.basis, LawfulBasis::Consent | LawfulBasis::VitalInterest))
            })
            .collect()
    }

    /// Bytes collected per party, in deterministic (sorted) order.
    pub fn shares(&self) -> Vec<(String, f64)> {
        let total: u64 = self.bytes_by_collector.values().sum();
        if total == 0 {
            return Vec::new();
        }
        self.bytes_by_collector
            .iter()
            .map(|(k, v)| (k.clone(), *v as f64 / total as f64))
            .collect()
    }

    /// Herfindahl–Hirschman index over per-collector byte shares.
    ///
    /// 1.0 = perfect monopoly; 1/n = perfectly even split across n
    /// collectors; 0.0 when no data has been collected.
    pub fn hhi(&self) -> f64 {
        self.shares().iter().map(|(_, s)| s * s).sum()
    }

    /// Whether the registry currently violates a "no data monopoly"
    /// guarantee at the given HHI threshold (antitrust practice flags
    /// markets above ≈0.25 as highly concentrated).
    pub fn has_monopoly(&self, threshold: f64) -> bool {
        !self.events.is_empty() && self.hhi() > threshold
    }

    /// The collector with the largest byte share, if any.
    pub fn dominant_collector(&self) -> Option<(String, f64)> {
        self.shares()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Events concerning one subject — the "right of access" view a user
    /// gets when asking *who is in control of all this information?*
    /// (§II-B).
    pub fn events_about(&self, subject: &str) -> Vec<&DataCollectionEvent> {
        self.events.iter().filter(|e| e.subject == subject).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(collector: &str, sensor: SensorClass, basis: LawfulBasis, bytes: u64) -> DataCollectionEvent {
        DataCollectionEvent {
            collector: collector.into(),
            subject: "alice".into(),
            sensor,
            purpose: "test".into(),
            basis,
            tick: 0,
            bytes,
        }
    }

    #[test]
    fn empty_registry() {
        let reg = AuditRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.hhi(), 0.0);
        assert!(!reg.has_monopoly(0.25));
        assert!(reg.dominant_collector().is_none());
    }

    #[test]
    fn hhi_monopoly_and_even_split() {
        let mut reg = AuditRegistry::new();
        reg.record(ev("a", SensorClass::Audio, LawfulBasis::Consent, 100));
        assert!((reg.hhi() - 1.0).abs() < 1e-12);
        assert!(reg.has_monopoly(0.25));

        reg.record(ev("b", SensorClass::Audio, LawfulBasis::Consent, 100));
        reg.record(ev("c", SensorClass::Audio, LawfulBasis::Consent, 100));
        reg.record(ev("d", SensorClass::Audio, LawfulBasis::Consent, 100));
        assert!((reg.hhi() - 0.25).abs() < 1e-12);
        assert!(!reg.has_monopoly(0.25));
    }

    #[test]
    fn violations_flag_missing_basis_and_biometric_without_consent() {
        let mut reg = AuditRegistry::new();
        reg.record(ev("a", SensorClass::Audio, LawfulBasis::None, 1));
        reg.record(ev("a", SensorClass::Gaze, LawfulBasis::LegitimateInterest, 1));
        reg.record(ev("a", SensorClass::Gaze, LawfulBasis::Consent, 1));
        reg.record(ev("a", SensorClass::SpatialScan, LawfulBasis::Contract, 1));
        let v = reg.violations();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn biometric_classification() {
        assert!(SensorClass::Gaze.is_biometric());
        assert!(SensorClass::HeartRate.is_biometric());
        assert!(!SensorClass::Audio.is_biometric());
        assert!(!SensorClass::Behavioural.is_biometric());
    }

    #[test]
    fn subject_access_view() {
        let mut reg = AuditRegistry::new();
        reg.record(ev("a", SensorClass::Audio, LawfulBasis::Consent, 1));
        let mut other = ev("a", SensorClass::Audio, LawfulBasis::Consent, 1);
        other.subject = "bob".into();
        reg.record(other);
        assert_eq!(reg.events_about("alice").len(), 1);
        assert_eq!(reg.events_about("bob").len(), 1);
        assert_eq!(reg.events_about("carol").len(), 0);
    }

    #[test]
    fn dominant_collector_tracks_bytes() {
        let mut reg = AuditRegistry::new();
        reg.record(ev("small", SensorClass::Audio, LawfulBasis::Consent, 10));
        reg.record(ev("big", SensorClass::Audio, LawfulBasis::Consent, 90));
        let (name, share) = reg.dominant_collector().unwrap();
        assert_eq!(name, "big");
        assert!((share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn encoding_distinguishes_fields() {
        let a = ev("x", SensorClass::Gaze, LawfulBasis::Consent, 5);
        let mut b = a.clone();
        b.sensor = SensorClass::Gait;
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ba);
        b.encode_into(&mut bb);
        assert_ne!(ba, bb);
    }
}
