//! A proof-of-authority block chain.
//!
//! The chain is a *simulation of the whole network*: it owns the validator
//! identities (Lamport [`KeyTree`]s), assigns sealing turns round-robin,
//! and validates every imported block exactly as an honest full node
//! would. Tamper detection is real — flipping any byte in a stored block
//! is caught by [`Chain::verify_integrity`] because hashes and hash-based
//! signatures are recomputed from scratch.
//!
//! Proof-of-authority (rather than proof-of-work/stake) matches how the
//! platforms the paper cites actually run their governance chains at
//! simulation scale, and keeps experiments deterministic.

use std::collections::HashMap;

use crate::block::{Block, BlockHeader};
use crate::crypto::lamport::{KeyTree, TreeSignature};
use crate::crypto::sha256::{sha256, Digest};
use crate::error::LedgerError;
use crate::merkle::MerkleProof;
use crate::tx::{Transaction, TxId};
use crate::Tick;

/// Tuning knobs for a [`Chain`].
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Maximum transactions sealed into one block.
    pub max_txs_per_block: usize,
    /// Whether sealing with an empty mempool is allowed.
    pub allow_empty_blocks: bool,
    /// Depth of each validator's Merkle key tree (capacity `2^depth`
    /// blocks per validator).
    pub key_tree_depth: usize,
    /// Enforce strict round-robin sealing order.
    pub enforce_round_robin: bool,
    /// Worker threads [`Chain::seal_all_profiled`] may spread Merkle
    /// root builds, signing, and seal verification across when the
    /// mempool drains into more than one block. `1` (the default)
    /// seals strictly sequentially; `0` sizes to the host's available
    /// parallelism. The appended chain is byte-identical at any
    /// setting — parallel sealing falls back to the sequential path
    /// whenever it could observably differ (single block, or a
    /// validator near key exhaustion).
    pub seal_workers: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            max_txs_per_block: 256,
            allow_empty_blocks: false,
            key_tree_depth: 10,
            enforce_round_robin: true,
            seal_workers: 1,
        }
    }
}

/// Wall-clock cost of sealing one block, split by phase (nanoseconds),
/// plus the sealed block's identity (height and header digest) so
/// committers can hand provenance to tracing layers without re-reading
/// the chain. Produced by [`Chain::seal_block_profiled`]; purely
/// observational.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealProfile {
    /// Building the block's Merkle transaction root.
    pub merkle_ns: u64,
    /// Hashing the header and producing the Lamport tree signature.
    pub sign_ns: u64,
    /// Validating, indexing, and appending the sealed block.
    pub append_ns: u64,
    /// Height of the sealed block.
    pub height: u64,
    /// Header digest of the sealed block (its chain identity).
    pub block: Digest,
}

impl Default for SealProfile {
    fn default() -> Self {
        SealProfile { merkle_ns: 0, sign_ns: 0, append_ns: 0, height: 0, block: Digest::ZERO }
    }
}

impl SealProfile {
    /// Total sealing cost across the three phases.
    pub fn total_ns(&self) -> u64 {
        self.merkle_ns + self.sign_ns + self.append_ns
    }
}

/// Elapsed nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_ns(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Maps `f` over `items` across (at most) `workers` scoped threads,
/// returning results in item order regardless of thread scheduling —
/// the seal phases that use this stay deterministic because ordering
/// never depends on which thread finished first.
fn par_map<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let chunk = items.len().div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, item)| f(ci * chunk + j, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// A validator identity: a name and its hash-based signing tree.
#[derive(Debug)]
struct Validator {
    id: String,
    signer: KeyTree,
    root: Digest,
}

/// The proof-of-authority ledger.
///
/// See the crate-level example for basic usage.
#[derive(Debug)]
pub struct Chain {
    config: ChainConfig,
    blocks: Vec<Block>,
    mempool: Vec<Transaction>,
    validators: Vec<Validator>,
    next_validator: usize,
    nonces: HashMap<String, u64>,
    tx_index: HashMap<TxId, (u64, usize)>,
    tick: Tick,
}

impl Chain {
    /// Creates a chain with a single validator (deterministic keys derived
    /// from the validator id). Convenient for tests and experiments.
    pub fn poa_single(validator: &str, config: ChainConfig) -> Self {
        Self::poa(&[validator], config)
    }

    /// Creates a chain with the given validator set. Keys are derived
    /// deterministically from each validator id, so two chains built from
    /// the same ids accept each other's blocks.
    pub fn poa(validator_ids: &[&str], config: ChainConfig) -> Self {
        use rand::SeedableRng;
        let validators = validator_ids
            .iter()
            .map(|id| {
                let seed = sha256(format!("validator-seed:{id}").as_bytes());
                let mut seed_bytes = [0u8; 32];
                seed_bytes.copy_from_slice(seed.as_bytes());
                let mut rng = rand::rngs::StdRng::from_seed(seed_bytes);
                let signer = KeyTree::new(&mut rng, config.key_tree_depth);
                let root = signer.root();
                Validator { id: (*id).to_string(), signer, root }
            })
            .collect();
        Chain {
            config,
            blocks: vec![Block::genesis("metaverse")],
            mempool: Vec::new(),
            validators,
            next_validator: 0,
            nonces: HashMap::new(),
            tx_index: HashMap::new(),
            tick: 0,
        }
    }

    /// Advances logical time by `n` ticks.
    pub fn advance(&mut self, n: Tick) {
        self.tick += n;
    }

    /// Current logical time.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Submits a transaction to the mempool, assigning the sender's next
    /// nonce. Returns the final transaction id.
    pub fn submit(&mut self, mut tx: Transaction) -> Result<TxId, LedgerError> {
        let nonce = self.nonces.entry(tx.sender.clone()).or_insert(0);
        tx.nonce = *nonce;
        *nonce += 1;
        let id = tx.id();
        if self.tx_index.contains_key(&id) {
            return Err(LedgerError::DuplicateTransaction { tx: id });
        }
        self.mempool.push(tx);
        Ok(id)
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Seals the next block with the scheduled validator and appends it.
    ///
    /// Returns a clone of the sealed block.
    pub fn seal_block(&mut self) -> Result<Block, LedgerError> {
        self.seal_block_profiled().map(|(block, _)| block)
    }

    /// [`Chain::seal_block`] with a wall-clock phase profile: how long
    /// the Merkle root build, the Lamport seal, and the append
    /// (validate + index + push) took. Profiling never alters sealing
    /// behaviour; the platform's telemetry layer feeds these phases
    /// into its epoch-commit histograms.
    pub fn seal_block_profiled(&mut self) -> Result<(Block, SealProfile), LedgerError> {
        if self.mempool.is_empty() && !self.config.allow_empty_blocks {
            return Err(LedgerError::NothingToSeal);
        }
        let take = self.mempool.len().min(self.config.max_txs_per_block);
        let txs: Vec<Transaction> = self.mempool.drain(..take).collect();

        let v_idx = self.next_validator;
        let head = self.try_head()?;
        let parent = head.id();
        let height = head.header.height + 1;
        let mut block = Block {
            header: BlockHeader {
                height,
                parent,
                tx_root: Digest::ZERO,
                tick: self.tick,
                validator: self.validators[v_idx].id.clone(),
            },
            transactions: txs,
            seal: None,
        };
        let mut profile = SealProfile::default();
        let started = std::time::Instant::now();
        block.header.tx_root = block.computed_tx_root();
        profile.merkle_ns = elapsed_ns(started);

        let started = std::time::Instant::now();
        let digest = block.header.digest();
        let seal = self.validators[v_idx].signer.sign(&digest).ok_or_else(|| {
            LedgerError::SignerExhausted { validator: self.validators[v_idx].id.clone() }
        })?;
        block.seal = Some(seal);
        profile.sign_ns = elapsed_ns(started);
        profile.height = height;
        profile.block = digest;

        let started = std::time::Instant::now();
        self.validate_block(&block)?;
        self.index_block(&block);
        self.blocks.push(block.clone());
        self.next_validator = (v_idx + 1) % self.validators.len();
        profile.append_ns = elapsed_ns(started);
        Ok((block, profile))
    }

    /// Seals blocks until the mempool is drained. Returns how many blocks
    /// were produced.
    pub fn seal_all(&mut self) -> Result<usize, LedgerError> {
        self.seal_all_profiled().map(|(sealed, _)| sealed)
    }

    /// [`Chain::seal_all`] with one [`SealProfile`] *per sealed block*,
    /// in seal order — callers wanting per-phase totals across the
    /// drain must aggregate the vector themselves.
    ///
    /// With [`ChainConfig::seal_workers`] above `1` (and at least two
    /// blocks' worth of mempool), the Merkle root builds, per-validator
    /// signing, and seal verification fan out across scoped threads;
    /// header construction and the append stay sequential, so the
    /// resulting chain bytes are identical to a sequential drain. Any
    /// situation where parallel sealing could diverge observably —
    /// notably a validator without enough Lamport keys left, where the
    /// sequential path seals a prefix before failing — takes the
    /// sequential path instead.
    pub fn seal_all_profiled(&mut self) -> Result<(usize, Vec<SealProfile>), LedgerError> {
        let workers = self.seal_worker_count();
        let blocks = self.pending_blocks();
        if workers > 1 && blocks > 1 && self.can_seal_all(blocks) {
            self.seal_all_parallel(workers, blocks)
        } else {
            self.seal_all_sequential()
        }
    }

    /// The strictly sequential mempool drain: one
    /// [`Chain::seal_block_profiled`] per block.
    fn seal_all_sequential(&mut self) -> Result<(usize, Vec<SealProfile>), LedgerError> {
        let mut profiles = Vec::new();
        while !self.mempool.is_empty() {
            let (_, profile) = self.seal_block_profiled()?;
            profiles.push(profile);
        }
        Ok((profiles.len(), profiles))
    }

    /// Resolved seal-phase worker count (`0` = host parallelism).
    fn seal_worker_count(&self) -> usize {
        match self.config.seal_workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// How many blocks draining the current mempool will produce.
    fn pending_blocks(&self) -> usize {
        self.mempool.len().div_ceil(self.config.max_txs_per_block.max(1))
    }

    /// Pre-flight for the parallel drain: does every validator hold
    /// enough Lamport keys for its round-robin share of `blocks`? When
    /// not, the sequential path runs instead so the partial-seal error
    /// semantics (a prefix seals, then `SignerExhausted`) are exactly
    /// the legacy ones.
    fn can_seal_all(&self, blocks: usize) -> bool {
        let n = self.validators.len();
        self.validators.iter().enumerate().all(|(i, v)| {
            // Blocks assigned to validator i: k in 0..blocks with
            // (next_validator + k) % n == i.
            let offset = (i + n - self.next_validator % n) % n;
            let share = if offset < blocks { (blocks - offset).div_ceil(n) } else { 0 };
            v.signer.remaining() >= share
        })
    }

    /// Drains the whole mempool with the expensive per-block phases
    /// fanned out across `workers` scoped threads:
    ///
    /// 1. **Merkle roots** (parallel) — each block's tx root depends
    ///    only on its own transactions.
    /// 2. **Headers + digests** (sequential) — each header's parent is
    ///    the previous header's digest, an inherently serial chain.
    /// 3. **Signing** (parallel across validators) — a Lamport
    ///    [`KeyTree`] consumes leaves in sign order, so each
    ///    validator's blocks sign sequentially on one thread, in block
    ///    order, exactly as the sequential drain would.
    /// 4. **Seal verification** (parallel) — recomputes tx roots and
    ///    verifies every signature, mirroring
    ///    [`Chain::validate_block`].
    /// 5. **Append** (sequential) — indexing and pushing, in height
    ///    order.
    ///
    /// Caller guarantees `blocks > 1` and [`Chain::can_seal_all`].
    fn seal_all_parallel(
        &mut self,
        workers: usize,
        blocks: usize,
    ) -> Result<(usize, Vec<SealProfile>), LedgerError> {
        use crate::merkle::MerkleTree;

        let max = self.config.max_txs_per_block.max(1);
        let mut chunks: Vec<Vec<Transaction>> = Vec::with_capacity(blocks);
        while !self.mempool.is_empty() {
            let take = self.mempool.len().min(max);
            chunks.push(self.mempool.drain(..take).collect());
        }
        debug_assert_eq!(chunks.len(), blocks);

        // Phase 1: tx roots, embarrassingly parallel.
        let roots: Vec<(Digest, u64)> = par_map(&chunks, workers, |_, txs| {
            let started = std::time::Instant::now();
            let root = MerkleTree::from_leaves(txs.iter().map(|t| t.canonical_bytes())).root();
            (root, elapsed_ns(started))
        });

        // Phase 2: headers and digests — serial by construction, since
        // each block's parent *is* the previous header's digest.
        let head = self.try_head()?;
        let mut parent = head.id();
        let base_height = head.header.height + 1;
        let n_validators = self.validators.len();
        let mut partial: Vec<Block> = Vec::with_capacity(blocks);
        let mut digests: Vec<Digest> = Vec::with_capacity(blocks);
        let mut profiles: Vec<SealProfile> = Vec::with_capacity(blocks);
        for (k, (txs, &(root, merkle_ns))) in chunks.into_iter().zip(&roots).enumerate() {
            let v_idx = (self.next_validator + k) % n_validators;
            let header = BlockHeader {
                height: base_height + k as u64,
                parent,
                tx_root: root,
                tick: self.tick,
                validator: self.validators[v_idx].id.clone(),
            };
            let started = std::time::Instant::now();
            let digest = header.digest();
            let digest_ns = elapsed_ns(started);
            parent = digest;
            digests.push(digest);
            partial.push(Block { header, transactions: txs, seal: None });
            profiles.push(SealProfile {
                merkle_ns,
                sign_ns: digest_ns,
                append_ns: 0,
                height: partial[k].header.height,
                block: digest,
            });
        }

        // Phase 3: signing, parallel across validators. Leaf order
        // within a key tree is preserved because one thread owns each
        // validator and signs its blocks in block order.
        let mut per_validator: Vec<Vec<usize>> = vec![Vec::new(); n_validators];
        for k in 0..blocks {
            per_validator[(self.next_validator + k) % n_validators].push(k);
        }
        // Per validator: (block index, seal, sign-phase nanoseconds).
        type SignedBatch = Result<Vec<(usize, TreeSignature, u64)>, LedgerError>;
        let digests_ref: &[Digest] = &digests;
        let signed: Vec<SignedBatch> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (validator, assigned) in self.validators.iter_mut().zip(per_validator) {
                    if assigned.is_empty() {
                        continue;
                    }
                    handles.push(scope.spawn(move || {
                        let mut seals = Vec::with_capacity(assigned.len());
                        for k in assigned {
                            let started = std::time::Instant::now();
                            let seal =
                                validator.signer.sign(&digests_ref[k]).ok_or_else(|| {
                                    LedgerError::SignerExhausted {
                                        validator: validator.id.clone(),
                                    }
                                })?;
                            seals.push((k, seal, elapsed_ns(started)));
                        }
                        Ok(seals)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });
        for result in signed {
            // Unreachable given the `can_seal_all` pre-flight, but
            // surfaced as the typed error rather than a panic.
            for (k, seal, sign_ns) in result? {
                partial[k].seal = Some(seal);
                profiles[k].sign_ns += sign_ns;
            }
        }

        // Phase 4: verification, parallel — the same checks
        // `validate_block` runs inside the sequential drain, against
        // the by-construction parent/height expectations.
        let next_validator = self.next_validator;
        let validators: &[Validator] = &self.validators;
        let verified: Vec<(u64, Result<(), LedgerError>)> =
            par_map(&partial, workers, |k, block| {
                let started = std::time::Instant::now();
                let outcome = (|| {
                    if block.header.tx_root != block.computed_tx_root() {
                        return Err(LedgerError::TxRootMismatch { height: block.header.height });
                    }
                    let validator = &validators[(next_validator + k) % validators.len()];
                    let seal = block
                        .seal
                        .as_ref()
                        .ok_or(LedgerError::BadSignature { height: block.header.height })?;
                    if !TreeSignature::verify(&validator.root, &block.header.digest(), seal) {
                        return Err(LedgerError::BadSignature { height: block.header.height });
                    }
                    Ok(())
                })();
                (elapsed_ns(started), outcome)
            });
        for (profile, (verify_ns, outcome)) in profiles.iter_mut().zip(verified) {
            outcome?;
            profile.append_ns += verify_ns;
        }

        // Phase 5: append, sequential in height order.
        for (k, block) in partial.into_iter().enumerate() {
            let started = std::time::Instant::now();
            self.index_block(&block);
            self.blocks.push(block);
            profiles[k].append_ns += elapsed_ns(started);
        }
        self.next_validator = (self.next_validator + blocks) % n_validators;
        Ok((blocks, profiles))
    }

    fn index_block(&mut self, block: &Block) {
        for (i, tx) in block.transactions.iter().enumerate() {
            self.tx_index.insert(tx.id(), (block.header.height, i));
        }
    }

    /// Validates a block against the current head without appending it.
    pub fn validate_block(&self, block: &Block) -> Result<(), LedgerError> {
        let head = self.try_head()?;
        if block.header.height != head.header.height + 1 {
            return Err(LedgerError::HeightMismatch {
                claimed: block.header.height,
                expected: head.header.height + 1,
            });
        }
        if block.header.parent != head.id() {
            return Err(LedgerError::ParentMismatch {
                height: block.header.height,
                expected: block.header.parent,
                actual: head.id(),
            });
        }
        if block.header.tx_root != block.computed_tx_root() {
            return Err(LedgerError::TxRootMismatch { height: block.header.height });
        }
        let validator = self
            .validators
            .iter()
            .find(|v| v.id == block.header.validator)
            .ok_or_else(|| LedgerError::UnknownValidator {
                validator: block.header.validator.clone(),
            })?;
        if self.config.enforce_round_robin {
            let expected = &self.validators[self.next_validator];
            if expected.id != validator.id {
                return Err(LedgerError::OutOfTurn {
                    validator: validator.id.clone(),
                    expected: expected.id.clone(),
                });
            }
        }
        let seal = block
            .seal
            .as_ref()
            .ok_or(LedgerError::BadSignature { height: block.header.height })?;
        if !TreeSignature::verify(&validator.root, &block.header.digest(), seal) {
            return Err(LedgerError::BadSignature { height: block.header.height });
        }
        Ok(())
    }

    /// The chain head (genesis when no block has been sealed).
    ///
    /// Total by construction — every constructor seeds genesis and no
    /// path removes blocks — but implemented over [`Chain::try_head`]
    /// so a broken invariant surfaces as the typed
    /// [`LedgerError::EmptyChain`] on the sealing hot path rather than
    /// a panic here.
    pub fn head(&self) -> &Block {
        match self.blocks.last() {
            Some(block) => block,
            None => unreachable!("chain always has genesis"),
        }
    }

    /// Fallible view of the chain head: [`LedgerError::EmptyChain`]
    /// instead of a panic when the genesis invariant does not hold.
    pub fn try_head(&self) -> Result<&Block, LedgerError> {
        self.blocks.last().ok_or(LedgerError::EmptyChain)
    }

    /// Full chain, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Chain height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.head().header.height
    }

    /// Block at `height`, if within range.
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Locates a transaction by id: `(height, index within block)`.
    pub fn find_tx(&self, id: &TxId) -> Option<(u64, usize)> {
        self.tx_index.get(id).copied()
    }

    /// Produces a light-client inclusion proof for a transaction: the
    /// containing header plus a Merkle path to its `tx_root`.
    pub fn prove_tx(&self, id: &TxId) -> Option<(BlockHeader, MerkleProof)> {
        let (height, index) = self.find_tx(id)?;
        let block = self.block_at(height)?;
        let proof = block.tx_tree().prove(index)?;
        Some((block.header.clone(), proof))
    }

    /// Iterates over every transaction in chain order.
    pub fn iter_txs(&self) -> impl Iterator<Item = &Transaction> {
        self.blocks.iter().flat_map(|b| b.transactions.iter())
    }

    /// Re-validates the entire chain from genesis: parent links, heights,
    /// transaction roots, and every seal signature.
    pub fn verify_integrity(&self) -> Result<(), LedgerError> {
        for window in self.blocks.windows(2) {
            let (prev, block) = (&window[0], &window[1]);
            let height = block.header.height;
            if height != prev.header.height + 1 {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "non-contiguous height".into(),
                });
            }
            if block.header.parent != prev.id() {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "broken parent link".into(),
                });
            }
            if block.header.tx_root != block.computed_tx_root() {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "transaction root mismatch".into(),
                });
            }
            let Some(validator) =
                self.validators.iter().find(|v| v.id == block.header.validator)
            else {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: format!("unknown validator {:?}", block.header.validator),
                });
            };
            let Some(seal) = block.seal.as_ref() else {
                return Err(LedgerError::CorruptBlock { height, detail: "missing seal".into() });
            };
            if !TreeSignature::verify(&validator.root, &block.header.digest(), seal) {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "seal verification failed".into(),
                });
            }
        }
        Ok(())
    }

    /// Simulation hook: mutate a stored block in place to model an
    /// attacker with storage access, then observe
    /// [`Chain::verify_integrity`] catching it. Not part of the normal
    /// API surface — honest code never mutates sealed history.
    pub fn tamper<F: FnOnce(&mut Block)>(&mut self, height: u64, f: F) -> bool {
        match self.blocks.get_mut(height as usize) {
            Some(b) => {
                f(b);
                true
            }
            None => false,
        }
    }

    /// Validator identities, in sealing order.
    pub fn validator_ids(&self) -> Vec<&str> {
        self.validators.iter().map(|v| v.id.as_str()).collect()
    }

    /// Remaining block-sealing capacity of each validator.
    pub fn remaining_seals(&self) -> Vec<(String, usize)> {
        self.validators.iter().map(|v| (v.id.clone(), v.signer.remaining())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxPayload;

    fn note(sender: &str, text: &str) -> Transaction {
        Transaction::new(sender, TxPayload::Note { text: text.into() })
    }

    fn small() -> ChainConfig {
        ChainConfig { key_tree_depth: 4, ..ChainConfig::default() }
    }

    /// Regression for the former hot-path `expect` in `head()`: the
    /// fallible view agrees with the total one on every fresh and
    /// grown chain, and the sealing path goes through it.
    #[test]
    fn try_head_matches_head_and_feeds_the_seal_path() {
        let mut chain = Chain::poa_single("v0", small());
        assert_eq!(chain.try_head().unwrap().header.height, chain.head().header.height);
        chain.submit(note("a", "t")).unwrap();
        chain.seal_block().unwrap();
        let head = chain.try_head().unwrap();
        assert_eq!(head.header.height, 1);
        assert_eq!(head.id(), chain.head().id());
    }

    #[test]
    fn profiled_seal_matches_plain_seal_semantics() {
        let mut chain = Chain::poa(&["v0"], small());
        for i in 0..3 {
            chain.submit(note("a", &format!("t{i}"))).unwrap();
        }
        let (block, profile) = chain.seal_block_profiled().unwrap();
        assert_eq!(block.transactions.len(), 3);
        // Merkle-root build and Lamport signing do real hashing work, so
        // their phases are observable; the profile is measurement only.
        assert!(profile.sign_ns > 0, "signing hashes a key tree: {profile:?}");
        assert_eq!(
            profile.total_ns(),
            profile.merkle_ns + profile.sign_ns + profile.append_ns
        );
        // The profile names the block it sealed: height and header
        // digest (the block's chain identity, used for provenance).
        assert_eq!(profile.height, block.header.height);
        assert_eq!(profile.block, block.id());
        chain.verify_integrity().unwrap();

        chain.submit(note("a", "more")).unwrap();
        let (sealed, profiles) = chain.seal_all_profiled().unwrap();
        assert_eq!(sealed, 1);
        assert_eq!(profiles.len(), 1);
        assert_eq!(chain.mempool_len(), 0);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn seal_and_verify() {
        let mut chain = Chain::poa_single("v0", small());
        chain.submit(note("alice", "a")).unwrap();
        chain.submit(note("bob", "b")).unwrap();
        let block = chain.seal_block().unwrap();
        assert_eq!(block.header.height, 1);
        assert_eq!(block.transactions.len(), 2);
        assert_eq!(chain.height(), 1);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn empty_seal_refused_by_default() {
        let mut chain = Chain::poa_single("v0", small());
        assert_eq!(chain.seal_block().unwrap_err(), LedgerError::NothingToSeal);
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { allow_empty_blocks: true, ..small() },
        );
        assert!(chain.seal_block().is_ok());
    }

    #[test]
    fn round_robin_order() {
        let mut chain = Chain::poa(&["v0", "v1", "v2"], small());
        for i in 0..6 {
            chain.submit(note("a", &i.to_string())).unwrap();
            let b = chain.seal_block().unwrap();
            assert_eq!(b.header.validator, format!("v{}", i % 3));
        }
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn nonces_increment_per_sender() {
        let mut chain = Chain::poa_single("v0", small());
        let id1 = chain.submit(note("alice", "same")).unwrap();
        let id2 = chain.submit(note("alice", "same")).unwrap();
        assert_ne!(id1, id2, "same payload gets distinct nonce, distinct id");
    }

    #[test]
    fn tx_lookup_and_proof() {
        let mut chain = Chain::poa_single("v0", small());
        let id = chain.submit(note("alice", "find me")).unwrap();
        for i in 0..5 {
            chain.submit(note("bob", &i.to_string())).unwrap();
        }
        chain.seal_all().unwrap();
        let (height, index) = chain.find_tx(&id).unwrap();
        assert_eq!((height, index), (1, 0));
        let (header, proof) = chain.prove_tx(&id).unwrap();
        let tx = &chain.block_at(height).unwrap().transactions[index];
        assert!(proof.verify(&header.tx_root, &tx.canonical_bytes()));
    }

    #[test]
    fn tamper_detected_payload() {
        let mut chain = Chain::poa_single("v0", small());
        chain.submit(note("alice", "original")).unwrap();
        chain.seal_block().unwrap();
        chain.verify_integrity().unwrap();
        assert!(chain.tamper(1, |b| {
            b.transactions[0] = note("alice", "rewritten history");
        }));
        let err = chain.verify_integrity().unwrap_err();
        assert!(matches!(err, LedgerError::CorruptBlock { height: 1, .. }));
    }

    #[test]
    fn tamper_detected_header() {
        let mut chain = Chain::poa_single("v0", small());
        chain.submit(note("alice", "x")).unwrap();
        chain.seal_block().unwrap();
        chain.submit(note("alice", "y")).unwrap();
        chain.seal_block().unwrap();
        // Rewriting a middle header breaks the child's parent link.
        chain.tamper(1, |b| b.header.tick = 999);
        assert!(chain.verify_integrity().is_err());
    }

    #[test]
    fn seal_capacity_exhaustion() {
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { key_tree_depth: 1, allow_empty_blocks: true, ..ChainConfig::default() },
        );
        chain.seal_block().unwrap();
        chain.seal_block().unwrap();
        let err = chain.seal_block().unwrap_err();
        assert!(matches!(err, LedgerError::SignerExhausted { .. }));
    }

    #[test]
    fn max_txs_per_block_respected() {
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { max_txs_per_block: 3, key_tree_depth: 4, ..ChainConfig::default() },
        );
        for i in 0..7 {
            chain.submit(note("a", &i.to_string())).unwrap();
        }
        let sealed = chain.seal_all().unwrap();
        assert_eq!(sealed, 3);
        assert_eq!(chain.blocks()[1].transactions.len(), 3);
        assert_eq!(chain.blocks()[3].transactions.len(), 1);
    }

    #[test]
    fn deterministic_validator_keys() {
        let c1 = Chain::poa_single("v0", small());
        let c2 = Chain::poa_single("v0", small());
        // Same id → same key root → block sealed by one chain validates on
        // a fresh chain with the same validator set.
        let mut c1 = c1;
        c1.submit(note("a", "cross")).unwrap();
        let block = c1.seal_block().unwrap();
        c2.validate_block(&block).unwrap();
    }

    /// Drives the same submissions through a sequential and a parallel
    /// drain and asserts the chains are byte-identical: same heights,
    /// same header digests (which commit to parent, tx root, tick, and
    /// validator), same seals, and both pass full integrity
    /// verification.
    #[test]
    fn parallel_seal_is_byte_identical_to_sequential() {
        for validators in [vec!["v0"], vec!["v0", "v1", "v2"]] {
            let config = ChainConfig {
                key_tree_depth: 6,
                max_txs_per_block: 4,
                ..ChainConfig::default()
            };
            let mut sequential = Chain::poa(&validators, config.clone());
            let mut parallel =
                Chain::poa(&validators, ChainConfig { seal_workers: 4, ..config });
            for i in 0..30 {
                let tx = note(&format!("user{}", i % 5), &format!("tx{i}"));
                sequential.submit(tx.clone()).unwrap();
                parallel.submit(tx).unwrap();
            }
            let (seq_count, seq_profiles) = sequential.seal_all_profiled().unwrap();
            let (par_count, par_profiles) = parallel.seal_all_profiled().unwrap();
            assert_eq!(seq_count, 8, "30 txs / 4 per block");
            assert_eq!(par_count, seq_count);
            assert_eq!(par_profiles.len(), seq_profiles.len());
            assert_eq!(sequential.blocks().len(), parallel.blocks().len());
            for (s, p) in sequential.blocks().iter().zip(parallel.blocks()) {
                assert_eq!(s.id(), p.id(), "header digest at height {}", s.header.height);
                assert_eq!(s.seal, p.seal, "seal at height {}", s.header.height);
                assert_eq!(s.transactions, p.transactions);
            }
            // Profiles name the same blocks in the same order.
            for (s, p) in seq_profiles.iter().zip(&par_profiles) {
                assert_eq!((s.height, s.block), (p.height, p.block));
            }
            parallel.verify_integrity().unwrap();
            // Both chains keep sealing identically afterwards (the
            // round-robin cursor and key trees advanced in lockstep).
            sequential.submit(note("after", "x")).unwrap();
            parallel.submit(note("after", "x")).unwrap();
            assert_eq!(
                sequential.seal_block().unwrap().id(),
                parallel.seal_block().unwrap().id()
            );
        }
    }

    /// A drain that would exhaust a validator's key tree takes the
    /// sequential path even with workers configured, so the error
    /// semantics (a prefix seals, then `SignerExhausted`) are exactly
    /// the legacy ones.
    #[test]
    fn parallel_seal_falls_back_on_key_exhaustion() {
        let config = ChainConfig {
            key_tree_depth: 1, // capacity: 2 blocks
            max_txs_per_block: 1,
            seal_workers: 4,
            ..ChainConfig::default()
        };
        let mut chain = Chain::poa_single("v0", config);
        for i in 0..4 {
            chain.submit(note("a", &i.to_string())).unwrap();
        }
        let err = chain.seal_all_profiled().unwrap_err();
        assert!(matches!(err, LedgerError::SignerExhausted { .. }));
        // The prefix the signer had keys for is sealed and intact.
        assert_eq!(chain.height(), 2);
        chain.verify_integrity().unwrap();
    }

    /// `seal_workers: 0` sizes to the host; the drain still succeeds
    /// and verifies on any machine, including single-core hosts where
    /// it degenerates to the sequential path.
    #[test]
    fn seal_workers_zero_uses_host_parallelism() {
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig {
                key_tree_depth: 5,
                max_txs_per_block: 2,
                seal_workers: 0,
                ..ChainConfig::default()
            },
        );
        for i in 0..10 {
            chain.submit(note("a", &i.to_string())).unwrap();
        }
        let (sealed, profiles) = chain.seal_all_profiled().unwrap();
        assert_eq!(sealed, 5);
        assert_eq!(profiles.len(), 5);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn tick_recorded_in_blocks() {
        let mut chain = Chain::poa_single("v0", small());
        chain.advance(41);
        chain.submit(note("a", "t")).unwrap();
        let b = chain.seal_block().unwrap();
        assert_eq!(b.header.tick, 41);
    }
}
