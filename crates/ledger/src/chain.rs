//! A proof-of-authority block chain.
//!
//! The chain is a *simulation of the whole network*: it owns the validator
//! identities (Lamport [`KeyTree`]s), assigns sealing turns round-robin,
//! and validates every imported block exactly as an honest full node
//! would. Tamper detection is real — flipping any byte in a stored block
//! is caught by [`Chain::verify_integrity`] because hashes and hash-based
//! signatures are recomputed from scratch.
//!
//! Proof-of-authority (rather than proof-of-work/stake) matches how the
//! platforms the paper cites actually run their governance chains at
//! simulation scale, and keeps experiments deterministic.

use std::collections::HashMap;

use crate::block::{Block, BlockHeader};
use crate::crypto::lamport::{KeyTree, TreeSignature};
use crate::crypto::sha256::{sha256, Digest};
use crate::error::LedgerError;
use crate::merkle::MerkleProof;
use crate::tx::{Transaction, TxId};
use crate::Tick;

/// Tuning knobs for a [`Chain`].
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Maximum transactions sealed into one block.
    pub max_txs_per_block: usize,
    /// Whether sealing with an empty mempool is allowed.
    pub allow_empty_blocks: bool,
    /// Depth of each validator's Merkle key tree (capacity `2^depth`
    /// blocks per validator).
    pub key_tree_depth: usize,
    /// Enforce strict round-robin sealing order.
    pub enforce_round_robin: bool,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            max_txs_per_block: 256,
            allow_empty_blocks: false,
            key_tree_depth: 10,
            enforce_round_robin: true,
        }
    }
}

/// Wall-clock cost of sealing one block, split by phase (nanoseconds),
/// plus the sealed block's identity (height and header digest) so
/// committers can hand provenance to tracing layers without re-reading
/// the chain. Produced by [`Chain::seal_block_profiled`]; purely
/// observational.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealProfile {
    /// Building the block's Merkle transaction root.
    pub merkle_ns: u64,
    /// Hashing the header and producing the Lamport tree signature.
    pub sign_ns: u64,
    /// Validating, indexing, and appending the sealed block.
    pub append_ns: u64,
    /// Height of the sealed block.
    pub height: u64,
    /// Header digest of the sealed block (its chain identity).
    pub block: Digest,
}

impl Default for SealProfile {
    fn default() -> Self {
        SealProfile { merkle_ns: 0, sign_ns: 0, append_ns: 0, height: 0, block: Digest::ZERO }
    }
}

impl SealProfile {
    /// Total sealing cost across the three phases.
    pub fn total_ns(&self) -> u64 {
        self.merkle_ns + self.sign_ns + self.append_ns
    }
}

/// Elapsed nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_ns(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A validator identity: a name and its hash-based signing tree.
#[derive(Debug)]
struct Validator {
    id: String,
    signer: KeyTree,
    root: Digest,
}

/// The proof-of-authority ledger.
///
/// See the crate-level example for basic usage.
#[derive(Debug)]
pub struct Chain {
    config: ChainConfig,
    blocks: Vec<Block>,
    mempool: Vec<Transaction>,
    validators: Vec<Validator>,
    next_validator: usize,
    nonces: HashMap<String, u64>,
    tx_index: HashMap<TxId, (u64, usize)>,
    tick: Tick,
}

impl Chain {
    /// Creates a chain with a single validator (deterministic keys derived
    /// from the validator id). Convenient for tests and experiments.
    pub fn poa_single(validator: &str, config: ChainConfig) -> Self {
        Self::poa(&[validator], config)
    }

    /// Creates a chain with the given validator set. Keys are derived
    /// deterministically from each validator id, so two chains built from
    /// the same ids accept each other's blocks.
    pub fn poa(validator_ids: &[&str], config: ChainConfig) -> Self {
        use rand::SeedableRng;
        let validators = validator_ids
            .iter()
            .map(|id| {
                let seed = sha256(format!("validator-seed:{id}").as_bytes());
                let mut seed_bytes = [0u8; 32];
                seed_bytes.copy_from_slice(seed.as_bytes());
                let mut rng = rand::rngs::StdRng::from_seed(seed_bytes);
                let signer = KeyTree::new(&mut rng, config.key_tree_depth);
                let root = signer.root();
                Validator { id: (*id).to_string(), signer, root }
            })
            .collect();
        Chain {
            config,
            blocks: vec![Block::genesis("metaverse")],
            mempool: Vec::new(),
            validators,
            next_validator: 0,
            nonces: HashMap::new(),
            tx_index: HashMap::new(),
            tick: 0,
        }
    }

    /// Advances logical time by `n` ticks.
    pub fn advance(&mut self, n: Tick) {
        self.tick += n;
    }

    /// Current logical time.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Submits a transaction to the mempool, assigning the sender's next
    /// nonce. Returns the final transaction id.
    pub fn submit(&mut self, mut tx: Transaction) -> Result<TxId, LedgerError> {
        let nonce = self.nonces.entry(tx.sender.clone()).or_insert(0);
        tx.nonce = *nonce;
        *nonce += 1;
        let id = tx.id();
        if self.tx_index.contains_key(&id) {
            return Err(LedgerError::DuplicateTransaction { tx: id });
        }
        self.mempool.push(tx);
        Ok(id)
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Seals the next block with the scheduled validator and appends it.
    ///
    /// Returns a clone of the sealed block.
    pub fn seal_block(&mut self) -> Result<Block, LedgerError> {
        self.seal_block_profiled().map(|(block, _)| block)
    }

    /// [`Chain::seal_block`] with a wall-clock phase profile: how long
    /// the Merkle root build, the Lamport seal, and the append
    /// (validate + index + push) took. Profiling never alters sealing
    /// behaviour; the platform's telemetry layer feeds these phases
    /// into its epoch-commit histograms.
    pub fn seal_block_profiled(&mut self) -> Result<(Block, SealProfile), LedgerError> {
        if self.mempool.is_empty() && !self.config.allow_empty_blocks {
            return Err(LedgerError::NothingToSeal);
        }
        let take = self.mempool.len().min(self.config.max_txs_per_block);
        let txs: Vec<Transaction> = self.mempool.drain(..take).collect();

        let v_idx = self.next_validator;
        let head = self.try_head()?;
        let parent = head.id();
        let height = head.header.height + 1;
        let mut block = Block {
            header: BlockHeader {
                height,
                parent,
                tx_root: Digest::ZERO,
                tick: self.tick,
                validator: self.validators[v_idx].id.clone(),
            },
            transactions: txs,
            seal: None,
        };
        let mut profile = SealProfile::default();
        let started = std::time::Instant::now();
        block.header.tx_root = block.computed_tx_root();
        profile.merkle_ns = elapsed_ns(started);

        let started = std::time::Instant::now();
        let digest = block.header.digest();
        let seal = self.validators[v_idx].signer.sign(&digest).ok_or_else(|| {
            LedgerError::SignerExhausted { validator: self.validators[v_idx].id.clone() }
        })?;
        block.seal = Some(seal);
        profile.sign_ns = elapsed_ns(started);
        profile.height = height;
        profile.block = digest;

        let started = std::time::Instant::now();
        self.validate_block(&block)?;
        self.index_block(&block);
        self.blocks.push(block.clone());
        self.next_validator = (v_idx + 1) % self.validators.len();
        profile.append_ns = elapsed_ns(started);
        Ok((block, profile))
    }

    /// Seals blocks until the mempool is drained. Returns how many blocks
    /// were produced.
    pub fn seal_all(&mut self) -> Result<usize, LedgerError> {
        self.seal_all_profiled().map(|(sealed, _)| sealed)
    }

    /// [`Chain::seal_all`] with per-phase wall-clock totals accumulated
    /// across every block sealed.
    pub fn seal_all_profiled(&mut self) -> Result<(usize, Vec<SealProfile>), LedgerError> {
        let mut profiles = Vec::new();
        while !self.mempool.is_empty() {
            let (_, profile) = self.seal_block_profiled()?;
            profiles.push(profile);
        }
        Ok((profiles.len(), profiles))
    }

    fn index_block(&mut self, block: &Block) {
        for (i, tx) in block.transactions.iter().enumerate() {
            self.tx_index.insert(tx.id(), (block.header.height, i));
        }
    }

    /// Validates a block against the current head without appending it.
    pub fn validate_block(&self, block: &Block) -> Result<(), LedgerError> {
        let head = self.try_head()?;
        if block.header.height != head.header.height + 1 {
            return Err(LedgerError::HeightMismatch {
                claimed: block.header.height,
                expected: head.header.height + 1,
            });
        }
        if block.header.parent != head.id() {
            return Err(LedgerError::ParentMismatch {
                height: block.header.height,
                expected: block.header.parent,
                actual: head.id(),
            });
        }
        if block.header.tx_root != block.computed_tx_root() {
            return Err(LedgerError::TxRootMismatch { height: block.header.height });
        }
        let validator = self
            .validators
            .iter()
            .find(|v| v.id == block.header.validator)
            .ok_or_else(|| LedgerError::UnknownValidator {
                validator: block.header.validator.clone(),
            })?;
        if self.config.enforce_round_robin {
            let expected = &self.validators[self.next_validator];
            if expected.id != validator.id {
                return Err(LedgerError::OutOfTurn {
                    validator: validator.id.clone(),
                    expected: expected.id.clone(),
                });
            }
        }
        let seal = block
            .seal
            .as_ref()
            .ok_or(LedgerError::BadSignature { height: block.header.height })?;
        if !TreeSignature::verify(&validator.root, &block.header.digest(), seal) {
            return Err(LedgerError::BadSignature { height: block.header.height });
        }
        Ok(())
    }

    /// The chain head (genesis when no block has been sealed).
    ///
    /// Total by construction — every constructor seeds genesis and no
    /// path removes blocks — but implemented over [`Chain::try_head`]
    /// so a broken invariant surfaces as the typed
    /// [`LedgerError::EmptyChain`] on the sealing hot path rather than
    /// a panic here.
    pub fn head(&self) -> &Block {
        match self.blocks.last() {
            Some(block) => block,
            None => unreachable!("chain always has genesis"),
        }
    }

    /// Fallible view of the chain head: [`LedgerError::EmptyChain`]
    /// instead of a panic when the genesis invariant does not hold.
    pub fn try_head(&self) -> Result<&Block, LedgerError> {
        self.blocks.last().ok_or(LedgerError::EmptyChain)
    }

    /// Full chain, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Chain height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.head().header.height
    }

    /// Block at `height`, if within range.
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Locates a transaction by id: `(height, index within block)`.
    pub fn find_tx(&self, id: &TxId) -> Option<(u64, usize)> {
        self.tx_index.get(id).copied()
    }

    /// Produces a light-client inclusion proof for a transaction: the
    /// containing header plus a Merkle path to its `tx_root`.
    pub fn prove_tx(&self, id: &TxId) -> Option<(BlockHeader, MerkleProof)> {
        let (height, index) = self.find_tx(id)?;
        let block = self.block_at(height)?;
        let proof = block.tx_tree().prove(index)?;
        Some((block.header.clone(), proof))
    }

    /// Iterates over every transaction in chain order.
    pub fn iter_txs(&self) -> impl Iterator<Item = &Transaction> {
        self.blocks.iter().flat_map(|b| b.transactions.iter())
    }

    /// Re-validates the entire chain from genesis: parent links, heights,
    /// transaction roots, and every seal signature.
    pub fn verify_integrity(&self) -> Result<(), LedgerError> {
        for window in self.blocks.windows(2) {
            let (prev, block) = (&window[0], &window[1]);
            let height = block.header.height;
            if height != prev.header.height + 1 {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "non-contiguous height".into(),
                });
            }
            if block.header.parent != prev.id() {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "broken parent link".into(),
                });
            }
            if block.header.tx_root != block.computed_tx_root() {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "transaction root mismatch".into(),
                });
            }
            let Some(validator) =
                self.validators.iter().find(|v| v.id == block.header.validator)
            else {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: format!("unknown validator {:?}", block.header.validator),
                });
            };
            let Some(seal) = block.seal.as_ref() else {
                return Err(LedgerError::CorruptBlock { height, detail: "missing seal".into() });
            };
            if !TreeSignature::verify(&validator.root, &block.header.digest(), seal) {
                return Err(LedgerError::CorruptBlock {
                    height,
                    detail: "seal verification failed".into(),
                });
            }
        }
        Ok(())
    }

    /// Simulation hook: mutate a stored block in place to model an
    /// attacker with storage access, then observe
    /// [`Chain::verify_integrity`] catching it. Not part of the normal
    /// API surface — honest code never mutates sealed history.
    pub fn tamper<F: FnOnce(&mut Block)>(&mut self, height: u64, f: F) -> bool {
        match self.blocks.get_mut(height as usize) {
            Some(b) => {
                f(b);
                true
            }
            None => false,
        }
    }

    /// Validator identities, in sealing order.
    pub fn validator_ids(&self) -> Vec<&str> {
        self.validators.iter().map(|v| v.id.as_str()).collect()
    }

    /// Remaining block-sealing capacity of each validator.
    pub fn remaining_seals(&self) -> Vec<(String, usize)> {
        self.validators.iter().map(|v| (v.id.clone(), v.signer.remaining())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxPayload;

    fn note(sender: &str, text: &str) -> Transaction {
        Transaction::new(sender, TxPayload::Note { text: text.into() })
    }

    fn small() -> ChainConfig {
        ChainConfig { key_tree_depth: 4, ..ChainConfig::default() }
    }

    /// Regression for the former hot-path `expect` in `head()`: the
    /// fallible view agrees with the total one on every fresh and
    /// grown chain, and the sealing path goes through it.
    #[test]
    fn try_head_matches_head_and_feeds_the_seal_path() {
        let mut chain = Chain::poa_single("v0", small());
        assert_eq!(chain.try_head().unwrap().header.height, chain.head().header.height);
        chain.submit(note("a", "t")).unwrap();
        chain.seal_block().unwrap();
        let head = chain.try_head().unwrap();
        assert_eq!(head.header.height, 1);
        assert_eq!(head.id(), chain.head().id());
    }

    #[test]
    fn profiled_seal_matches_plain_seal_semantics() {
        let mut chain = Chain::poa(&["v0"], small());
        for i in 0..3 {
            chain.submit(note("a", &format!("t{i}"))).unwrap();
        }
        let (block, profile) = chain.seal_block_profiled().unwrap();
        assert_eq!(block.transactions.len(), 3);
        // Merkle-root build and Lamport signing do real hashing work, so
        // their phases are observable; the profile is measurement only.
        assert!(profile.sign_ns > 0, "signing hashes a key tree: {profile:?}");
        assert_eq!(
            profile.total_ns(),
            profile.merkle_ns + profile.sign_ns + profile.append_ns
        );
        // The profile names the block it sealed: height and header
        // digest (the block's chain identity, used for provenance).
        assert_eq!(profile.height, block.header.height);
        assert_eq!(profile.block, block.id());
        chain.verify_integrity().unwrap();

        chain.submit(note("a", "more")).unwrap();
        let (sealed, profiles) = chain.seal_all_profiled().unwrap();
        assert_eq!(sealed, 1);
        assert_eq!(profiles.len(), 1);
        assert_eq!(chain.mempool_len(), 0);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn seal_and_verify() {
        let mut chain = Chain::poa_single("v0", small());
        chain.submit(note("alice", "a")).unwrap();
        chain.submit(note("bob", "b")).unwrap();
        let block = chain.seal_block().unwrap();
        assert_eq!(block.header.height, 1);
        assert_eq!(block.transactions.len(), 2);
        assert_eq!(chain.height(), 1);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn empty_seal_refused_by_default() {
        let mut chain = Chain::poa_single("v0", small());
        assert_eq!(chain.seal_block().unwrap_err(), LedgerError::NothingToSeal);
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { allow_empty_blocks: true, ..small() },
        );
        assert!(chain.seal_block().is_ok());
    }

    #[test]
    fn round_robin_order() {
        let mut chain = Chain::poa(&["v0", "v1", "v2"], small());
        for i in 0..6 {
            chain.submit(note("a", &i.to_string())).unwrap();
            let b = chain.seal_block().unwrap();
            assert_eq!(b.header.validator, format!("v{}", i % 3));
        }
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn nonces_increment_per_sender() {
        let mut chain = Chain::poa_single("v0", small());
        let id1 = chain.submit(note("alice", "same")).unwrap();
        let id2 = chain.submit(note("alice", "same")).unwrap();
        assert_ne!(id1, id2, "same payload gets distinct nonce, distinct id");
    }

    #[test]
    fn tx_lookup_and_proof() {
        let mut chain = Chain::poa_single("v0", small());
        let id = chain.submit(note("alice", "find me")).unwrap();
        for i in 0..5 {
            chain.submit(note("bob", &i.to_string())).unwrap();
        }
        chain.seal_all().unwrap();
        let (height, index) = chain.find_tx(&id).unwrap();
        assert_eq!((height, index), (1, 0));
        let (header, proof) = chain.prove_tx(&id).unwrap();
        let tx = &chain.block_at(height).unwrap().transactions[index];
        assert!(proof.verify(&header.tx_root, &tx.canonical_bytes()));
    }

    #[test]
    fn tamper_detected_payload() {
        let mut chain = Chain::poa_single("v0", small());
        chain.submit(note("alice", "original")).unwrap();
        chain.seal_block().unwrap();
        chain.verify_integrity().unwrap();
        assert!(chain.tamper(1, |b| {
            b.transactions[0] = note("alice", "rewritten history");
        }));
        let err = chain.verify_integrity().unwrap_err();
        assert!(matches!(err, LedgerError::CorruptBlock { height: 1, .. }));
    }

    #[test]
    fn tamper_detected_header() {
        let mut chain = Chain::poa_single("v0", small());
        chain.submit(note("alice", "x")).unwrap();
        chain.seal_block().unwrap();
        chain.submit(note("alice", "y")).unwrap();
        chain.seal_block().unwrap();
        // Rewriting a middle header breaks the child's parent link.
        chain.tamper(1, |b| b.header.tick = 999);
        assert!(chain.verify_integrity().is_err());
    }

    #[test]
    fn seal_capacity_exhaustion() {
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { key_tree_depth: 1, allow_empty_blocks: true, ..ChainConfig::default() },
        );
        chain.seal_block().unwrap();
        chain.seal_block().unwrap();
        let err = chain.seal_block().unwrap_err();
        assert!(matches!(err, LedgerError::SignerExhausted { .. }));
    }

    #[test]
    fn max_txs_per_block_respected() {
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { max_txs_per_block: 3, key_tree_depth: 4, ..ChainConfig::default() },
        );
        for i in 0..7 {
            chain.submit(note("a", &i.to_string())).unwrap();
        }
        let sealed = chain.seal_all().unwrap();
        assert_eq!(sealed, 3);
        assert_eq!(chain.blocks()[1].transactions.len(), 3);
        assert_eq!(chain.blocks()[3].transactions.len(), 1);
    }

    #[test]
    fn deterministic_validator_keys() {
        let c1 = Chain::poa_single("v0", small());
        let c2 = Chain::poa_single("v0", small());
        // Same id → same key root → block sealed by one chain validates on
        // a fresh chain with the same validator set.
        let mut c1 = c1;
        c1.submit(note("a", "cross")).unwrap();
        let block = c1.seal_block().unwrap();
        c2.validate_block(&block).unwrap();
    }

    #[test]
    fn tick_recorded_in_blocks() {
        let mut chain = Chain::poa_single("v0", small());
        chain.advance(41);
        chain.submit(note("a", "t")).unwrap();
        let b = chain.seal_block().unwrap();
        assert_eq!(b.header.tick, 41);
    }
}
