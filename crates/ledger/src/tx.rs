//! The transaction vocabulary of the metaverse ledger.
//!
//! Every governance, asset, reputation, and audit subsystem in the
//! workspace records its externally-visible actions as a [`Transaction`],
//! giving the platform the transparency the paper demands:
//!
//! > "All the active parts of the metaverse (including code) should be
//! > transparent and understandable to any platform member." — §IV-C

use serde::{Deserialize, Serialize};

use crate::audit::DataCollectionEvent;
use crate::crypto::sha256::{sha256, Digest};
use crate::Tick;

/// Unique transaction identifier (digest of the canonical encoding).
pub type TxId = Digest;

/// The payload of a ledger transaction.
///
/// The variants mirror the subsystems of the modular architecture in the
/// paper's Figure 3: assets (NFTs), governance (DAOs), reputation,
/// privacy auditing, digital twins, and moderation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TxPayload {
    /// Free-form annotation; useful for tests and tooling.
    Note {
        /// The annotation text.
        text: String,
    },
    /// Minting of a non-fungible asset.
    AssetMint {
        /// Asset identifier (collection-scoped).
        asset_id: u64,
        /// Creator account.
        creator: String,
        /// URI referencing the off-chain content.
        uri: String,
    },
    /// Transfer of asset ownership.
    AssetTransfer {
        /// Asset identifier.
        asset_id: u64,
        /// Previous owner.
        from: String,
        /// New owner.
        to: String,
        /// Sale price in the platform's native unit (0 for gifts).
        price: u64,
    },
    /// Creation of a governance proposal.
    ProposalCreated {
        /// Proposal identifier.
        proposal_id: u64,
        /// Short human-readable title.
        title: String,
        /// DAO/module the proposal belongs to.
        scope: String,
    },
    /// A cast ballot (recorded for transparency; tallying is off-chain).
    VoteCast {
        /// Proposal identifier.
        proposal_id: u64,
        /// Voter account.
        voter: String,
        /// Encoded choice (scheme-specific).
        choice: String,
        /// Voting weight applied.
        weight: u64,
    },
    /// Final outcome of a proposal.
    ProposalDecided {
        /// Proposal identifier.
        proposal_id: u64,
        /// Whether the proposal passed.
        accepted: bool,
        /// Tallied support weight.
        yes_weight: u64,
        /// Tallied opposition weight.
        no_weight: u64,
    },
    /// Reputation adjustment for an account.
    ReputationDelta {
        /// Account whose reputation changed.
        subject: String,
        /// Signed change in milli-points.
        delta_millis: i64,
        /// Why the change happened (endorsement, report, decay…).
        reason: String,
    },
    /// A registered data-collection event (paper §II-D).
    DataCollection(DataCollectionEvent),
    /// Attestation of a digital twin's synchronized state.
    TwinAttestation {
        /// Twin identifier.
        twin_id: u64,
        /// Digest of the twin's state snapshot.
        state: Digest,
        /// Logical time of the snapshot.
        tick: Tick,
    },
    /// A moderation action taken against an account or content item.
    ModerationAction {
        /// Account the action targets.
        subject: String,
        /// Action kind (mute, ban, warn, restore…).
        action: String,
        /// Module/authority that took the action.
        authority: String,
    },
    /// A module-health state change (resilience layer). Recording these
    /// on-chain makes degradation auditable: governance can later prove
    /// *when* a module was failed over and when it recovered.
    HealthTransition {
        /// Module slot label (e.g. "privacy", "moderation", "ledger").
        module: String,
        /// Health state before the transition ("healthy", "degraded",
        /// "failed").
        from: String,
        /// Health state after the transition.
        to: String,
        /// Why the transition fired (e.g. "breaker-open",
        /// "probation-passed", "fault-cleared").
        reason: String,
        /// Logical time of the transition.
        tick: Tick,
    },
}

impl TxPayload {
    /// Appends a canonical, unambiguous byte encoding of the payload.
    ///
    /// Each variant starts with a distinct tag byte and every
    /// variable-length field is length-prefixed, so two different payloads
    /// can never encode to the same bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u64).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        match self {
            TxPayload::Note { text } => {
                out.push(0);
                put_str(out, text);
            }
            TxPayload::AssetMint { asset_id, creator, uri } => {
                out.push(1);
                out.extend_from_slice(&asset_id.to_be_bytes());
                put_str(out, creator);
                put_str(out, uri);
            }
            TxPayload::AssetTransfer { asset_id, from, to, price } => {
                out.push(2);
                out.extend_from_slice(&asset_id.to_be_bytes());
                put_str(out, from);
                put_str(out, to);
                out.extend_from_slice(&price.to_be_bytes());
            }
            TxPayload::ProposalCreated { proposal_id, title, scope } => {
                out.push(3);
                out.extend_from_slice(&proposal_id.to_be_bytes());
                put_str(out, title);
                put_str(out, scope);
            }
            TxPayload::VoteCast { proposal_id, voter, choice, weight } => {
                out.push(4);
                out.extend_from_slice(&proposal_id.to_be_bytes());
                put_str(out, voter);
                put_str(out, choice);
                out.extend_from_slice(&weight.to_be_bytes());
            }
            TxPayload::ProposalDecided { proposal_id, accepted, yes_weight, no_weight } => {
                out.push(5);
                out.extend_from_slice(&proposal_id.to_be_bytes());
                out.push(u8::from(*accepted));
                out.extend_from_slice(&yes_weight.to_be_bytes());
                out.extend_from_slice(&no_weight.to_be_bytes());
            }
            TxPayload::ReputationDelta { subject, delta_millis, reason } => {
                out.push(6);
                put_str(out, subject);
                out.extend_from_slice(&delta_millis.to_be_bytes());
                put_str(out, reason);
            }
            TxPayload::DataCollection(ev) => {
                out.push(7);
                ev.encode_into(out);
            }
            TxPayload::TwinAttestation { twin_id, state, tick } => {
                out.push(8);
                out.extend_from_slice(&twin_id.to_be_bytes());
                out.extend_from_slice(state.as_bytes());
                out.extend_from_slice(&tick.to_be_bytes());
            }
            TxPayload::ModerationAction { subject, action, authority } => {
                out.push(9);
                put_str(out, subject);
                put_str(out, action);
                put_str(out, authority);
            }
            TxPayload::HealthTransition { module, from, to, reason, tick } => {
                out.push(10);
                put_str(out, module);
                put_str(out, from);
                put_str(out, to);
                put_str(out, reason);
                out.extend_from_slice(&tick.to_be_bytes());
            }
        }
    }
}

/// A signed-intent record submitted to the ledger.
///
/// In this simulation, sender authentication is by account string (the
/// surrounding platform authenticates accounts); block provenance is what
/// carries real signatures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Submitting account.
    pub sender: String,
    /// Monotonic per-sender nonce, assigned at submission.
    pub nonce: u64,
    /// What the transaction does.
    pub payload: TxPayload,
}

impl Transaction {
    /// Creates a transaction with nonce 0 (the chain assigns real nonces
    /// at submission time).
    pub fn new(sender: impl Into<String>, payload: TxPayload) -> Self {
        Transaction { sender: sender.into(), nonce: 0, payload }
    }

    /// Canonical byte encoding used for hashing and Merkle leaves.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&(self.sender.len() as u64).to_be_bytes());
        out.extend_from_slice(self.sender.as_bytes());
        out.extend_from_slice(&self.nonce.to_be_bytes());
        self.payload.encode_into(&mut out);
        out
    }

    /// The transaction id: SHA-256 of the canonical encoding.
    pub fn id(&self) -> TxId {
        sha256(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payloads() -> Vec<TxPayload> {
        vec![
            TxPayload::Note { text: "n".into() },
            TxPayload::AssetMint { asset_id: 1, creator: "c".into(), uri: "u".into() },
            TxPayload::AssetTransfer { asset_id: 1, from: "a".into(), to: "b".into(), price: 9 },
            TxPayload::ProposalCreated { proposal_id: 2, title: "t".into(), scope: "s".into() },
            TxPayload::VoteCast {
                proposal_id: 2,
                voter: "v".into(),
                choice: "yes".into(),
                weight: 3,
            },
            TxPayload::ProposalDecided {
                proposal_id: 2,
                accepted: true,
                yes_weight: 5,
                no_weight: 1,
            },
            TxPayload::ReputationDelta {
                subject: "s".into(),
                delta_millis: -250,
                reason: "report".into(),
            },
            TxPayload::TwinAttestation { twin_id: 7, state: sha256(b"x"), tick: 11 },
            TxPayload::ModerationAction {
                subject: "s".into(),
                action: "mute".into(),
                authority: "dao:moderation".into(),
            },
            TxPayload::HealthTransition {
                module: "privacy".into(),
                from: "healthy".into(),
                to: "failed".into(),
                reason: "breaker-open".into(),
                tick: 42,
            },
        ]
    }

    #[test]
    fn health_transition_fields_all_bind() {
        let base = TxPayload::HealthTransition {
            module: "privacy".into(),
            from: "healthy".into(),
            to: "failed".into(),
            reason: "breaker-open".into(),
            tick: 42,
        };
        let variants = [
            TxPayload::HealthTransition {
                module: "moderation".into(),
                from: "healthy".into(),
                to: "failed".into(),
                reason: "breaker-open".into(),
                tick: 42,
            },
            TxPayload::HealthTransition {
                module: "privacy".into(),
                from: "degraded".into(),
                to: "failed".into(),
                reason: "breaker-open".into(),
                tick: 42,
            },
            TxPayload::HealthTransition {
                module: "privacy".into(),
                from: "healthy".into(),
                to: "degraded".into(),
                reason: "breaker-open".into(),
                tick: 42,
            },
            TxPayload::HealthTransition {
                module: "privacy".into(),
                from: "healthy".into(),
                to: "failed".into(),
                reason: "fault-cleared".into(),
                tick: 42,
            },
            TxPayload::HealthTransition {
                module: "privacy".into(),
                from: "healthy".into(),
                to: "failed".into(),
                reason: "breaker-open".into(),
                tick: 43,
            },
        ];
        let encode = |p: &TxPayload| {
            let mut bytes = Vec::new();
            p.encode_into(&mut bytes);
            bytes
        };
        for v in &variants {
            assert_ne!(encode(&base), encode(v), "field change must change encoding: {v:?}");
        }
    }

    #[test]
    fn payload_encodings_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in sample_payloads() {
            let mut bytes = Vec::new();
            p.encode_into(&mut bytes);
            assert!(seen.insert(bytes), "duplicate encoding for {p:?}");
        }
    }

    #[test]
    fn id_changes_with_any_field() {
        let base = Transaction::new("alice", TxPayload::Note { text: "hi".into() });
        let mut other = base.clone();
        other.sender = "bob".into();
        assert_ne!(base.id(), other.id());

        let mut other = base.clone();
        other.nonce = 1;
        assert_ne!(base.id(), other.id());

        let other = Transaction::new("alice", TxPayload::Note { text: "hi!".into() });
        assert_ne!(base.id(), other.id());
    }

    #[test]
    fn encoding_is_unambiguous_across_string_boundaries() {
        // ("ab","c") must differ from ("a","bc") in AssetMint.
        let t1 = TxPayload::AssetMint { asset_id: 0, creator: "ab".into(), uri: "c".into() };
        let t2 = TxPayload::AssetMint { asset_id: 0, creator: "a".into(), uri: "bc".into() };
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        t1.encode_into(&mut b1);
        t2.encode_into(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn id_is_deterministic() {
        let t = Transaction::new("alice", TxPayload::Note { text: "same".into() });
        assert_eq!(t.id(), t.clone().id());
    }
}
