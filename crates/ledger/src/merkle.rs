//! Binary Merkle trees with inclusion proofs.
//!
//! Used for the transaction root inside every [`crate::block::Block`] and
//! for light-client-style audit verification: an auditor holding only a
//! block header can check that a specific data-collection event was
//! registered, without downloading the whole block.

use crate::crypto::sha256::{sha256, sha256_concat, Digest};

/// Domain-separation prefixes so a leaf can never be confused with an
/// interior node (defence against the classic CVE-2012-2459 style attack).
const LEAF_PREFIX: &[u8] = b"\x00metaverse-leaf";
const NODE_PREFIX: &[u8] = b"\x01metaverse-node";

/// Hashes a leaf payload with domain separation.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_concat(&[LEAF_PREFIX, data])
}

/// Hashes two child digests into a parent with domain separation.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// An immutable binary Merkle tree over a list of leaf payloads.
///
/// Odd nodes at each level are promoted (not duplicated), so the tree
/// shape is unique for a given leaf count and no payload can appear under
/// two indices.
///
/// ```
/// use metaverse_ledger::merkle::MerkleTree;
/// let tree = MerkleTree::from_leaves([b"a".as_slice(), b"b", b"c"]);
/// let proof = tree.prove(2).unwrap();
/// assert!(proof.verify(&tree.root(), b"c"));
/// assert!(!proof.verify(&tree.root(), b"x"));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` are leaf digests; the last level is the root.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: sibling hashes from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling digest and whether it sits on the right of the path node.
    pub path: Vec<(Digest, Side)>,
}

/// Which side a proof sibling is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sibling is the left child; path node is the right.
    Left,
    /// Sibling is the right child; path node is the left.
    Right,
}

impl MerkleTree {
    /// Builds a tree from leaf payloads. An empty iterator yields the
    /// canonical empty tree whose root is `sha256("metaverse-empty")`.
    pub fn from_leaves<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let leaf_digests: Vec<Digest> =
            leaves.into_iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_digests(leaf_digests)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaf_digests(leaf_digests: Vec<Digest>) -> Self {
        if leaf_digests.is_empty() {
            return MerkleTree { levels: vec![vec![Self::empty_root()]] };
        }
        let mut levels = vec![leaf_digests];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(node_hash(&prev[i], &prev[i + 1]));
                } else {
                    // Promote the odd node unchanged.
                    next.push(prev[i]);
                }
                i += 2;
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Root digest of the canonical empty tree.
    pub fn empty_root() -> Digest {
        sha256(b"metaverse-empty")
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        *self.levels.last().unwrap().first().unwrap()
    }

    /// Number of leaves (0 for the empty tree).
    pub fn len(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0] == vec![Self::empty_root()] {
            // Ambiguous with a genuine single leaf equal to the sentinel,
            // but the sentinel is not a valid leaf hash (no prefix), so
            // this only matches trees built from zero leaves.
            return 0;
        }
        self.levels[0].len()
    }

    /// True when built from zero leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for leaf `index`, or `None` when out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if self.is_empty() || index >= self.levels[0].len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                let side = if sibling < idx { Side::Left } else { Side::Right };
                path.push((level[sibling], side));
            }
            // When the node is odd and promoted, no sibling is recorded.
            idx /= 2;
        }
        Some(MerkleProof { leaf_index: index, path })
    }
}

impl MerkleProof {
    /// Verifies that `payload` sits at `self.leaf_index` under `root`.
    pub fn verify(&self, root: &Digest, payload: &[u8]) -> bool {
        self.verify_digest(root, leaf_hash(payload))
    }

    /// Verifies against an already-hashed leaf.
    pub fn verify_digest(&self, root: &Digest, leaf: Digest) -> bool {
        let mut node = leaf;
        for (sibling, side) in &self.path {
            node = match side {
                Side::Left => node_hash(sibling, &node),
                Side::Right => node_hash(&node, sibling),
            };
        }
        node == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves([b"solo"]);
        assert_eq!(t.root(), leaf_hash(b"solo"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_tree() {
        let t = MerkleTree::from_leaves(Vec::<&[u8]>::new());
        assert!(t.is_empty());
        assert_eq!(t.root(), MerkleTree::empty_root());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17usize {
            let leaves: Vec<Vec<u8>> =
                (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
            let tree = MerkleTree::from_leaves(leaves.iter());
            assert_eq!(tree.len(), n);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
                assert!(!proof.verify(&tree.root(), b"not-the-leaf"));
            }
            assert!(tree.prove(n).is_none());
        }
    }

    #[test]
    fn proof_fails_under_wrong_root() {
        let t1 = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let t2 = MerkleTree::from_leaves([b"a".as_slice(), b"c"]);
        let proof = t1.prove(0).unwrap();
        assert!(!proof.verify(&t2.root(), b"a"));
    }

    #[test]
    fn leaf_node_domain_separation() {
        // An interior node digest must not verify as a leaf.
        let l = leaf_hash(b"x");
        let n = node_hash(&l, &l);
        assert_ne!(l, n);
        assert_ne!(leaf_hash(n.as_bytes()), n);
    }

    #[test]
    fn order_sensitivity() {
        let t1 = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let t2 = MerkleTree::from_leaves([b"b".as_slice(), b"a"]);
        assert_ne!(t1.root(), t2.root());
    }
}
