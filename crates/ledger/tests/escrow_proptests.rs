//! Property-based tests for the escrow smart-record state machine.

use metaverse_ledger::escrow::{EscrowBook, EscrowState};
use proptest::prelude::*;

/// A random operation against an escrow.
#[derive(Debug, Clone)]
enum Op {
    Fund { buyer: u8, amount: u64, now: u64 },
    Settle { now: u64 },
    Expire { now: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u64..200, 0u64..120).prop_map(|(buyer, amount, now)| Op::Fund {
            buyer,
            amount,
            now
        }),
        (0u64..120).prop_map(|now| Op::Settle { now }),
        (0u64..120).prop_map(|now| Op::Expire { now }),
    ]
}

proptest! {
    /// The state machine never reaches an inconsistent state under any
    /// operation sequence: deposits never exceed price, settled escrows
    /// have full deposits and a buyer, terminal states are absorbing.
    #[test]
    fn escrow_state_machine_sound(
        price in 1u64..150,
        window in 1u64..100,
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut book = EscrowBook::new();
        let id = book.open(1, "seller", price, window).unwrap();
        let mut was_terminal = false;

        for op in ops {
            let before = book.get(id).unwrap().state;
            match op {
                Op::Fund { buyer, amount, now } => {
                    let _ = book.fund(id, &format!("b{}", buyer % 3), amount, now);
                }
                Op::Settle { now } => {
                    let _ = book.settle(id, now);
                }
                Op::Expire { now } => {
                    let _ = book.expire(id, now);
                }
            }
            let escrow = book.get(id).unwrap();
            // Deposits bounded by price.
            prop_assert!(escrow.deposited <= escrow.price);
            // Funded implies exact full deposit.
            if escrow.state == EscrowState::Funded || escrow.state == EscrowState::Settled {
                prop_assert_eq!(escrow.deposited, escrow.price);
                prop_assert!(escrow.buyer.is_some());
            }
            // Terminal states are absorbing.
            if was_terminal {
                prop_assert_eq!(escrow.state, before, "terminal state changed");
            }
            if matches!(escrow.state, EscrowState::Settled | EscrowState::Refunded) {
                was_terminal = true;
            }
        }
    }

    /// Exactly one of settle/refund can ever succeed, never both.
    #[test]
    fn settle_and_refund_mutually_exclusive(
        price in 1u64..100,
        fund_now in 0u64..50,
        resolve_first in any::<bool>(),
    ) {
        let mut book = EscrowBook::new();
        let id = book.open(1, "s", price, 50).unwrap();
        book.fund(id, "b", price, fund_now).unwrap();
        if resolve_first {
            prop_assert!(book.settle(id, fund_now + 1).is_ok());
            prop_assert!(book.expire(id, 1000).is_err());
        } else {
            prop_assert!(book.expire(id, 51).is_ok());
            prop_assert!(book.settle(id, 52).is_err());
        }
    }

    /// Ledger records: a settled escrow emits exactly one AssetTransfer
    /// with the agreed price.
    #[test]
    fn settlement_emits_one_transfer(price in 1u64..500) {
        use metaverse_ledger::tx::TxPayload;
        let mut book = EscrowBook::new();
        let id = book.open(9, "s", price, 50).unwrap();
        book.fund(id, "b", price, 1).unwrap();
        book.settle(id, 2).unwrap();
        let transfers: Vec<_> = book
            .drain_ledger_records()
            .into_iter()
            .filter(|r| matches!(r, TxPayload::AssetTransfer { .. }))
            .collect();
        prop_assert_eq!(transfers.len(), 1);
        if let TxPayload::AssetTransfer { price: p, from, to, asset_id } = &transfers[0] {
            prop_assert_eq!(*p, price);
            prop_assert_eq!(from.as_str(), "s");
            prop_assert_eq!(to.as_str(), "b");
            prop_assert_eq!(*asset_id, 9);
        }
    }
}
