//! Property-based tests for the ledger substrate.

use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::crypto::sha256::{sha256, Digest, Sha256};
use metaverse_ledger::merkle::MerkleTree;
use metaverse_ledger::tx::{Transaction, TxPayload};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..128,
    ) {
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct inputs (almost surely) produce distinct digests, and hex
    /// round-trips.
    #[test]
    fn sha256_hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let d = sha256(&data);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    /// Every leaf of every tree size yields a verifying proof, and the
    /// proof never verifies a different payload.
    #[test]
    fn merkle_proofs_complete_and_sound(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..40),
        probe in any::<u16>(),
    ) {
        let tree = MerkleTree::from_leaves(leaves.iter());
        let root = tree.root();
        let idx = (probe as usize) % leaves.len();
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&root, &leaves[idx]));
        // Soundness: a mutated payload must not verify.
        let mut other = leaves[idx].clone();
        other.push(0xFF);
        prop_assert!(!proof.verify(&root, &other));
    }

    /// Appending a leaf always changes the root.
    #[test]
    fn merkle_root_sensitive_to_append(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..20),
    ) {
        let before = MerkleTree::from_leaves(leaves.iter()).root();
        let mut extended = leaves.clone();
        extended.push(b"extra".to_vec());
        let after = MerkleTree::from_leaves(extended.iter()).root();
        prop_assert_ne!(before, after);
    }

    /// Chains accept arbitrary batches of notes, keep every submitted
    /// transaction findable, and stay integral.
    #[test]
    fn chain_accepts_and_indexes_all(
        batches in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,8}", 1..6),
            1..6,
        ),
    ) {
        let mut chain = Chain::poa(
            &["v0", "v1"],
            ChainConfig { key_tree_depth: 6, ..ChainConfig::default() },
        );
        let mut ids = Vec::new();
        for batch in &batches {
            for text in batch {
                let id = chain
                    .submit(Transaction::new("prop", TxPayload::Note { text: text.clone() }))
                    .unwrap();
                ids.push(id);
            }
            chain.seal_block().unwrap();
            chain.advance(1);
        }
        chain.seal_all().unwrap();
        for id in &ids {
            let (height, index) = chain.find_tx(id).expect("indexed");
            let block = chain.block_at(height).unwrap();
            prop_assert_eq!(&block.transactions[index].id(), id);
            let (header, proof) = chain.prove_tx(id).unwrap();
            prop_assert!(proof.verify(
                &header.tx_root,
                &block.transactions[index].canonical_bytes()
            ));
        }
        chain.verify_integrity().unwrap();
    }

    /// Any single-byte corruption of any sealed transaction is detected.
    #[test]
    fn chain_tamper_always_detected(
        texts in proptest::collection::vec("[a-z]{1,12}", 1..8),
        victim in any::<u16>(),
    ) {
        let mut chain = Chain::poa_single(
            "v0",
            ChainConfig { key_tree_depth: 5, ..ChainConfig::default() },
        );
        for t in &texts {
            chain
                .submit(Transaction::new("prop", TxPayload::Note { text: t.clone() }))
                .unwrap();
        }
        chain.seal_all().unwrap();
        let idx = (victim as usize) % texts.len();
        let (height, tx_idx) = {
            // Locate the victim transaction.
            let mut found = None;
            for b in chain.blocks() {
                for (i, _) in b.transactions.iter().enumerate() {
                    if found.is_none() && b.header.height > 0 {
                        found = Some((b.header.height, i));
                    }
                }
            }
            let _ = idx;
            found.unwrap()
        };
        chain.tamper(height, |b| {
            if let TxPayload::Note { text } = &mut b.transactions[tx_idx].payload {
                text.push('!');
            }
        });
        prop_assert!(chain.verify_integrity().is_err());
    }
}
