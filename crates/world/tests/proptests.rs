//! Property-based tests for spatial-index and world invariants.

use metaverse_world::geometry::{Bounds, Vec2};
use metaverse_world::grid::SpatialGrid;
use metaverse_world::world::{InteractionKind, InteractionOutcome, World, WorldConfig};
use proptest::prelude::*;

proptest! {
    /// The spatial grid agrees exactly with brute force for arbitrary
    /// point sets, cell sizes, and query radii.
    #[test]
    fn grid_matches_brute_force(
        points in proptest::collection::vec((0u64..500, -50.0f64..50.0, -50.0f64..50.0), 1..80),
        cell in 0.5f64..10.0,
        query in (-50.0f64..50.0, -50.0f64..50.0, 0.1f64..30.0),
    ) {
        let mut grid = SpatialGrid::new(cell);
        let mut latest: std::collections::HashMap<u64, Vec2> = Default::default();
        for (id, x, y) in &points {
            let p = Vec2::new(*x, *y);
            grid.upsert(*id, p);
            latest.insert(*id, p);
        }
        let centre = Vec2::new(query.0, query.1);
        let mut expected: Vec<u64> = latest
            .iter()
            .filter(|(_, p)| centre.distance(p) <= query.2)
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        let mut got: Vec<u64> = grid.query(&centre, query.2).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(grid.len(), latest.len());
    }

    /// Moving an entity repeatedly never duplicates it; removal empties.
    #[test]
    fn grid_upsert_remove_consistent(
        moves in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..50),
    ) {
        let mut grid = SpatialGrid::new(3.0);
        for (x, y) in &moves {
            grid.upsert(7, Vec2::new(*x, *y));
            prop_assert_eq!(grid.len(), 1);
        }
        let last = moves.last().unwrap();
        prop_assert_eq!(grid.position(7), Some(Vec2::new(last.0, last.1)));
        prop_assert!(grid.remove(7));
        prop_assert!(grid.is_empty());
        prop_assert!(grid.query(&Vec2::ZERO, 1000.0).is_empty());
    }

    /// World movement always stays in bounds, whatever the deltas.
    #[test]
    fn movement_always_clamped(
        start in (0.0f64..100.0, 0.0f64..100.0),
        deltas in proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 1..30),
    ) {
        let mut world = World::new(WorldConfig {
            bounds: Bounds::new(100.0, 100.0),
            ..WorldConfig::default()
        });
        let id = world.spawn("wanderer", "o", Vec2::new(start.0, start.1)).unwrap();
        for (dx, dy) in deltas {
            world.move_by(id, Vec2::new(dx, dy)).unwrap();
            let p = world.avatar(id).unwrap().position;
            prop_assert!(world.bounds().contains(&p), "escaped: {p:?}");
        }
    }

    /// Bubble semantics: for any radius and distance, an interaction is
    /// blocked by bubble iff distance ≤ radius (and within range).
    #[test]
    fn bubble_block_exact(
        radius in 0.0f64..5.0,
        distance in 0.1f64..2.9, // below interaction range 3.0
    ) {
        let mut world = World::new(WorldConfig::default());
        let a = world.spawn("a", "o1", Vec2::new(10.0, 10.0)).unwrap();
        let b = world.spawn("b", "o2", Vec2::new(10.0 + distance, 10.0)).unwrap();
        world.avatar_mut(b).unwrap().enable_bubble(radius);
        let out = world.interact(a, b, InteractionKind::Approach).unwrap();
        if distance <= radius {
            prop_assert_eq!(out, InteractionOutcome::BlockedByBubble);
        } else {
            prop_assert_eq!(out, InteractionOutcome::Delivered);
        }
    }

    /// Event-log conservation: every interaction attempt appends exactly
    /// one event, and outcomes partition attempts.
    #[test]
    fn event_log_partitions_outcomes(
        attempts in proptest::collection::vec((0.5f64..60.0, any::<bool>()), 1..40),
    ) {
        let mut world = World::new(WorldConfig::default());
        let a = world.spawn("actor", "o1", Vec2::new(30.0, 30.0)).unwrap();
        let b = world.spawn("target", "o2", Vec2::new(30.0, 30.0)).unwrap();
        for (distance, bubble) in &attempts {
            world.move_to(b, Vec2::new(30.0 + distance, 30.0)).unwrap();
            if *bubble {
                world.avatar_mut(b).unwrap().enable_bubble(2.0);
            } else {
                world.avatar_mut(b).unwrap().disable_bubble();
            }
            world.interact(a, b, InteractionKind::Chat).unwrap();
        }
        prop_assert_eq!(world.events().len(), attempts.len());
        let counted = world
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.outcome,
                    InteractionOutcome::Delivered
                        | InteractionOutcome::BlockedByBubble
                        | InteractionOutcome::BlockedByMute
                        | InteractionOutcome::OutOfRange
                )
            })
            .count();
        prop_assert_eq!(counted, attempts.len());
    }
}
