//! Avatars, privacy bubbles, and mute lists.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::geometry::Vec2;

/// World-unique avatar identifier.
pub type AvatarId = u64;

/// An avatar in the world.
///
/// `owner` is the real platform account behind the avatar. Secondary
/// avatars (clones, §II-B) share an owner with a primary avatar but carry
/// a different public `handle`; the world never exposes `owner` to other
/// participants — linking handles to owners is exactly what the E2
/// attacker attempts from behavioural data alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Avatar {
    /// World-unique id.
    pub id: AvatarId,
    /// Public display handle (what other avatars see).
    pub handle: String,
    /// Real account behind the avatar (never exposed in-world).
    pub owner: String,
    /// Current position.
    pub position: Vec2,
    /// Whether this is a secondary avatar (clone).
    pub secondary: bool,
    /// Privacy-bubble radius; interactions from outside are blocked.
    /// `None` = bubble off.
    pub bubble: Option<f64>,
    /// Handles this avatar has muted.
    pub muted: HashSet<String>,
}

impl Avatar {
    /// Creates a primary avatar.
    pub fn new(id: AvatarId, handle: impl Into<String>, owner: impl Into<String>, position: Vec2) -> Self {
        Avatar {
            id,
            handle: handle.into(),
            owner: owner.into(),
            position,
            secondary: false,
            bubble: None,
            muted: HashSet::new(),
        }
    }

    /// Enables a privacy bubble of the given radius.
    pub fn enable_bubble(&mut self, radius: f64) {
        self.bubble = Some(radius.max(0.0));
    }

    /// Disables the privacy bubble.
    pub fn disable_bubble(&mut self) {
        self.bubble = None;
    }

    /// Whether an approach from `from` at distance `d` penetrates this
    /// avatar's personal space: true when a bubble is on and the contact
    /// would originate inside it from a non-consented party.
    pub fn bubble_blocks(&self, d: f64) -> bool {
        matches!(self.bubble, Some(r) if d <= r)
    }

    /// Mutes a handle.
    pub fn mute(&mut self, handle: &str) {
        self.muted.insert(handle.to_string());
    }

    /// Unmutes a handle.
    pub fn unmute(&mut self, handle: &str) {
        self.muted.remove(handle);
    }

    /// Whether a handle is muted.
    pub fn has_muted(&self, handle: &str) -> bool {
        self.muted.contains(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_semantics() {
        let mut a = Avatar::new(1, "neo", "thomas", Vec2::ZERO);
        assert!(!a.bubble_blocks(0.1), "no bubble, nothing blocked");
        a.enable_bubble(2.0);
        assert!(a.bubble_blocks(1.9));
        assert!(a.bubble_blocks(2.0));
        assert!(!a.bubble_blocks(2.1));
        a.disable_bubble();
        assert!(!a.bubble_blocks(0.0));
    }

    #[test]
    fn negative_radius_clamped() {
        let mut a = Avatar::new(1, "h", "o", Vec2::ZERO);
        a.enable_bubble(-3.0);
        assert_eq!(a.bubble, Some(0.0));
        assert!(a.bubble_blocks(0.0));
    }

    #[test]
    fn mute_roundtrip() {
        let mut a = Avatar::new(1, "h", "o", Vec2::ZERO);
        a.mute("troll");
        assert!(a.has_muted("troll"));
        a.unmute("troll");
        assert!(!a.has_muted("troll"));
    }
}
