//! The world simulation: spawning, movement, interactions, bubbles,
//! eavesdropping, and the event log.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::avatar::{Avatar, AvatarId};
use crate::error::WorldError;
use crate::geometry::{Bounds, Vec2};
use crate::grid::SpatialGrid;

/// Kinds of avatar-to-avatar interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InteractionKind {
    /// Spoken/typed chat, overhearable within earshot.
    Chat,
    /// A visible gesture.
    Gesture,
    /// A trade offer.
    Trade,
    /// Deliberate invasion of personal space (the harassment model's
    /// vehicle).
    Approach,
}

/// The result of an interaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractionOutcome {
    /// Delivered to the target.
    Delivered,
    /// Blocked by the target's privacy bubble.
    BlockedByBubble,
    /// Dropped because the target muted the sender.
    BlockedByMute,
    /// Sender was too far away to interact.
    OutOfRange,
}

/// An entry in the world's observable event log.
///
/// Events are keyed by *handle*, not owner — this is the dataset a
/// behavioural attacker (E2) or an eavesdropper legitimately observes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldEvent {
    /// Tick of the event.
    pub tick: u64,
    /// Acting avatar's handle.
    pub actor: String,
    /// Target avatar's handle, when directed.
    pub target: Option<String>,
    /// Interaction kind.
    pub kind: InteractionKind,
    /// Outcome.
    pub outcome: InteractionOutcome,
    /// Where it happened.
    pub position: Vec2,
    /// Handles of avatars who overheard it (chat only).
    pub overheard_by: Vec<String>,
}

/// Configuration of the world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// World bounds.
    pub bounds: Bounds,
    /// Maximum interaction range.
    pub interaction_range: f64,
    /// Radius within which chat is overheard by third parties.
    pub earshot: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            bounds: Bounds::new(100.0, 100.0),
            interaction_range: 3.0,
            earshot: 6.0,
        }
    }
}

/// The virtual world.
///
/// ```
/// use metaverse_world::world::{World, InteractionKind, InteractionOutcome};
/// use metaverse_world::geometry::Vec2;
///
/// let mut w = World::new(Default::default());
/// let a = w.spawn("neo", "thomas", Vec2::new(1.0, 1.0)).unwrap();
/// let b = w.spawn("smith", "agent", Vec2::new(2.0, 1.0)).unwrap();
/// let out = w.interact(a, b, InteractionKind::Chat).unwrap();
/// assert_eq!(out, InteractionOutcome::Delivered);
/// ```
#[derive(Debug)]
pub struct World {
    config: WorldConfig,
    avatars: BTreeMap<AvatarId, Avatar>,
    grid: SpatialGrid,
    next_id: AvatarId,
    tick: u64,
    events: Vec<WorldEvent>,
}

impl World {
    /// Creates an empty world.
    pub fn new(config: WorldConfig) -> Self {
        let cell = (config.interaction_range.max(config.earshot)).max(1.0);
        World {
            config,
            avatars: BTreeMap::new(),
            grid: SpatialGrid::new(cell),
            next_id: 1,
            tick: 0,
            events: Vec::new(),
        }
    }

    /// Current logical time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances time.
    pub fn advance(&mut self, ticks: u64) {
        self.tick += ticks;
    }

    /// Spawns a primary avatar. Handles must be unique.
    pub fn spawn(
        &mut self,
        handle: &str,
        owner: &str,
        position: Vec2,
    ) -> Result<AvatarId, WorldError> {
        self.spawn_inner(handle, owner, position, false)
    }

    /// Spawns a secondary avatar (clone) for `owner`.
    pub fn spawn_secondary(
        &mut self,
        handle: &str,
        owner: &str,
        position: Vec2,
    ) -> Result<AvatarId, WorldError> {
        self.spawn_inner(handle, owner, position, true)
    }

    fn spawn_inner(
        &mut self,
        handle: &str,
        owner: &str,
        position: Vec2,
        secondary: bool,
    ) -> Result<AvatarId, WorldError> {
        if self.avatars.values().any(|a| a.handle == handle) {
            return Err(WorldError::HandleTaken { handle: handle.into() });
        }
        let position = self.config.bounds.clamp(&position);
        let id = self.next_id;
        self.next_id += 1;
        let mut avatar = Avatar::new(id, handle, owner, position);
        avatar.secondary = secondary;
        self.grid.upsert(id, position);
        self.avatars.insert(id, avatar);
        Ok(id)
    }

    /// Removes an avatar from the world.
    pub fn despawn(&mut self, id: AvatarId) -> Result<(), WorldError> {
        self.avatars.remove(&id).ok_or(WorldError::UnknownAvatar { id })?;
        self.grid.remove(id);
        Ok(())
    }

    /// Immutable view of an avatar.
    pub fn avatar(&self, id: AvatarId) -> Result<&Avatar, WorldError> {
        self.avatars.get(&id).ok_or(WorldError::UnknownAvatar { id })
    }

    /// Mutable view of an avatar (bubble toggles, mutes).
    pub fn avatar_mut(&mut self, id: AvatarId) -> Result<&mut Avatar, WorldError> {
        self.avatars.get_mut(&id).ok_or(WorldError::UnknownAvatar { id })
    }

    /// Number of avatars present.
    pub fn population(&self) -> usize {
        self.avatars.len()
    }

    /// Moves an avatar to an absolute position (clamped to bounds).
    pub fn move_to(&mut self, id: AvatarId, to: Vec2) -> Result<(), WorldError> {
        let clamped = self.config.bounds.clamp(&to);
        let avatar = self.avatars.get_mut(&id).ok_or(WorldError::UnknownAvatar { id })?;
        avatar.position = clamped;
        self.grid.upsert(id, clamped);
        Ok(())
    }

    /// Moves an avatar by a delta.
    pub fn move_by(&mut self, id: AvatarId, delta: Vec2) -> Result<(), WorldError> {
        let current = self.avatar(id)?.position;
        self.move_to(id, current.add(&delta))
    }

    /// Handles of avatars within `radius` of avatar `id` (excluding it),
    /// nearest first — what the avatar can *see* (subject to bubbles for
    /// interaction, not vision).
    pub fn nearby(&self, id: AvatarId, radius: f64) -> Result<Vec<(AvatarId, f64)>, WorldError> {
        let pos = self.avatar(id)?.position;
        Ok(self.grid.neighbors(&pos, radius, id))
    }

    /// Attempts an interaction from `from` to `to`. Records the attempt
    /// in the event log regardless of outcome.
    pub fn interact(
        &mut self,
        from: AvatarId,
        to: AvatarId,
        kind: InteractionKind,
    ) -> Result<InteractionOutcome, WorldError> {
        let (from_handle, from_pos) = {
            let a = self.avatar(from)?;
            (a.handle.clone(), a.position)
        };
        let (to_handle, to_pos, blocks, muted) = {
            let b = self.avatar(to)?;
            let d = from_pos.distance(&b.position);
            (b.handle.clone(), b.position, b.bubble_blocks(d), b.has_muted(&from_handle))
        };
        let distance = from_pos.distance(&to_pos);

        let outcome = if distance > self.config.interaction_range {
            InteractionOutcome::OutOfRange
        } else if blocks {
            InteractionOutcome::BlockedByBubble
        } else if muted {
            InteractionOutcome::BlockedByMute
        } else {
            InteractionOutcome::Delivered
        };

        // Eavesdropping: delivered chat is overheard by third parties in
        // earshot whose own bubble does not isolate them.
        let overheard_by = if kind == InteractionKind::Chat
            && outcome == InteractionOutcome::Delivered
        {
            self.grid
                .neighbors(&from_pos, self.config.earshot, from)
                .into_iter()
                .filter(|(id, _)| *id != to)
                .filter_map(|(id, d)| {
                    let a = &self.avatars[&id];
                    // An avatar inside its own bubble does not receive
                    // outside audio.
                    if a.bubble_blocks(d) {
                        None
                    } else {
                        Some(a.handle.clone())
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        self.events.push(WorldEvent {
            tick: self.tick,
            actor: from_handle,
            target: Some(to_handle),
            kind,
            outcome,
            position: from_pos,
            overheard_by,
        });
        Ok(outcome)
    }

    /// The full event log.
    pub fn events(&self) -> &[WorldEvent] {
        &self.events
    }

    /// Events where `handle` acted.
    pub fn events_by(&self, handle: &str) -> Vec<&WorldEvent> {
        self.events.iter().filter(|e| e.actor == handle).collect()
    }

    /// World bounds.
    pub fn bounds(&self) -> Bounds {
        self.config.bounds
    }

    /// Interaction range.
    pub fn interaction_range(&self) -> f64 {
        self.config.interaction_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn spawn_unique_handles() {
        let mut w = world();
        w.spawn("neo", "thomas", Vec2::ZERO).unwrap();
        assert!(matches!(
            w.spawn("neo", "other", Vec2::ZERO),
            Err(WorldError::HandleTaken { .. })
        ));
        assert_eq!(w.population(), 1);
    }

    #[test]
    fn movement_clamped_to_bounds() {
        let mut w = world();
        let id = w.spawn("a", "o", Vec2::new(99.0, 99.0)).unwrap();
        w.move_by(id, Vec2::new(10.0, 10.0)).unwrap();
        assert_eq!(w.avatar(id).unwrap().position, Vec2::new(100.0, 100.0));
    }

    #[test]
    fn interaction_range_enforced() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::new(0.0, 0.0)).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(50.0, 0.0)).unwrap();
        assert_eq!(
            w.interact(a, b, InteractionKind::Chat).unwrap(),
            InteractionOutcome::OutOfRange
        );
        w.move_to(b, Vec2::new(2.0, 0.0)).unwrap();
        assert_eq!(
            w.interact(a, b, InteractionKind::Chat).unwrap(),
            InteractionOutcome::Delivered
        );
    }

    #[test]
    fn bubble_blocks_interaction() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::new(0.0, 0.0)).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(1.0, 0.0)).unwrap();
        w.avatar_mut(b).unwrap().enable_bubble(2.0);
        assert_eq!(
            w.interact(a, b, InteractionKind::Approach).unwrap(),
            InteractionOutcome::BlockedByBubble
        );
        w.avatar_mut(b).unwrap().disable_bubble();
        assert_eq!(
            w.interact(a, b, InteractionKind::Approach).unwrap(),
            InteractionOutcome::Delivered
        );
    }

    #[test]
    fn mute_blocks_after_bubble_check() {
        let mut w = world();
        let a = w.spawn("troll", "o1", Vec2::new(0.0, 0.0)).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(1.0, 0.0)).unwrap();
        w.avatar_mut(b).unwrap().mute("troll");
        assert_eq!(
            w.interact(a, b, InteractionKind::Chat).unwrap(),
            InteractionOutcome::BlockedByMute
        );
    }

    #[test]
    fn eavesdropping_within_earshot() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::new(10.0, 10.0)).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(11.0, 10.0)).unwrap();
        let _nosy = w.spawn("nosy", "o3", Vec2::new(13.0, 10.0)).unwrap();
        let _far = w.spawn("far", "o4", Vec2::new(40.0, 10.0)).unwrap();
        w.interact(a, b, InteractionKind::Chat).unwrap();
        let ev = w.events().last().unwrap();
        assert_eq!(ev.overheard_by, vec!["nosy".to_string()]);
    }

    #[test]
    fn bubble_shields_from_eavesdropping() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::new(10.0, 10.0)).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(11.0, 10.0)).unwrap();
        let nosy = w.spawn("nosy", "o3", Vec2::new(13.0, 10.0)).unwrap();
        w.avatar_mut(nosy).unwrap().enable_bubble(5.0);
        w.interact(a, b, InteractionKind::Chat).unwrap();
        assert!(w.events().last().unwrap().overheard_by.is_empty());
    }

    #[test]
    fn gesture_not_overheard() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::new(10.0, 10.0)).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(11.0, 10.0)).unwrap();
        let _nosy = w.spawn("nosy", "o3", Vec2::new(12.0, 10.0)).unwrap();
        w.interact(a, b, InteractionKind::Gesture).unwrap();
        assert!(w.events().last().unwrap().overheard_by.is_empty());
    }

    #[test]
    fn event_log_records_blocked_attempts() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::ZERO).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(1.0, 0.0)).unwrap();
        w.avatar_mut(b).unwrap().enable_bubble(3.0);
        w.interact(a, b, InteractionKind::Approach).unwrap();
        assert_eq!(w.events().len(), 1);
        assert_eq!(w.events()[0].outcome, InteractionOutcome::BlockedByBubble);
        assert_eq!(w.events_by("a").len(), 1);
    }

    #[test]
    fn despawn_removes_from_queries() {
        let mut w = world();
        let a = w.spawn("a", "o1", Vec2::ZERO).unwrap();
        let b = w.spawn("b", "o2", Vec2::new(1.0, 0.0)).unwrap();
        assert_eq!(w.nearby(a, 5.0).unwrap().len(), 1);
        w.despawn(b).unwrap();
        assert!(w.nearby(a, 5.0).unwrap().is_empty());
        assert!(w.interact(a, b, InteractionKind::Chat).is_err());
    }

    #[test]
    fn secondary_avatar_flagged() {
        let mut w = world();
        let id = w.spawn_secondary("ghost", "thomas", Vec2::ZERO).unwrap();
        assert!(w.avatar(id).unwrap().secondary);
        assert_eq!(w.avatar(id).unwrap().owner, "thomas");
    }
}
