//! Error types for the world crate.

use crate::avatar::AvatarId;

/// Errors returned by world operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorldError {
    /// The avatar does not exist.
    UnknownAvatar {
        /// The missing avatar id.
        id: AvatarId,
    },
    /// The handle is already in use.
    HandleTaken {
        /// The contested handle.
        handle: String,
    },
    /// A movement left the world bounds.
    OutOfBounds {
        /// The moving avatar.
        id: AvatarId,
    },
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::UnknownAvatar { id } => write!(f, "unknown avatar {id}"),
            WorldError::HandleTaken { handle } => write!(f, "handle {handle:?} already taken"),
            WorldError::OutOfBounds { id } => write!(f, "avatar {id} left world bounds"),
        }
    }
}

impl std::error::Error for WorldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(WorldError::UnknownAvatar { id: 3 }.to_string().contains('3'));
    }
}
