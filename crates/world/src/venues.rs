//! Venues and social events — the accessibility story of §IV-B.
//!
//! > "The metaverse can enable many social events that are not possible
//! > physically — for example, concerts with millions of people
//! > worldwide. For example, in 2020, UC Berkeley held its graduation
//! > ceremony in Minecraft."
//!
//! The model: attendees are spread across world regions; a *physical*
//! event has a venue capacity and a travel-cost barrier that falls off
//! with distance, while a *virtual* event has neither. Experiment E17
//! compares attendance and geographic diversity.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where an event is held.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventVenue {
    /// A physical venue in one region with finite capacity.
    Physical {
        /// Region hosting the event.
        region: usize,
        /// Seats available.
        capacity: usize,
    },
    /// A virtual venue: no capacity, no travel.
    Virtual,
}

/// A potential attendee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attendee {
    /// Home region index.
    pub region: usize,
    /// Interest in the event, in `[0, 1]`.
    pub interest: f64,
    /// Resources available for travel, in `[0, 1]` (wealth proxy).
    pub mobility: f64,
}

/// Outcome of holding an event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventReport {
    /// "physical" or "virtual".
    pub venue: String,
    /// People who wanted to attend (interest above threshold).
    pub interested: usize,
    /// People who actually attended.
    pub attended: usize,
    /// Attendance as a fraction of the interested.
    pub attendance_rate: f64,
    /// Shannon entropy (nats) of the attendees' region distribution —
    /// the geographic-diversity metric.
    pub region_entropy: f64,
    /// Attendees turned away by capacity.
    pub turned_away: usize,
}

/// Samples a world population of `n` attendees over `regions` regions.
pub fn sample_population<R: Rng + ?Sized>(
    n: usize,
    regions: usize,
    rng: &mut R,
) -> Vec<Attendee> {
    (0..n)
        .map(|_| Attendee {
            region: rng.gen_range(0..regions.max(1)),
            interest: rng.gen_range(0.0..1.0),
            mobility: rng.gen_range(0.0..1.0),
        })
        .collect()
}

/// Ring distance between regions (world wraps around).
fn region_distance(a: usize, b: usize, regions: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(regions - d)
}

/// Holds an event and reports attendance.
///
/// Physical attendance requires `mobility ≥ distance / (regions/2)` —
/// travelling half the world demands full resources — and is cut off by
/// capacity in arrival order. Virtual attendance only requires interest.
pub fn hold_event<R: Rng + ?Sized>(
    population: &[Attendee],
    venue: EventVenue,
    regions: usize,
    interest_threshold: f64,
    rng: &mut R,
) -> EventReport {
    let interested: Vec<&Attendee> =
        population.iter().filter(|a| a.interest >= interest_threshold).collect();

    let mut attendees: Vec<&Attendee> = Vec::new();
    let mut turned_away = 0usize;
    match venue {
        EventVenue::Virtual => {
            attendees.extend(interested.iter().copied());
        }
        EventVenue::Physical { region, capacity } => {
            // Arrival order is random.
            let mut order: Vec<&Attendee> = interested.clone();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let half = (regions as f64 / 2.0).max(1.0);
            for a in order {
                let cost = region_distance(a.region, region, regions) as f64 / half;
                if a.mobility < cost {
                    continue; // cannot afford the trip
                }
                if attendees.len() >= capacity {
                    turned_away += 1;
                    continue;
                }
                attendees.push(a);
            }
        }
    }

    // Region entropy of attendees.
    let mut counts = vec![0usize; regions.max(1)];
    for a in &attendees {
        counts[a.region] += 1;
    }
    let total = attendees.len().max(1) as f64;
    let entropy: f64 = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum();

    EventReport {
        venue: match venue {
            EventVenue::Physical { .. } => "physical".into(),
            EventVenue::Virtual => "virtual".into(),
        },
        interested: interested.len(),
        attended: attendees.len(),
        attendance_rate: if interested.is_empty() {
            0.0
        } else {
            attendees.len() as f64 / interested.len() as f64
        },
        region_entropy: entropy,
        turned_away,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Vec<Attendee>, StdRng) {
        let mut rng = StdRng::seed_from_u64(51);
        let pop = sample_population(2000, 10, &mut rng);
        (pop, rng)
    }

    #[test]
    fn virtual_event_admits_all_interested() {
        let (pop, mut rng) = setup();
        let report = hold_event(&pop, EventVenue::Virtual, 10, 0.5, &mut rng);
        assert_eq!(report.attended, report.interested);
        assert_eq!(report.attendance_rate, 1.0);
        assert_eq!(report.turned_away, 0);
    }

    #[test]
    fn physical_event_limited_by_capacity_and_travel() {
        let (pop, mut rng) = setup();
        let report = hold_event(
            &pop,
            EventVenue::Physical { region: 0, capacity: 100 },
            10,
            0.5,
            &mut rng,
        );
        assert!(report.attended <= 100);
        assert!(report.attendance_rate < 0.5, "rate {}", report.attendance_rate);
    }

    #[test]
    fn virtual_entropy_exceeds_physical() {
        let (pop, mut rng) = setup();
        let physical = hold_event(
            &pop,
            EventVenue::Physical { region: 0, capacity: 400 },
            10,
            0.5,
            &mut rng,
        );
        let mut rng2 = StdRng::seed_from_u64(52);
        let virtual_ev = hold_event(&pop, EventVenue::Virtual, 10, 0.5, &mut rng2);
        assert!(
            virtual_ev.region_entropy > physical.region_entropy,
            "virtual {} vs physical {}",
            virtual_ev.region_entropy,
            physical.region_entropy
        );
    }

    #[test]
    fn travel_cost_skews_physical_attendance_local() {
        let (pop, mut rng) = setup();
        let report = hold_event(
            &pop,
            EventVenue::Physical { region: 3, capacity: 10_000 },
            10,
            0.5,
            &mut rng,
        );
        // With huge capacity the only barrier is travel: attendance is
        // possible for all locals but only mobile far-away people.
        assert!(report.turned_away == 0);
        assert!(report.attendance_rate < 1.0);
        assert!(report.attendance_rate > 0.2);
    }

    #[test]
    fn region_distance_wraps() {
        assert_eq!(region_distance(0, 9, 10), 1);
        assert_eq!(region_distance(2, 7, 10), 5);
        assert_eq!(region_distance(4, 4, 10), 0);
    }

    #[test]
    fn uninterested_population_empty_event() {
        let (pop, mut rng) = setup();
        let report = hold_event(&pop, EventVenue::Virtual, 10, 1.1, &mut rng);
        assert_eq!(report.interested, 0);
        assert_eq!(report.attended, 0);
        assert_eq!(report.attendance_rate, 0.0);
    }
}
