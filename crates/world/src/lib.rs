//! # metaverse-world
//!
//! The virtual-world substrate of `metaverse-kit`: avatars, space,
//! interactions, and the behavioural privacy tools of §II-B:
//!
//! > "We can foresee that users can use secondary avatars to obfuscate
//! > their real avatar […] Other avatars in the metaverse cannot
//! > recognise the real owner of this secondary avatar and, therefore,
//! > cannot infer any behavioural information about the users."
//!
//! > "Users of the metaverse should also have some configurable options
//! > to manage their personal space in the virtual world. For example,
//! > privacy bubbles restrict visual access with other avatars outside
//! > the bubble."
//!
//! Components:
//!
//! * [`geometry`] — 2-D vectors and bounds.
//! * [`grid`] — a uniform spatial-hash index with radius queries.
//! * [`avatar`] — avatars, privacy bubbles, mute lists, clone marking.
//! * [`world`] — the world simulation: movement, chat with eavesdropping,
//!   interaction logging, bubble enforcement.
//! * [`clones`] — secondary-avatar sessions and the behavioural linkage
//!   attack they defend against (experiment E2).
//! * [`harassment`] — the harassment-incident model behind the
//!   privacy-bubble evaluation (experiment E3).
//! * [`venues`] — social events and the physical-vs-virtual
//!   accessibility model of §IV-B (experiment E17).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod avatar;
pub mod clones;
pub mod error;
pub mod geometry;
pub mod grid;
pub mod harassment;
pub mod venues;
pub mod world;

pub use avatar::{Avatar, AvatarId};
pub use clones::{BehaviorFingerprint, LinkageAttack, SessionLog};
pub use error::WorldError;
pub use geometry::{Bounds, Vec2};
pub use grid::SpatialGrid;
pub use harassment::{HarassmentConfig, HarassmentReport};
pub use venues::{hold_event, Attendee, EventReport, EventVenue};
pub use world::{InteractionKind, InteractionOutcome, World, WorldEvent};
