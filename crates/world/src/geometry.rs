//! Minimal 2-D geometry shared by the world and safety crates.

use serde::{Deserialize, Serialize};

/// A 2-D point / vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X coordinate (metres in safety contexts, world units here).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Constructs a vector.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Vec2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Vector length.
    pub fn length(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Vec2) -> Vec2 {
        Vec2 { x: self.x + other.x, y: self.y + other.y }
    }

    /// Component-wise subtraction (`self - other`).
    pub fn sub(&self, other: &Vec2) -> Vec2 {
        Vec2 { x: self.x - other.x, y: self.y - other.y }
    }

    /// Scalar multiplication.
    pub fn scale(&self, k: f64) -> Vec2 {
        Vec2 { x: self.x * k, y: self.y * k }
    }

    /// Unit vector in this direction; zero vector stays zero.
    pub fn normalized(&self) -> Vec2 {
        let len = self.length();
        if len < 1e-12 {
            Vec2::ZERO
        } else {
            self.scale(1.0 / len)
        }
    }

    /// Dot product.
    pub fn dot(&self, other: &Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

/// An axis-aligned rectangular boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Width (x extent, from 0).
    pub width: f64,
    /// Height (y extent, from 0).
    pub height: f64,
}

impl Bounds {
    /// Constructs bounds.
    pub fn new(width: f64, height: f64) -> Self {
        Bounds { width, height }
    }

    /// Whether a point lies inside (inclusive).
    pub fn contains(&self, p: &Vec2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps a point into the bounds.
    pub fn clamp(&self, p: &Vec2) -> Vec2 {
        Vec2 { x: p.x.clamp(0.0, self.width), y: p.y.clamp(0.0, self.height) }
    }

    /// Distance from `p` to the nearest wall (negative if outside).
    pub fn wall_distance(&self, p: &Vec2) -> f64 {
        let dx = p.x.min(self.width - p.x);
        let dy = p.y.min(self.height - p.y);
        dx.min(dy)
    }

    /// Centre point.
    pub fn center(&self) -> Vec2 {
        Vec2 { x: self.width / 2.0, y: self.height / 2.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_length() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.length(), 5.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a.add(&b), Vec2::new(4.0, 1.0));
        assert_eq!(a.sub(&b), Vec2::new(-2.0, 3.0));
        assert_eq!(a.scale(2.0), Vec2::new(2.0, 4.0));
        assert_eq!(a.dot(&b), 1.0);
    }

    #[test]
    fn normalized_unit_or_zero() {
        assert!((Vec2::new(3.0, 4.0).normalized().length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn bounds_contain_and_clamp() {
        let b = Bounds::new(10.0, 5.0);
        assert!(b.contains(&Vec2::new(0.0, 0.0)));
        assert!(b.contains(&Vec2::new(10.0, 5.0)));
        assert!(!b.contains(&Vec2::new(10.1, 0.0)));
        assert_eq!(b.clamp(&Vec2::new(-1.0, 7.0)), Vec2::new(0.0, 5.0));
    }

    #[test]
    fn wall_distance_sign() {
        let b = Bounds::new(10.0, 10.0);
        assert_eq!(b.wall_distance(&Vec2::new(5.0, 5.0)), 5.0);
        assert_eq!(b.wall_distance(&Vec2::new(1.0, 5.0)), 1.0);
        assert!(b.wall_distance(&Vec2::new(-1.0, 5.0)) < 0.0);
        assert_eq!(b.center(), Vec2::new(5.0, 5.0));
    }
}
