//! Secondary avatars (clones) and the behavioural linkage attack.
//!
//! §II-B claims that secondary avatars stop observers from inferring
//! "any behavioural information about the users". Experiment E2 tests
//! that claim: an attacker observes per-handle behavioural fingerprints
//! (venue visit histograms, activity rates) and tries to link each
//! anonymous secondary handle back to a known primary identity.
//!
//! The punchline the experiment surfaces: a clone only protects its
//! owner if its *behaviour* is also decoupled — a naive clone that
//! visits the same venues at the same rate is trivially linkable, which
//! refines the paper's claim into a measurable condition.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Behavioural fingerprint observable per handle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorFingerprint {
    /// Normalized visit distribution over venues.
    pub venues: Vec<f64>,
    /// Interactions per tick.
    pub activity_rate: f64,
}

impl BehaviorFingerprint {
    /// Samples a random ground-truth fingerprint over `venues` venues.
    pub fn random<R: Rng + ?Sized>(venues: usize, rng: &mut R) -> Self {
        let mut weights: Vec<f64> = (0..venues).map(|_| rng.gen_range(0.01..1.0)).collect();
        // Sharpen: square the weights so users have clear favourites.
        for w in &mut weights {
            *w = *w * *w;
        }
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        BehaviorFingerprint { venues: weights, activity_rate: rng.gen_range(0.5..5.0) }
    }

    /// Produces a noisy observation of this fingerprint, as estimated
    /// from `samples` observed events.
    pub fn observe<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> Self {
        let mut counts = vec![0usize; self.venues.len()];
        for _ in 0..samples {
            // Sample a venue from the true distribution.
            let mut u: f64 = rng.gen_range(0.0..1.0);
            let mut venue = self.venues.len() - 1;
            for (i, w) in self.venues.iter().enumerate() {
                if u < *w {
                    venue = i;
                    break;
                }
                u -= w;
            }
            counts[venue] += 1;
        }
        let total = samples.max(1) as f64;
        BehaviorFingerprint {
            venues: counts.into_iter().map(|c| c as f64 / total).collect(),
            activity_rate: (self.activity_rate + rng.gen_range(-0.3..0.3)).max(0.0),
        }
    }

    /// L2 distance between fingerprints (activity rate normalized by its
    /// plausible range).
    pub fn distance(&self, other: &BehaviorFingerprint) -> f64 {
        let venue_d: f64 = self
            .venues
            .iter()
            .zip(&other.venues)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
        let rate_d = ((self.activity_rate - other.activity_rate) / 4.5).powi(2);
        (venue_d + rate_d).sqrt()
    }
}

/// One observed session: a public handle plus its estimated fingerprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionLog {
    /// Public handle seen in the world.
    pub handle: String,
    /// Fingerprint estimated from this session's events.
    pub fingerprint: BehaviorFingerprint,
}

/// How a clone behaves relative to its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloneStrategy {
    /// Clone keeps the owner's habits (same venues, same rate).
    Naive,
    /// Clone adopts freshly sampled behaviour, decoupled from the owner.
    Randomized,
}

/// The linkage adversary: knows primary identities' fingerprints, sees
/// anonymous secondary sessions, and matches each to the nearest known
/// primary.
#[derive(Debug, Default)]
pub struct LinkageAttack {
    known: Vec<(String, BehaviorFingerprint)>,
}

impl LinkageAttack {
    /// Creates an attacker with no knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enrolls a known primary identity (`owner` is what the attacker
    /// ultimately wants to recover).
    pub fn enroll(&mut self, owner: &str, fingerprint: BehaviorFingerprint) {
        self.known.push((owner.to_string(), fingerprint));
    }

    /// Number of enrolled identities.
    pub fn enrolled(&self) -> usize {
        self.known.len()
    }

    /// Links one anonymous session to the most similar known identity.
    pub fn link(&self, session: &SessionLog) -> Option<&str> {
        self.known
            .iter()
            .min_by(|a, b| {
                let da = a.1.distance(&session.fingerprint);
                let db = b.1.distance(&session.fingerprint);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(owner, _)| owner.as_str())
    }

    /// Linkage accuracy over `(session, true_owner)` pairs.
    pub fn accuracy(&self, cases: &[(SessionLog, String)]) -> f64 {
        if cases.is_empty() {
            return 0.0;
        }
        let hits = cases
            .iter()
            .filter(|(s, truth)| self.link(s) == Some(truth.as_str()))
            .count();
        hits as f64 / cases.len() as f64
    }
}

/// Runs the E2 scenario: `population` users, each with a primary and a
/// secondary avatar under `strategy`. Returns the attacker's linkage
/// accuracy over the secondary sessions.
pub fn linkage_experiment<R: Rng + ?Sized>(
    population: usize,
    venues: usize,
    samples_per_session: usize,
    strategy: CloneStrategy,
    rng: &mut R,
) -> f64 {
    let truths: Vec<(String, BehaviorFingerprint)> = (0..population)
        .map(|i| (format!("user-{i}"), BehaviorFingerprint::random(venues, rng)))
        .collect();

    let mut attack = LinkageAttack::new();
    for (owner, fp) in &truths {
        // Attacker learns primaries from a long observation window.
        attack.enroll(owner, fp.observe(samples_per_session * 4, rng));
    }

    let cases: Vec<(SessionLog, String)> = truths
        .iter()
        .enumerate()
        .map(|(i, (owner, fp))| {
            let clone_behaviour = match strategy {
                CloneStrategy::Naive => fp.clone(),
                CloneStrategy::Randomized => BehaviorFingerprint::random(venues, rng),
            };
            let session = SessionLog {
                handle: format!("anon-{i}"),
                fingerprint: clone_behaviour.observe(samples_per_session, rng),
            };
            (session, owner.clone())
        })
        .collect();

    attack.accuracy(&cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn fingerprint_normalized() {
        let mut r = rng();
        let fp = BehaviorFingerprint::random(8, &mut r);
        let sum: f64 = fp.venues.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(fp.venues.iter().all(|w| *w >= 0.0));
    }

    #[test]
    fn observation_approximates_truth() {
        let mut r = rng();
        let fp = BehaviorFingerprint::random(5, &mut r);
        let obs = fp.observe(20_000, &mut r);
        assert!(fp.distance(&obs) < 0.15, "distance {}", fp.distance(&obs));
    }

    #[test]
    fn distance_zero_for_identical() {
        let mut r = rng();
        let fp = BehaviorFingerprint::random(5, &mut r);
        assert!(fp.distance(&fp) < 1e-12);
    }

    #[test]
    fn naive_clones_are_linkable() {
        let mut r = rng();
        let acc = linkage_experiment(20, 10, 200, CloneStrategy::Naive, &mut r);
        assert!(acc > 0.7, "naive clone linkage accuracy {acc}");
    }

    #[test]
    fn randomized_clones_defeat_linkage() {
        let mut r = rng();
        let naive = linkage_experiment(20, 10, 200, CloneStrategy::Naive, &mut r);
        let randomized = linkage_experiment(20, 10, 200, CloneStrategy::Randomized, &mut r);
        assert!(
            randomized < naive / 2.0,
            "randomized {randomized} should be far below naive {naive}"
        );
        // Near chance (1/20 = 0.05) with slack for small samples.
        assert!(randomized < 0.3, "randomized {randomized}");
    }

    #[test]
    fn empty_attack_cases() {
        let attack = LinkageAttack::new();
        assert_eq!(attack.accuracy(&[]), 0.0);
        assert_eq!(attack.enrolled(), 0);
        let mut r = rng();
        let s = SessionLog {
            handle: "x".into(),
            fingerprint: BehaviorFingerprint::random(3, &mut r),
        };
        assert!(attack.link(&s).is_none());
    }

    #[test]
    fn more_observation_helps_the_attacker() {
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        let short = linkage_experiment(25, 10, 20, CloneStrategy::Naive, &mut r1);
        let long = linkage_experiment(25, 10, 500, CloneStrategy::Naive, &mut r2);
        assert!(long >= short, "long {long} vs short {short}");
    }
}
