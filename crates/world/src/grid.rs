//! A uniform spatial-hash grid for radius queries.
//!
//! The world and the safety simulator both need "who is near this
//! point?" queries every tick; the grid answers them in O(local density)
//! instead of O(population).

use std::collections::HashMap;

use crate::geometry::Vec2;

/// A spatial hash over u64 entity ids.
#[derive(Debug)]
pub struct SpatialGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u64>>,
    positions: HashMap<u64, Vec2>,
}

impl SpatialGrid {
    /// Creates a grid with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive (configuration
    /// bug).
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        SpatialGrid { cell: cell_size, cells: HashMap::new(), positions: HashMap::new() }
    }

    fn key(&self, p: &Vec2) -> (i64, i64) {
        ((p.x / self.cell).floor() as i64, (p.y / self.cell).floor() as i64)
    }

    /// Inserts or moves an entity.
    pub fn upsert(&mut self, id: u64, pos: Vec2) {
        if let Some(old) = self.positions.insert(id, pos) {
            let old_key = self.key(&old);
            let new_key = self.key(&pos);
            if old_key == new_key {
                return;
            }
            if let Some(bucket) = self.cells.get_mut(&old_key) {
                bucket.retain(|&e| e != id);
            }
        }
        self.cells.entry(self.key(&pos)).or_default().push(id);
    }

    /// Removes an entity. Returns whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.positions.remove(&id) {
            Some(pos) => {
                let k = self.key(&pos);
                if let Some(bucket) = self.cells.get_mut(&k) {
                    bucket.retain(|&e| e != id);
                }
                true
            }
            None => false,
        }
    }

    /// Current position of an entity.
    pub fn position(&self, id: u64) -> Option<Vec2> {
        self.positions.get(&id).copied()
    }

    /// Number of tracked entities.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// All entities within `radius` of `centre` (excluding none),
    /// returned with their distances, sorted nearest-first.
    pub fn query(&self, centre: &Vec2, radius: f64) -> Vec<(u64, f64)> {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(centre);
        let mut out = Vec::new();
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &id in bucket {
                        let pos = self.positions[&id];
                        let d = centre.distance(&pos);
                        if d <= radius {
                            out.push((id, d));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Entities within `radius` of `centre`, excluding `exclude`.
    pub fn neighbors(&self, centre: &Vec2, radius: f64, exclude: u64) -> Vec<(u64, f64)> {
        self.query(centre, radius).into_iter().filter(|(id, _)| *id != exclude).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_query_remove() {
        let mut g = SpatialGrid::new(2.0);
        g.upsert(1, Vec2::new(1.0, 1.0));
        g.upsert(2, Vec2::new(4.0, 4.0));
        g.upsert(3, Vec2::new(1.5, 1.0));
        let near = g.query(&Vec2::new(1.0, 1.0), 1.0);
        assert_eq!(near.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![1, 3]);
        assert!(g.remove(3));
        assert!(!g.remove(3));
        assert_eq!(g.query(&Vec2::new(1.0, 1.0), 1.0).len(), 1);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn move_across_cells() {
        let mut g = SpatialGrid::new(1.0);
        g.upsert(7, Vec2::new(0.5, 0.5));
        g.upsert(7, Vec2::new(9.5, 9.5));
        assert!(g.query(&Vec2::new(0.5, 0.5), 0.6).is_empty());
        assert_eq!(g.query(&Vec2::new(9.5, 9.5), 0.6).len(), 1);
        assert_eq!(g.len(), 1, "moving must not duplicate");
    }

    #[test]
    fn query_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = SpatialGrid::new(3.0);
        let points: Vec<(u64, Vec2)> = (0..300)
            .map(|i| (i, Vec2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))))
            .collect();
        for (id, p) in &points {
            g.upsert(*id, *p);
        }
        for _ in 0..50 {
            let centre = Vec2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let radius = rng.gen_range(0.5..20.0);
            let mut expected: Vec<u64> = points
                .iter()
                .filter(|(_, p)| centre.distance(p) <= radius)
                .map(|(id, _)| *id)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<u64> = g.query(&centre, radius).into_iter().map(|(id, _)| id).collect();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn results_sorted_by_distance() {
        let mut g = SpatialGrid::new(5.0);
        g.upsert(1, Vec2::new(3.0, 0.0));
        g.upsert(2, Vec2::new(1.0, 0.0));
        g.upsert(3, Vec2::new(2.0, 0.0));
        let q = g.query(&Vec2::ZERO, 10.0);
        let ids: Vec<u64> = q.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn neighbors_excludes_self() {
        let mut g = SpatialGrid::new(1.0);
        g.upsert(1, Vec2::ZERO);
        g.upsert(2, Vec2::new(0.1, 0.0));
        let n = g.neighbors(&Vec2::ZERO, 1.0, 1);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].0, 2);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        SpatialGrid::new(0.0);
    }

    #[test]
    fn negative_coordinates_supported() {
        let mut g = SpatialGrid::new(2.0);
        g.upsert(1, Vec2::new(-5.0, -5.0));
        assert_eq!(g.query(&Vec2::new(-5.0, -5.0), 0.5).len(), 1);
    }
}
