//! The harassment-incident model (experiment E3).
//!
//! Motivated by the paper's opening example — avatars "us\[ing\] the
//! virtual world of the metaverse as a channel to sexual harass other
//! avatars" — and by its observation that protective tools exist but
//! "users are either not fully aware of them or do not know how to use
//! them" (§II-D).
//!
//! The model: a crowded venue contains victims and harassers. Harassers
//! seek the nearest victim and attempt [`crate::world::InteractionKind::Approach`]
//! every tick they are in range. A fraction of victims (the *awareness*
//! parameter) have enabled their privacy bubble. E3 sweeps awareness and
//! reports delivered-incident rates — quantifying both the tool's
//! effectiveness and the cost of poor discoverability.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geometry::Vec2;
use crate::world::{InteractionKind, InteractionOutcome, World, WorldConfig};

/// Parameters of a harassment simulation.
#[derive(Debug, Clone)]
pub struct HarassmentConfig {
    /// Number of potential victims in the venue.
    pub victims: usize,
    /// Number of harassing avatars.
    pub harassers: usize,
    /// Fraction of victims who have enabled their bubble, in `[0, 1]`.
    pub bubble_awareness: f64,
    /// Bubble radius for those who enable it.
    pub bubble_radius: f64,
    /// Simulation length in ticks.
    pub ticks: u64,
    /// Venue side length (avatars roam a square venue).
    pub venue_size: f64,
    /// Harasser movement speed per tick.
    pub harasser_speed: f64,
    /// Victim movement speed per tick (random walk).
    pub victim_speed: f64,
}

impl Default for HarassmentConfig {
    fn default() -> Self {
        HarassmentConfig {
            victims: 50,
            harassers: 5,
            bubble_awareness: 0.5,
            // Larger than the default interaction range (3.0): a bubble
            // must cover the whole reach of an approach to fully block it
            // (see the undersized-bubble test for the leaky case).
            bubble_radius: 4.0,
            ticks: 200,
            venue_size: 40.0,
            harasser_speed: 1.2,
            victim_speed: 0.8,
        }
    }
}

/// Result of a harassment simulation — a row in the E3 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarassmentReport {
    /// Awareness fraction simulated.
    pub bubble_awareness: f64,
    /// Harassment attempts made.
    pub attempts: u64,
    /// Attempts that reached their victim.
    pub delivered: u64,
    /// Attempts absorbed by a bubble.
    pub blocked: u64,
    /// Delivered incidents per victim over the whole run.
    pub incidents_per_victim: f64,
    /// Delivered incidents per *protected* victim.
    pub incidents_per_protected: f64,
    /// Delivered incidents per *unprotected* victim.
    pub incidents_per_unprotected: f64,
}

/// Runs the harassment scenario and reports incident statistics.
pub fn run_harassment<R: Rng + ?Sized>(
    config: &HarassmentConfig,
    rng: &mut R,
) -> HarassmentReport {
    let mut world = World::new(WorldConfig {
        bounds: crate::geometry::Bounds::new(config.venue_size, config.venue_size),
        ..WorldConfig::default()
    });

    let protected_count =
        ((config.victims as f64) * config.bubble_awareness).round() as usize;

    let mut victims = Vec::with_capacity(config.victims);
    for i in 0..config.victims {
        let pos = Vec2::new(
            rng.gen_range(0.0..config.venue_size),
            rng.gen_range(0.0..config.venue_size),
        );
        let id = world.spawn(&format!("victim-{i}"), &format!("user-{i}"), pos).unwrap();
        if i < protected_count {
            world.avatar_mut(id).unwrap().enable_bubble(config.bubble_radius);
        }
        victims.push(id);
    }

    let mut harassers = Vec::with_capacity(config.harassers);
    for i in 0..config.harassers {
        let pos = Vec2::new(
            rng.gen_range(0.0..config.venue_size),
            rng.gen_range(0.0..config.venue_size),
        );
        let id = world
            .spawn(&format!("harasser-{i}"), &format!("troll-{i}"), pos)
            .unwrap();
        harassers.push(id);
    }

    let mut delivered_per_victim = vec![0u64; config.victims];
    let (mut attempts, mut delivered, mut blocked) = (0u64, 0u64, 0u64);

    for _ in 0..config.ticks {
        // Victims random-walk.
        for &v in &victims {
            let step = Vec2::new(
                rng.gen_range(-config.victim_speed..config.victim_speed),
                rng.gen_range(-config.victim_speed..config.victim_speed),
            );
            world.move_by(v, step).unwrap();
        }
        // Harassers pursue the nearest victim and attempt an approach.
        for &h in &harassers {
            let hpos = world.avatar(h).unwrap().position;
            let target = victims
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = world.avatar(a).unwrap().position.distance(&hpos);
                    let db = world.avatar(b).unwrap().position.distance(&hpos);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("victims exist");
            let tpos = world.avatar(target).unwrap().position;
            let dir = tpos.sub(&hpos).normalized();
            world.move_by(h, dir.scale(config.harasser_speed)).unwrap();

            let d = world.avatar(h).unwrap().position.distance(&tpos);
            if d <= world.interaction_range() {
                attempts += 1;
                match world.interact(h, target, InteractionKind::Approach).unwrap() {
                    InteractionOutcome::Delivered => {
                        delivered += 1;
                        let idx = victims.iter().position(|&v| v == target).unwrap();
                        delivered_per_victim[idx] += 1;
                    }
                    InteractionOutcome::BlockedByBubble => blocked += 1,
                    _ => {}
                }
            }
        }
        world.advance(1);
    }

    let protected_incidents: u64 = delivered_per_victim[..protected_count].iter().sum();
    let unprotected_incidents: u64 = delivered_per_victim[protected_count..].iter().sum();
    let unprotected_count = config.victims - protected_count;

    HarassmentReport {
        bubble_awareness: config.bubble_awareness,
        attempts,
        delivered,
        blocked,
        incidents_per_victim: delivered as f64 / config.victims.max(1) as f64,
        incidents_per_protected: if protected_count == 0 {
            0.0
        } else {
            protected_incidents as f64 / protected_count as f64
        },
        incidents_per_unprotected: if unprotected_count == 0 {
            0.0
        } else {
            unprotected_incidents as f64 / unprotected_count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small(awareness: f64) -> HarassmentConfig {
        HarassmentConfig {
            victims: 30,
            harassers: 4,
            bubble_awareness: awareness,
            ticks: 120,
            ..HarassmentConfig::default()
        }
    }

    #[test]
    fn bubbles_block_all_incidents_for_protected() {
        let mut rng = StdRng::seed_from_u64(41);
        let report = run_harassment(&small(0.5), &mut rng);
        assert_eq!(
            report.incidents_per_protected, 0.0,
            "a bubble larger than interaction range blocks every approach"
        );
        assert!(report.incidents_per_unprotected > 0.0);
        assert!(report.blocked > 0);
    }

    #[test]
    fn awareness_sweep_monotone() {
        let run = |aw: f64| {
            let mut rng = StdRng::seed_from_u64(42);
            run_harassment(&small(aw), &mut rng).incidents_per_victim
        };
        let none = run(0.0);
        let half = run(0.5);
        let full = run(1.0);
        assert!(none > half, "none={none} half={half}");
        assert!(half > full, "half={half} full={full}");
        assert_eq!(full, 0.0);
    }

    #[test]
    fn attempts_conserved() {
        let mut rng = StdRng::seed_from_u64(43);
        let r = run_harassment(&small(0.3), &mut rng);
        assert!(r.delivered + r.blocked <= r.attempts);
        assert!(r.attempts > 0);
    }

    #[test]
    fn small_bubble_leaks() {
        // A bubble smaller than the interaction range lets close-range
        // approaches through once the harasser steps inside... actually a
        // bubble blocks contacts *originating inside it*; a smaller
        // bubble means approaches from bubble_radius..range deliver.
        let mut rng = StdRng::seed_from_u64(44);
        let cfg = HarassmentConfig {
            victims: 30,
            harassers: 4,
            bubble_awareness: 1.0,
            bubble_radius: 0.5, // well below interaction range 3.0
            ticks: 120,
            ..HarassmentConfig::default()
        };
        let r = run_harassment(&cfg, &mut rng);
        assert!(
            r.incidents_per_protected > 0.0,
            "undersized bubbles are imperfect: {r:?}"
        );
    }
}
