//! The live-stats endpoint gate: `StatsQuery` admin frames served
//! mid-stream by the network front door must (1) come back as framed
//! `StatsReply` frames the client can decode, (2) leave `Stats`
//! entries in the admission journal, and (3) replay offline — a fresh
//! router, no sockets — serving byte-identical bodies for every
//! deterministic kind, with the op-stream fingerprint untouched by the
//! observation.

use std::cell::RefCell;
use std::rc::Rc;

use metaverse_gateway::op::{Op, StatsKind, StatsQuery, StatsReply, TAG_STATS_REPLY};
use metaverse_gateway::ops::OpsPlaneConfig;
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::{GatewayConfig, ShardRouter};
use metaverse_net::server::{ByteStream, ReadOutcome};
use metaverse_net::{
    frame, AdmissionJournal, FrameDecoder, JournalEntry, NetServer, NetServerConfig,
};

/// A scripted stream that keeps a shared handle on everything the
/// server wrote back, so replies survive `run_to_completion`.
struct EchoStream {
    data: Vec<u8>,
    pos: usize,
    written: Rc<RefCell<Vec<u8>>>,
}

impl ByteStream for EchoStream {
    fn read(&mut self, _now: u64, buf: &mut [u8]) -> ReadOutcome {
        if self.pos >= self.data.len() {
            return ReadOutcome::Closed;
        }
        let n = (self.data.len() - self.pos).min(buf.len()).min(64);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        ReadOutcome::Data(n)
    }

    fn write(&mut self, _now: u64, bytes: &[u8]) -> usize {
        self.written.borrow_mut().extend_from_slice(bytes);
        bytes.len()
    }
}

fn router(shards: usize) -> ShardRouter {
    ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(1)
            .tracing(1 << 12)
            .ops_plane(OpsPlaneConfig::default())
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .key_tree_depth(5)
            .build(),
    )
}

fn fingerprint(router: &mut ShardRouter) -> String {
    let trace = router.trace_jsonl();
    format!("{:?}\n{:?}\n{trace}", router.settlement_ledger(), router.conservation_report())
}

/// One client script: ops interleaved with stats queries.
fn script() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&frame(&Op::Register { user: "alice".into() }.encode()));
    out.extend_from_slice(&frame(&Op::Register { user: "bob".into() }.encode()));
    out.extend_from_slice(&frame(&StatsQuery { kind: StatsKind::Heat }.encode()));
    out.extend_from_slice(&frame(
        &Op::Endorse { user: "alice".into(), subject: "bob".into() }.encode(),
    ));
    out.extend_from_slice(&frame(&StatsQuery { kind: StatsKind::Slo }.encode()));
    out.extend_from_slice(&frame(&StatsQuery { kind: StatsKind::Latency }.encode()));
    out.extend_from_slice(&frame(&StatsQuery { kind: StatsKind::Prometheus }.encode()));
    out
}

fn replies(written: &[u8]) -> Vec<StatsReply> {
    let mut decoder = FrameDecoder::new(1 << 20);
    let mut frames = Vec::new();
    decoder.feed(written, &mut frames).expect("server output reframes");
    frames
        .into_iter()
        .filter(|f| f.first() == Some(&TAG_STATS_REPLY))
        .map(|f| StatsReply::decode(&f).expect("well-formed reply frame"))
        .collect()
}

#[test]
fn stats_queries_are_served_journaled_and_replayable() {
    let written = Rc::new(RefCell::new(Vec::new()));
    let mut server = NetServer::new(
        router(2),
        NetServerConfig { ops_per_epoch: 2, ..NetServerConfig::default() },
    );
    server.accept(EchoStream { data: script(), pos: 0, written: Rc::clone(&written) });
    let report = server.run_to_completion();
    assert!(!report.stalled, "{report:?}");
    assert_eq!(report.admitted, 3, "the three ops admit; queries are not offers");

    // (1) Four framed replies, in query order, carrying the right views.
    let replies = replies(&written.borrow());
    let kinds: Vec<StatsKind> = replies.iter().map(|r| r.kind).collect();
    assert_eq!(kinds, [StatsKind::Heat, StatsKind::Slo, StatsKind::Latency, StatsKind::Prometheus]);
    for reply in &replies {
        let body = String::from_utf8(reply.body.clone()).expect("text body");
        match reply.kind {
            StatsKind::Prometheus => {
                assert!(body.contains("# HELP"), "exposition carries help text");
                // Dots sanitize to underscores in exposition names.
                assert!(body.contains("ops_plane_heat_epochs_folded"), "{body}");
            }
            _ => assert!(body.starts_with('{') && body.ends_with('}'), "JSON body: {body}"),
        }
    }

    // (2) The journal recorded each query at its position.
    let (mut live, journal) = server.into_parts();
    assert_eq!(journal.stats(), 4);
    let journal = AdmissionJournal::from_bytes(&journal.to_bytes()).expect("round-trips");
    assert_eq!(journal.stats(), 4);
    assert!(journal
        .entries()
        .iter()
        .any(|e| matches!(e, JournalEntry::Stats { kind: StatsKind::Heat, served: true, .. })));

    // (3) Offline replay re-serves every deterministic body
    // byte-identically and reproduces the op-stream fingerprint.
    let mut offline = router(2);
    let replay = journal.replay_into(&mut offline);
    assert_eq!(replay.stats, 4);
    assert_eq!(replay.divergences, 0, "{replay:?}");
    assert_eq!(replay.stats_divergences, 0, "deterministic stats bodies must replay: {replay:?}");
    assert_eq!(fingerprint(&mut live), fingerprint(&mut offline));
}

#[test]
fn a_stats_query_against_a_plane_less_router_still_replays() {
    // A router without the ops plane still serves (bodies say the
    // plane is off) — and the journal still replays cleanly.
    let written = Rc::new(RefCell::new(Vec::new()));
    let plain = |shards: usize| {
        ShardRouter::new(
            GatewayConfig::builder().shards(shards).workers(1).key_tree_depth(5).build(),
        )
    };
    let mut server = NetServer::new(plain(1), NetServerConfig::default());
    let mut data = Vec::new();
    data.extend_from_slice(&frame(&Op::Register { user: "alice".into() }.encode()));
    data.extend_from_slice(&frame(&StatsQuery { kind: StatsKind::Heat }.encode()));
    server.accept(EchoStream { data, pos: 0, written: Rc::clone(&written) });
    let report = server.run_to_completion();
    assert!(!report.stalled);
    let replies = replies(&written.borrow());
    assert_eq!(replies.len(), 1);
    assert_eq!(String::from_utf8_lossy(&replies[0].body), "{\"ops_plane\":\"off\"}");
    let (_, journal) = server.into_parts();
    let mut offline = plain(1);
    let replay = journal.replay_into(&mut offline);
    assert_eq!((replay.stats, replay.stats_divergences), (1, 0));
}

#[test]
fn a_malformed_stats_frame_is_a_wire_refusal_not_a_crash() {
    let written = Rc::new(RefCell::new(Vec::new()));
    let mut server = NetServer::new(router(1), NetServerConfig::default());
    let mut data = Vec::new();
    data.extend_from_slice(&frame(&Op::Register { user: "alice".into() }.encode()));
    // 0x11 tag with an out-of-range kind byte: not a valid query, not
    // a valid op — it must refuse as a wire error and keep serving.
    data.extend_from_slice(&frame(&[0x11, 0xee]));
    data.extend_from_slice(&frame(&StatsQuery { kind: StatsKind::Heat }.encode()));
    server.accept(EchoStream { data, pos: 0, written: Rc::clone(&written) });
    let report = server.run_to_completion();
    assert!(!report.stalled);
    assert_eq!(report.admitted, 1);
    assert_eq!(report.refused, 1, "malformed admin frame refuses like bad wire bytes");
    assert_eq!(replies(&written.borrow()).len(), 1, "the well-formed query still serves");
}
