//! Connection-fault regression gates: a client that dies mid-frame,
//! trickles bytes, or stops draining its acks must never strand a
//! session mailbox, wedge the readiness loop, or break the
//! conservation audit. Faults are scheduled on the deterministic fault
//! fabric, so every one of these runs is replayable.

use metaverse_gateway::session::RateLimit;
use metaverse_gateway::{GatewayConfig, Ingress, ShardRouter};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_net::{sim_clients, CloseCause, ConnState, NetServer, NetServerConfig, SimStream};
use metaverse_resilience::{FaultKind, FaultPlan};

const SEED: u64 = 20220701;
const CONNS: usize = 8;

fn router(shards: usize) -> ShardRouter {
    ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(5)
            .build(),
    )
}

fn fleet(plan: &FaultPlan) -> Vec<SimStream> {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 24,
        ops: 800,
        seed: SEED,
        ..WorkloadConfig::default()
    });
    sim_clients(&engine, CONNS, SEED, 256, plan)
}

fn serve(plan: &FaultPlan) -> NetServer<ShardRouter, SimStream> {
    let mut server = NetServer::new(
        router(2),
        NetServerConfig { ops_per_epoch: 128, ..NetServerConfig::default() },
    );
    for stream in fleet(plan) {
        server.accept(stream);
    }
    let report = server.run_to_completion();
    assert!(!report.stalled, "the run must drain: {report:?}");
    server
}

/// The headline regression: a peer that resets strictly inside a frame
/// closes with the typed cause, its already-admitted ops still execute,
/// and nothing — mailboxes, settlement escrow, the run itself — is left
/// stranded.
#[test]
fn mid_frame_disconnect_never_strands_a_session_mailbox() {
    const VICTIM: u64 = 3;
    let plan =
        FaultPlan::new().schedule(0, 10_000, FaultKind::ConnMidFrameDisconnect { conn: VICTIM });
    let mut server = serve(&plan);
    let victim = server.conn(VICTIM).expect("victim slot exists");
    assert_eq!(
        victim.state(),
        ConnState::Closed(CloseCause::MidFrameDisconnect),
        "the cut must surface as the typed close cause"
    );
    assert_eq!(victim.inbox_len(), 0, "no decoded frame may rot in a dead conn's inbox");
    // Every admitted op — including the victim's pre-cut ops — executed.
    assert_eq!(server.ingress().backlog(), 0, "session mailboxes must be drained");
    let audit = server.ingress_mut().conservation_report();
    assert!(audit.conserved, "{audit:?}");
    // The healthy conns were untouched: each got exactly one ack per
    // offered op and finished cleanly.
    for id in 0..CONNS as u64 {
        if id == VICTIM {
            continue;
        }
        let conn = server.conn(id).expect("slot exists");
        assert_eq!(conn.state(), ConnState::Closed(CloseCause::Finished), "conn {id}");
        let stats = conn.stats();
        assert_eq!(stats.admitted, stats.frames, "conn {id} acked every frame");
    }
}

/// A cut on every connection at once: the server still drains the
/// admitted prefix and the audit holds.
#[test]
fn cutting_every_connection_still_drains_the_admitted_prefix() {
    let mut plan = FaultPlan::new();
    for conn in 0..CONNS as u64 {
        plan = plan.schedule(0, 10_000, FaultKind::ConnMidFrameDisconnect { conn });
    }
    let mut server = serve(&plan);
    for id in 0..CONNS as u64 {
        let conn = server.conn(id).expect("slot exists");
        assert_eq!(conn.state(), ConnState::Closed(CloseCause::MidFrameDisconnect), "conn {id}");
    }
    assert_eq!(server.ingress().backlog(), 0);
    assert!(server.ingress_mut().conservation_report().conserved);
}

/// A slowloris peer (one byte per read inside the window) slows its own
/// stream down but completes losslessly and blocks nobody.
#[test]
fn slowloris_completes_losslessly_without_blocking_the_fleet() {
    let plan = FaultPlan::new().schedule(0, 2_000, FaultKind::ConnSlowloris { conn: 1 });
    let mut server = serve(&plan);
    for id in 0..CONNS as u64 {
        let conn = server.conn(id).expect("slot exists");
        assert_eq!(conn.state(), ConnState::Closed(CloseCause::Finished), "conn {id}");
        let stats = conn.stats();
        assert_eq!(stats.admitted, stats.frames, "conn {id} admitted every frame");
    }
    assert_eq!(server.ingress().backlog(), 0);
    assert!(server.ingress_mut().conservation_report().conserved);
}

/// A peer that stops draining acks mid-run: the server buffers, the
/// window closes, and every ack is eventually delivered — the fault is
/// invisible to the admitted-op stream.
#[test]
fn ack_stall_recovers_without_losing_a_single_ack() {
    let faulted = FaultPlan::new().schedule(1, 200, FaultKind::ConnAckStall { conn: 2 });
    let mut server = serve(&faulted);
    let conn = server.conn(2).expect("slot exists");
    assert_eq!(conn.state(), ConnState::Closed(CloseCause::Finished));
    assert_eq!(conn.write_buf_len(), 0, "every buffered ack must flush after the window");
    let stats = conn.stats();
    assert_eq!(stats.admitted, stats.frames);
    assert_eq!(server.ingress().backlog(), 0);
    assert!(server.ingress_mut().conservation_report().conserved);
}
