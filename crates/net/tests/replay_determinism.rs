//! The network determinism gate CI runs explicitly: a seeded simulated
//! client fleet served through the readiness loop must leave behind an
//! admission journal whose *offline* replay — a fresh router, no
//! sockets, no wall clock — reproduces the settlement ledger, the
//! conservation audit, and the exported op-trace stream byte for byte,
//! at every shard count. The journal is the determinism boundary: if
//! this gate holds, any network run can be audited after the fact.

use metaverse_gateway::session::RateLimit;
use metaverse_gateway::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_net::{sim_clients, AdmissionJournal, NetServer, NetServerConfig};
use metaverse_resilience::FaultPlan;

const SEED: u64 = 20220701;

/// A router sized like the experiments: generous admission (the gate
/// exercises the pipeline, not the limiter), full tracing, shallow key
/// trees for cheap per-test keygen.
fn router(shards: usize) -> ShardRouter {
    ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(1)
            .tracing(1 << 16)
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(5)
            .build(),
    )
}

/// The audited fingerprint the gate compares byte-for-byte.
fn fingerprint(router: &mut ShardRouter) -> String {
    let trace = router.trace_jsonl();
    format!(
        "{:?}\n{:?}\n{:?}\n{trace}",
        router.settlement_ledger(),
        router.conservation_report(),
        router.dp_budget_report(),
    )
}

/// Serves the seeded fleet and returns (journal bytes, fingerprint).
fn serve(shards: usize) -> (Vec<u8>, String) {
    serve_config(
        shards,
        WorkloadConfig { users: 32, ops: 1_500, seed: SEED, ..WorkloadConfig::default() },
    )
}

fn serve_config(shards: usize, workload: WorkloadConfig) -> (Vec<u8>, String) {
    let engine = WorkloadEngine::new(workload);
    let mut server = NetServer::new(
        router(shards),
        NetServerConfig { ops_per_epoch: 256, ..NetServerConfig::default() },
    );
    for stream in sim_clients(&engine, 12, SEED, 512, &FaultPlan::new()) {
        server.accept(stream);
    }
    let report = server.run_to_completion();
    assert!(!report.stalled, "the fleet must drain: {report:?}");
    assert!(report.admitted > 0, "the fleet must admit ops: {report:?}");
    let (mut live, journal) = server.into_parts();
    (journal.to_bytes(), fingerprint(&mut live))
}

#[test]
fn journal_replay_is_byte_identical_at_every_shard_count() {
    for shards in [1usize, 2, 4, 8] {
        let (journal_bytes, live) = serve(shards);
        let journal =
            AdmissionJournal::from_bytes(&journal_bytes).expect("journal bytes round-trip");
        let mut offline = router(shards);
        let replay = journal.replay_into(&mut offline);
        assert_eq!(
            replay.divergences, 0,
            "offline outcomes must match the recorded ones at {shards} shards: {replay:?}"
        );
        assert!(replay.offers > 0 && replay.epochs > 0, "vacuous replay: {replay:?}");
        assert_eq!(
            live,
            fingerprint(&mut offline),
            "offline replay diverged from the network run at {shards} shards"
        );
    }
}

/// The governance gate: each of the three governance-at-scale
/// scenarios (voting storm, biometric burst, moderation flood) served
/// over the wire must replay offline byte-for-byte at every shard
/// count — including the DP-budget audit, which joins the fingerprint
/// so a budget debit or refusal that drifted between the network path
/// and the offline path fails the gate.
#[test]
fn governance_scenarios_replay_byte_identical_at_every_shard_count() {
    let scenarios = [
        ("proposal-storm", WorkloadConfig::proposal_storm(24, 1_000, SEED)),
        ("biometric-burst", WorkloadConfig::biometric_burst(24, 1_000, SEED)),
        ("moderation-flood", WorkloadConfig::moderation_flood(24, 1_000, SEED)),
    ];
    for (name, workload) in scenarios {
        for shards in [1usize, 2, 4, 8] {
            let (journal_bytes, live) = serve_config(shards, workload.clone());
            let journal =
                AdmissionJournal::from_bytes(&journal_bytes).expect("journal bytes round-trip");
            let mut offline = router(shards);
            let replay = journal.replay_into(&mut offline);
            assert_eq!(
                replay.divergences, 0,
                "{name}: offline outcomes diverged at {shards} shards: {replay:?}"
            );
            assert_eq!(
                live,
                fingerprint(&mut offline),
                "{name}: offline replay diverged from the network run at {shards} shards"
            );
        }
    }
}

#[test]
fn identical_network_runs_produce_identical_journals() {
    let (a, fp_a) = serve(4);
    let (b, fp_b) = serve(4);
    assert_eq!(a, b, "journal bytes diverged for identical runs");
    assert_eq!(fp_a, fp_b, "audits diverged for identical runs");
}

#[test]
fn journal_bytes_round_trip_and_refuse_corruption() {
    let (bytes, _) = serve(2);
    let journal = AdmissionJournal::from_bytes(&bytes).expect("decodes");
    assert_eq!(journal.to_bytes(), bytes, "re-encoding must be canonical");
    assert!(AdmissionJournal::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(AdmissionJournal::from_bytes(&bad_magic).is_err());
}
