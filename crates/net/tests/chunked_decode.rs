//! Property-based gates for the streaming frame decoder: a framed op
//! stream split at *arbitrary* byte boundaries (1 B .. 64 KiB chunks)
//! decodes losslessly, every recovered payload re-encodes canonically
//! through the wire codec, and no chunking — or corrupted length
//! prefix — ever panics.

use metaverse_gateway::Op;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_net::{frame, FrameDecoder, FrameError, DEFAULT_MAX_FRAME};
use proptest::prelude::*;

/// A seeded op stream, framed and concatenated into one byte stream.
fn framed_stream(seed: u64, ops: usize) -> (Vec<Op>, Vec<u8>) {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 6,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let ops = engine.generate();
    let mut stream = Vec::new();
    for op in &ops {
        stream.extend_from_slice(&frame(&op.encode()));
    }
    (ops, stream)
}

proptest! {
    /// Whatever the chunking, the decoder recovers exactly the framed
    /// payloads, in order, and each payload is a canonical op frame.
    #[test]
    fn arbitrary_chunking_decodes_losslessly(
        seed in any::<u64>(),
        op_count in 1usize..32,
        chunks in proptest::collection::vec(1usize..65_536, 1..48),
    ) {
        let (ops, stream) = framed_stream(seed, op_count);
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < stream.len() {
            let take = chunks[i % chunks.len()].min(stream.len() - pos);
            decoder.feed(&stream[pos..pos + take], &mut out).expect("valid stream");
            pos += take;
            i += 1;
        }
        prop_assert!(!decoder.mid_frame(), "a whole stream must leave no partial frame");
        prop_assert_eq!(out.len(), ops.len(), "frame count");
        for (payload, op) in out.iter().zip(&ops) {
            prop_assert_eq!(payload, &op.encode(), "payload bytes survive chunking");
            let back = Op::decode(payload).expect("payload is a valid op frame");
            prop_assert_eq!(&back.encode(), payload, "canonical re-encode");
        }
        prop_assert_eq!(decoder.frames_decoded(), ops.len() as u64);
        prop_assert_eq!(decoder.bytes_consumed(), stream.len() as u64);
    }

    /// One-byte drip: the adversarial-slow path decodes identically to
    /// a single-shot feed.
    #[test]
    fn one_byte_drip_matches_single_shot(seed in any::<u64>(), op_count in 1usize..16) {
        let (_, stream) = framed_stream(seed, op_count);
        let mut drip = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut drip_out = Vec::new();
        for b in &stream {
            drip.feed(std::slice::from_ref(b), &mut drip_out).expect("valid stream");
        }
        let mut shot = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut shot_out = Vec::new();
        shot.feed(&stream, &mut shot_out).expect("valid stream");
        prop_assert_eq!(drip_out, shot_out);
    }

    /// A length prefix above the cap fails typed — never a panic, never
    /// an allocation of the advertised size — wherever the chunk
    /// boundary falls inside the prefix.
    #[test]
    fn oversized_prefix_fails_typed_at_any_split(split in 0usize..4, extra in 0u32..1024) {
        let len = DEFAULT_MAX_FRAME as u32 + 1 + extra;
        let prefix = len.to_le_bytes();
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        decoder.feed(&prefix[..split], &mut out).expect("incomplete prefix is fine");
        let err = decoder.feed(&prefix[split..], &mut out).expect_err("over the cap");
        prop_assert!(matches!(err, FrameError::Oversized { .. }), "{err:?}");
        prop_assert!(out.is_empty());
    }
}
