//! The admission journal: the serving layer's determinism boundary.
//!
//! A network-driven run is nondeterministic in every way that does not
//! matter (chunk sizes, sweep interleavings, wall-clock latencies) and
//! deterministic in the one way that does: the exact sequence of
//! ingress calls. The journal records that sequence — every offer with
//! its connection id, logical tick, raw op bytes, and outcome, plus
//! every epoch boundary, in order. Refused offers are recorded too:
//! a refusal emits a trace event and bumps refusal counters, so
//! skipping them would fork the trace stream on replay.
//!
//! [`AdmissionJournal::replay_into`] re-feeds the sequence through any
//! [`Ingress`] — typically a fresh offline [`ShardRouter`] built with
//! the same config — and the determinism gates assert the replayed
//! router's conservation audit, settlement ledger, and trace JSONL are
//! **byte-identical** to the network run's.
//!
//! The journal itself serialises to a compact binary form
//! ([`AdmissionJournal::to_bytes`]) so a recorded run can be shipped
//! and replayed elsewhere.
//!
//! [`ShardRouter`]: metaverse_gateway::router::ShardRouter

use std::fmt;

use metaverse_gateway::error::{AdmissionError, GatewayError};
use metaverse_gateway::ingress::Ingress;
use metaverse_gateway::op::StatsKind;

/// FNV-1a over a reply body: the digest journaled with each stats
/// entry, so replays can check deterministic bodies without storing
/// them (Prometheus bodies carry wall-clock histograms and are
/// exempt — see [`StatsKind::deterministic`]).
pub fn body_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable wire code for a refusal cause: what the server told the
/// client, and what replay must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalCode {
    /// Token bucket empty — backpressure, retry later.
    RateLimited,
    /// Session mailbox at capacity — wait for an epoch.
    MailboxFull,
    /// No session for the op's user.
    UnknownUser,
    /// Second `Register` for an existing session.
    DuplicateRegister,
    /// Home shard breaker open.
    ShardDown,
    /// The bytes were not a valid op.
    Wire,
    /// Any other gateway failure.
    Other,
}

impl RefusalCode {
    /// Classifies a gateway error into its stable code.
    pub fn classify(e: &GatewayError) -> RefusalCode {
        match e {
            GatewayError::Admission(AdmissionError::RateLimited { .. }) => RefusalCode::RateLimited,
            GatewayError::Admission(AdmissionError::MailboxFull { .. }) => RefusalCode::MailboxFull,
            GatewayError::Admission(AdmissionError::UnknownUser { .. }) => RefusalCode::UnknownUser,
            GatewayError::Admission(AdmissionError::AlreadyRegistered { .. }) => {
                RefusalCode::DuplicateRegister
            }
            GatewayError::Admission(AdmissionError::ShardUnavailable { .. }) => {
                RefusalCode::ShardDown
            }
            GatewayError::Wire(_) => RefusalCode::Wire,
            _ => RefusalCode::Other,
        }
    }

    /// One-byte wire value.
    pub fn code(self) -> u8 {
        match self {
            RefusalCode::RateLimited => 1,
            RefusalCode::MailboxFull => 2,
            RefusalCode::UnknownUser => 3,
            RefusalCode::DuplicateRegister => 4,
            RefusalCode::ShardDown => 5,
            RefusalCode::Wire => 6,
            RefusalCode::Other => 7,
        }
    }

    /// Inverse of [`RefusalCode::code`].
    pub fn from_code(code: u8) -> Option<RefusalCode> {
        Some(match code {
            1 => RefusalCode::RateLimited,
            2 => RefusalCode::MailboxFull,
            3 => RefusalCode::UnknownUser,
            4 => RefusalCode::DuplicateRegister,
            5 => RefusalCode::ShardDown,
            6 => RefusalCode::Wire,
            7 => RefusalCode::Other,
            _ => return None,
        })
    }

    /// Stable lowercase label (matches the gateway's refusal-cause
    /// vocabulary where one exists).
    pub fn label(self) -> &'static str {
        match self {
            RefusalCode::RateLimited => "rate_limited",
            RefusalCode::MailboxFull => "mailbox_full",
            RefusalCode::UnknownUser => "unknown_user",
            RefusalCode::DuplicateRegister => "duplicate_register",
            RefusalCode::ShardDown => "shard_down",
            RefusalCode::Wire => "wire_error",
            RefusalCode::Other => "other",
        }
    }
}

/// What one journaled offer produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Admitted with this global sequence number.
    Admitted(u64),
    /// Refused with this cause.
    Refused(RefusalCode),
}

/// One journal record, in recording order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// One ingress offer: raw op bytes from a connection, with the
    /// outcome the live run observed.
    Offer {
        /// Originating connection id.
        conn: u64,
        /// Logical tick at the offer.
        tick: u64,
        /// The exact wire bytes offered.
        bytes: Vec<u8>,
        /// What the live run's ingress said.
        outcome: OfferOutcome,
    },
    /// An epoch boundary fired after the preceding offers.
    Epoch,
    /// A live-stats query served at this point in the offer stream.
    /// Journaled because serving order is part of the recorded run:
    /// replay re-serves at the same position and, for deterministic
    /// kinds, checks the body digest matches.
    Stats {
        /// Originating connection id.
        conn: u64,
        /// Logical tick at serve time.
        tick: u64,
        /// Which view was asked for.
        kind: StatsKind,
        /// Whether the live ingress served a reply (`false` means the
        /// ingress had no stats support and the query was refused).
        served: bool,
        /// FNV-1a digest of the served body (0 when unserved).
        digest: u64,
    },
}

/// A malformed serialised journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// The buffer ended inside a record.
    UnexpectedEof,
    /// The magic header is missing.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown entry tag.
    BadTag(u8),
    /// Unknown outcome tag.
    BadOutcome(u8),
    /// Unknown refusal code.
    BadCode(u8),
    /// Unknown stats-kind byte in a stats entry.
    BadStatsKind(u8),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::UnexpectedEof => write!(f, "journal: truncated"),
            JournalError::BadMagic => write!(f, "journal: bad magic"),
            JournalError::BadVersion(v) => write!(f, "journal: unknown version {v}"),
            JournalError::BadTag(t) => write!(f, "journal: unknown entry tag {t:#04x}"),
            JournalError::BadOutcome(t) => write!(f, "journal: unknown outcome tag {t:#04x}"),
            JournalError::BadCode(c) => write!(f, "journal: unknown refusal code {c}"),
            JournalError::BadStatsKind(k) => write!(f, "journal: unknown stats kind {k}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// What a replay reproduced, and whether it diverged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Offers re-fed.
    pub offers: u64,
    /// Offers the replaying ingress admitted.
    pub admitted: u64,
    /// Offers the replaying ingress refused.
    pub refused: u64,
    /// Epoch boundaries fired.
    pub epochs: u64,
    /// Offers whose replayed outcome differed from the recorded one
    /// (0 on a healthy deterministic core).
    pub divergences: u64,
    /// Stats queries re-served.
    pub stats: u64,
    /// Deterministic stats replies whose replayed body digest differed
    /// from the recorded one (0 on a healthy deterministic ops plane).
    pub stats_divergences: u64,
}

const MAGIC: &[u8; 4] = b"MVJN";
/// Format 2 added the `Stats` entry (tag 0x02); version-1 journals
/// contain only offers and epochs and still decode.
const VERSION: u8 = 2;

/// The recorded admission sequence of one serving run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionJournal {
    entries: Vec<JournalEntry>,
    offers: u64,
    epochs: u64,
    stats: u64,
}

impl AdmissionJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one offer with the outcome the live ingress returned.
    pub fn record_offer(&mut self, conn: u64, tick: u64, bytes: &[u8], outcome: OfferOutcome) {
        self.offers += 1;
        self.entries.push(JournalEntry::Offer { conn, tick, bytes: bytes.to_vec(), outcome });
    }

    /// Records an epoch boundary at this point in the offer stream.
    pub fn record_epoch(&mut self) {
        self.epochs += 1;
        self.entries.push(JournalEntry::Epoch);
    }

    /// Records one served (or refused) stats query at this point in
    /// the offer stream.
    pub fn record_stats(&mut self, conn: u64, tick: u64, kind: StatsKind, served: bool, digest: u64) {
        self.stats += 1;
        self.entries.push(JournalEntry::Stats { conn, tick, kind, served, digest });
    }

    /// Every record, in order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Offers recorded.
    pub fn offers(&self) -> u64 {
        self.offers
    }

    /// Epoch boundaries recorded.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Stats queries recorded.
    pub fn stats(&self) -> u64 {
        self.stats
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-feeds the recorded sequence through `ingress`, firing epoch
    /// boundaries at the recorded positions, and compares each offer's
    /// outcome with the recorded one. Object-safe on purpose: replay
    /// works through `&mut dyn Ingress`.
    pub fn replay_into(&self, ingress: &mut dyn Ingress) -> ReplayReport {
        let mut report = ReplayReport::default();
        for entry in &self.entries {
            match entry {
                JournalEntry::Offer { bytes, outcome, .. } => {
                    report.offers += 1;
                    let replayed = match ingress.ingress_wire(bytes) {
                        Ok(seq) => {
                            report.admitted += 1;
                            OfferOutcome::Admitted(seq)
                        }
                        Err(e) => {
                            report.refused += 1;
                            OfferOutcome::Refused(RefusalCode::classify(&e))
                        }
                    };
                    if replayed != *outcome {
                        report.divergences += 1;
                    }
                }
                JournalEntry::Epoch => {
                    report.epochs += 1;
                    ingress.epoch_boundary();
                }
                JournalEntry::Stats { kind, served, digest, .. } => {
                    report.stats += 1;
                    // Re-serve at the recorded position. For
                    // deterministic kinds the replayed body must hash
                    // to the recorded digest; Prometheus bodies carry
                    // wall-clock histograms and are exempt.
                    let replayed = ingress.serve_stats(*kind);
                    if *served && kind.deterministic() {
                        match replayed {
                            Some(reply) if body_digest(&reply.body) == *digest => {}
                            _ => report.stats_divergences += 1,
                        }
                    }
                }
            }
        }
        report
    }

    /// Serialises the journal: magic, version, record count, records.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 24);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            match entry {
                JournalEntry::Offer { conn, tick, bytes, outcome } => {
                    out.push(0x00);
                    out.extend_from_slice(&conn.to_le_bytes());
                    out.extend_from_slice(&tick.to_le_bytes());
                    match outcome {
                        OfferOutcome::Admitted(seq) => {
                            out.push(0x00);
                            out.extend_from_slice(&seq.to_le_bytes());
                        }
                        OfferOutcome::Refused(code) => {
                            out.push(0x01);
                            out.push(code.code());
                        }
                    }
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
                JournalEntry::Epoch => out.push(0x01),
                JournalEntry::Stats { conn, tick, kind, served, digest } => {
                    out.push(0x02);
                    out.extend_from_slice(&conn.to_le_bytes());
                    out.extend_from_slice(&tick.to_le_bytes());
                    out.push(kind.byte());
                    out.push(u8::from(*served));
                    out.extend_from_slice(&digest.to_le_bytes());
                }
            }
        }
        out
    }

    /// Inverse of [`AdmissionJournal::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, JournalError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC.as_slice() {
            return Err(JournalError::BadMagic);
        }
        let version = r.u8()?;
        // Version 1 is a strict subset (no stats entries); anything
        // newer than this build's format is unknown.
        if version == 0 || version > VERSION {
            return Err(JournalError::BadVersion(version));
        }
        let count = r.u64()? as usize;
        let mut journal = AdmissionJournal::new();
        for _ in 0..count {
            match r.u8()? {
                0x00 => {
                    let conn = r.u64()?;
                    let tick = r.u64()?;
                    let outcome = match r.u8()? {
                        0x00 => OfferOutcome::Admitted(r.u64()?),
                        0x01 => {
                            let code = r.u8()?;
                            OfferOutcome::Refused(
                                RefusalCode::from_code(code).ok_or(JournalError::BadCode(code))?,
                            )
                        }
                        tag => return Err(JournalError::BadOutcome(tag)),
                    };
                    let len = r.u32()? as usize;
                    let op_bytes = r.take(len)?.to_vec();
                    journal.record_offer(conn, tick, &op_bytes, outcome);
                }
                0x01 => journal.record_epoch(),
                0x02 => {
                    let conn = r.u64()?;
                    let tick = r.u64()?;
                    let kind_byte = r.u8()?;
                    let kind = StatsKind::from_byte(kind_byte)
                        .ok_or(JournalError::BadStatsKind(kind_byte))?;
                    let served = r.u8()? != 0;
                    let digest = r.u64()?;
                    journal.record_stats(conn, tick, kind, served, digest);
                }
                tag => return Err(JournalError::BadTag(tag)),
            }
        }
        Ok(journal)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        if self.pos + n > self.bytes.len() {
            return Err(JournalError::UnexpectedEof);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_gateway::op::Op;
    use metaverse_gateway::router::{GatewayConfig, ShardRouter};

    fn sample() -> AdmissionJournal {
        let mut j = AdmissionJournal::new();
        j.record_offer(
            0,
            0,
            &Op::Register { user: "alice".into() }.encode(),
            OfferOutcome::Admitted(0),
        );
        j.record_offer(
            1,
            0,
            &Op::Register { user: "bob".into() }.encode(),
            OfferOutcome::Admitted(1),
        );
        j.record_epoch();
        j.record_offer(
            1,
            1,
            &Op::Endorse { user: "ghost".into(), subject: "alice".into() }.encode(),
            OfferOutcome::Refused(RefusalCode::UnknownUser),
        );
        j.record_offer(
            0,
            1,
            &Op::Endorse { user: "alice".into(), subject: "bob".into() }.encode(),
            OfferOutcome::Admitted(2),
        );
        j.record_epoch();
        j
    }

    #[test]
    fn binary_form_round_trips_exactly() {
        let journal = sample();
        let bytes = journal.to_bytes();
        let back = AdmissionJournal::from_bytes(&bytes).unwrap();
        assert_eq!(journal, back);
        assert_eq!(back.offers(), 4);
        assert_eq!(back.epochs(), 2);
    }

    #[test]
    fn truncation_and_corruption_surface_typed_errors() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 5, 14, bytes.len() - 1] {
            assert!(AdmissionJournal::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(AdmissionJournal::from_bytes(&bad), Err(JournalError::BadMagic));
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(AdmissionJournal::from_bytes(&bad), Err(JournalError::BadVersion(99)));
        let mut bad = bytes;
        bad[13] = 0x7f; // first entry tag
        assert_eq!(AdmissionJournal::from_bytes(&bad), Err(JournalError::BadTag(0x7f)));
    }

    #[test]
    fn replay_reproduces_outcomes_with_zero_divergence() {
        let journal = sample();
        let mut router =
            ShardRouter::new(GatewayConfig::builder().shards(2).key_tree_depth(6).build());
        let report = journal.replay_into(&mut router);
        assert_eq!(report.offers, 4);
        assert_eq!(report.admitted, 3);
        assert_eq!(report.refused, 1);
        assert_eq!(report.epochs, 2);
        assert_eq!(report.divergences, 0, "deterministic core must match the recording");
        assert!(router.conservation_report().conserved);
    }

    #[test]
    fn replay_counts_divergence_against_a_mismatched_recording() {
        let mut journal = sample();
        // Claim the ghost endorse was admitted — replay must notice.
        if let JournalEntry::Offer { outcome, .. } = &mut journal.entries[3] {
            *outcome = OfferOutcome::Admitted(99);
        }
        let mut router =
            ShardRouter::new(GatewayConfig::builder().shards(2).key_tree_depth(6).build());
        let report = journal.replay_into(&mut router);
        assert_eq!(report.divergences, 1);
    }

    #[test]
    fn refusal_codes_round_trip_and_label_stably() {
        for code in [
            RefusalCode::RateLimited,
            RefusalCode::MailboxFull,
            RefusalCode::UnknownUser,
            RefusalCode::DuplicateRegister,
            RefusalCode::ShardDown,
            RefusalCode::Wire,
            RefusalCode::Other,
        ] {
            assert_eq!(RefusalCode::from_code(code.code()), Some(code));
            assert!(!code.label().is_empty());
        }
        assert_eq!(RefusalCode::from_code(0), None);
        assert_eq!(RefusalCode::from_code(8), None);
    }

    #[test]
    fn stats_entries_round_trip_in_the_binary_form() {
        let mut journal = sample();
        journal.record_stats(3, 7, StatsKind::Heat, true, 0xdead_beef_cafe_f00d);
        journal.record_stats(0, 9, StatsKind::Prometheus, false, 0);
        let back = AdmissionJournal::from_bytes(&journal.to_bytes()).unwrap();
        assert_eq!(journal, back);
        assert_eq!(back.stats(), 2);
        // An out-of-range kind byte is a typed error.
        let mut bad = journal.to_bytes();
        let kind_pos = bad.len() - (8 + 1 + 1); // last entry's kind byte
        bad[kind_pos] = 9;
        assert_eq!(AdmissionJournal::from_bytes(&bad), Err(JournalError::BadStatsKind(9)));
    }

    #[test]
    fn replay_re_serves_stats_and_checks_deterministic_digests() {
        use metaverse_gateway::ingress::Ingress;
        use metaverse_gateway::ops::OpsPlaneConfig;

        let build = || {
            ShardRouter::new(
                GatewayConfig::builder()
                    .shards(2)
                    .key_tree_depth(6)
                    .tracing(1 << 10)
                    .ops_plane(OpsPlaneConfig::default())
                    .build(),
            )
        };
        // Record a tiny live run by hand: two offers, an epoch, then a
        // heat query whose body digest goes into the journal.
        let mut live = build();
        let mut journal = AdmissionJournal::new();
        for (conn, user) in [(0u64, "alice"), (1u64, "bob")] {
            let bytes = Op::Register { user: user.into() }.encode();
            let seq = live.ingress_wire(&bytes).unwrap();
            journal.record_offer(conn, live.logical_now(), &bytes, OfferOutcome::Admitted(seq));
        }
        journal.record_epoch();
        live.epoch_boundary();
        let reply = live.serve_stats(StatsKind::Heat).unwrap();
        journal.record_stats(0, live.logical_now(), StatsKind::Heat, true, body_digest(&reply.body));

        let mut offline = build();
        let report = journal.replay_into(&mut offline);
        assert_eq!(report.stats, 1);
        assert_eq!(report.stats_divergences, 0, "heat body must replay byte-identically");

        // A tampered digest is caught.
        if let JournalEntry::Stats { digest, .. } = journal.entries.last_mut().unwrap() {
            *digest ^= 1;
        }
        let mut offline = build();
        assert_eq!(journal.replay_into(&mut offline).stats_divergences, 1);

        // An unserved query replays without digest checking.
        let mut journal = AdmissionJournal::new();
        journal.record_stats(0, 0, StatsKind::Latency, false, 0);
        let mut offline = build();
        assert_eq!(journal.replay_into(&mut offline).stats_divergences, 0);
    }
}
