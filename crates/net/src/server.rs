//! [`NetServer`]: a hand-rolled readiness sweep over nonblocking byte
//! streams, feeding the deterministic core through [`Ingress`].
//!
//! There is no mio and no tokio here: the server owns a table of
//! ([`Connection`], stream) slots and visits them **in connection-id
//! order** every [`NetServer::sweep`]. Per slot it (1) flushes pending
//! acks, (2) offers decoded frames to the ingress, and (3) reads one
//! chunk off the stream. That fixed visit order is what makes a
//! network run *recordable*: the admission journal captures the exact
//! ingress call sequence, and nothing about socket timing leaks past
//! it.
//!
//! ## Backpressure
//!
//! Admission pressure propagates outward, never inward:
//!
//! * a rate-limited or mailbox-full refusal **parks** the connection
//!   (the frame goes back to the head of its inbox — order is never
//!   reshuffled) and the op is transparently re-offered later;
//! * a parked connection, or one whose ack buffer the client is not
//!   draining, is not read from — pressure reaches the socket;
//! * a sweep that makes no progress fires an epoch boundary, advancing
//!   logical time so token buckets refill and mailboxes drain.
//!
//! ## Time domains
//!
//! The server's `now` is its **sweep index** — one unit per full table
//! visit. The core's time is logical ticks advanced by epochs. The
//! journal records both sides' view; only the ingress call sequence
//! (which the journal captures completely) affects core state.

use std::time::Instant;

use metaverse_gateway::error::{AdmissionError, GatewayError};
use metaverse_gateway::ingress::Ingress;
use metaverse_gateway::op::{StatsQuery, TAG_STATS_QUERY};
use metaverse_telemetry::export::trace_jsonl;
use metaverse_telemetry::names;
use metaverse_telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, RecorderStats, TelemetryHub, TelemetrySnapshot,
    TraceEvent, TraceStage,
};

use crate::conn::{CloseCause, Connection};
use crate::frame::DEFAULT_MAX_FRAME;
use crate::journal::{body_digest, AdmissionJournal, OfferOutcome, RefusalCode};

/// What one nonblocking read produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n > 0` bytes were copied into the buffer.
    Data(usize),
    /// Nothing available right now; try again next sweep.
    WouldBlock,
    /// Clean end-of-stream (peer shut down its write side).
    Closed,
    /// The peer reset the connection; buffered state is gone.
    Reset,
}

/// A nonblocking byte stream the server can serve: simulated
/// ([`SimStream`](crate::sim::SimStream)) or a real
/// `std::net::TcpStream` (see [`crate::tcp`]).
///
/// `now` is the server's sweep index — simulated streams use it to
/// schedule fault windows deterministically; real sockets ignore it.
pub trait ByteStream {
    /// Reads up to `buf.len()` bytes without blocking.
    fn read(&mut self, now: u64, buf: &mut [u8]) -> ReadOutcome;
    /// Writes up to `bytes.len()` bytes without blocking, returning how
    /// many were accepted (0 = would block).
    fn write(&mut self, now: u64, bytes: &[u8]) -> usize;
}

/// Server tuning.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Fire an epoch boundary after this many admissions (an epoch also
    /// fires whenever a sweep makes no progress).
    pub ops_per_epoch: u64,
    /// Largest accepted frame payload (see [`DEFAULT_MAX_FRAME`]).
    pub max_frame: usize,
    /// Bytes read per connection per sweep.
    pub read_chunk: usize,
    /// Stop reading from a connection whose unflushed ack buffer
    /// exceeds this (backpressure to the socket).
    pub write_buffer_cap: usize,
    /// Stall valve: [`NetServer::run_to_completion`] gives up after
    /// this many epochs.
    pub max_epochs: u64,
    /// Capacity of the server's own flight-recorder ring (0 disables
    /// net tracing; the ingress's op tracing is separate).
    pub trace_capacity: usize,
    /// Whether the server records telemetry.
    pub telemetry: bool,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            ops_per_epoch: 2048,
            max_frame: DEFAULT_MAX_FRAME,
            read_chunk: 4096,
            write_buffer_cap: 16384,
            max_epochs: 100_000,
            trace_capacity: 0,
            telemetry: true,
        }
    }
}

/// Final accounting from [`NetServer::run_to_completion`].
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Connections ever accepted.
    pub conns: u64,
    /// Offers journaled (admitted + refused, retries included).
    pub offers: u64,
    /// Offers admitted by the ingress.
    pub admitted: u64,
    /// Offers refused by the ingress.
    pub refused: u64,
    /// Epoch boundaries fired.
    pub epochs: u64,
    /// Sweeps performed.
    pub sweeps: u64,
    /// Bytes read across all connections.
    pub bytes_read: u64,
    /// Ack bytes written across all connections.
    pub bytes_written: u64,
    /// Complete frames decoded across all connections.
    pub frames_decoded: u64,
    /// True if the run hit [`NetServerConfig::max_epochs`] before every
    /// connection closed and the ingress drained.
    pub stalled: bool,
}

/// How long a rate-limit park may last, in sweeps. Epochs fired by
/// no-progress sweeps refill buckets far faster than the platform-tick
/// hint suggests, so long parks only hurt liveness.
const MAX_PARK_SWEEPS: u64 = 64;

struct NetMetrics {
    conns_accepted: Counter,
    conns_closed: Counter,
    conns_open: Gauge,
    bytes_read: Counter,
    bytes_written: Counter,
    frames_decoded: Counter,
    ops_admitted: Counter,
    ops_refused: Counter,
    backpressure_pauses: Counter,
    epochs_fired: Counter,
    sweeps: Counter,
    journal_entries: Counter,
    admission_ns: Histogram,
    stats_served: Counter,
    trace_recorded: Counter,
    trace_dropped: Counter,
    trace_buffer: Gauge,
    trace_capacity: Gauge,
}

impl NetMetrics {
    fn new(hub: &TelemetryHub) -> Self {
        NetMetrics {
            conns_accepted: hub.counter(names::net::CONNS_ACCEPTED),
            conns_closed: hub.counter(names::net::CONNS_CLOSED),
            conns_open: hub.gauge(names::net::CONNS_OPEN),
            bytes_read: hub.counter(names::net::BYTES_READ),
            bytes_written: hub.counter(names::net::BYTES_WRITTEN),
            frames_decoded: hub.counter(names::net::FRAMES_DECODED),
            ops_admitted: hub.counter(names::net::OPS_ADMITTED),
            ops_refused: hub.counter(names::net::OPS_REFUSED),
            backpressure_pauses: hub.counter(names::net::BACKPRESSURE_PAUSES),
            epochs_fired: hub.counter(names::net::EPOCHS_FIRED),
            sweeps: hub.counter(names::net::SWEEPS),
            journal_entries: hub.counter(names::net::JOURNAL_ENTRIES),
            admission_ns: hub.histogram(names::net::ADMISSION_NS),
            stats_served: hub.counter(names::net::STATS_SERVED),
            trace_recorded: hub.counter(names::TRACE_EVENTS_RECORDED),
            trace_dropped: hub.counter(names::TRACE_EVENTS_DROPPED),
            trace_buffer: hub.gauge(names::TRACE_BUFFER_LEN),
            trace_capacity: hub.gauge(names::TRACE_BUFFER_CAPACITY),
        }
    }
}

struct Slot<S> {
    conn: Connection,
    stream: S,
}

/// The connection-oriented front door over any [`Ingress`].
pub struct NetServer<I, S> {
    ingress: I,
    slots: Vec<Slot<S>>,
    journal: AdmissionJournal,
    recorder: FlightRecorder,
    hub: TelemetryHub,
    metrics: NetMetrics,
    config: NetServerConfig,
    sweeps: u64,
    epochs_fired: u64,
    admitted_since_epoch: u64,
    total_admitted: u64,
    total_refused: u64,
    admission_ns: Vec<u64>,
    /// Recorder totals already flushed into the trace counters
    /// (instrument counters are monotone; recorder stats are lifetime
    /// totals).
    trace_counted: (u64, u64),
}

impl<I: Ingress, S: ByteStream> NetServer<I, S> {
    /// Wraps an ingress behind the serving layer.
    pub fn new(ingress: I, config: NetServerConfig) -> Self {
        let hub = if config.telemetry { TelemetryHub::new() } else { TelemetryHub::disabled() };
        let metrics = NetMetrics::new(&hub);
        let recorder = FlightRecorder::new(config.trace_capacity);
        metrics.trace_capacity.set(config.trace_capacity as i64);
        NetServer {
            ingress,
            slots: Vec::new(),
            journal: AdmissionJournal::new(),
            recorder,
            hub,
            metrics,
            config,
            sweeps: 0,
            epochs_fired: 0,
            admitted_since_epoch: 0,
            total_admitted: 0,
            total_refused: 0,
            admission_ns: Vec::new(),
            trace_counted: (0, 0),
        }
    }

    /// Registers a new connection, returning its id (its slot index and
    /// its `seq` on net trace events).
    pub fn accept(&mut self, stream: S) -> u64 {
        let id = self.slots.len() as u64;
        self.slots.push(Slot { conn: Connection::new(id, self.config.max_frame), stream });
        self.metrics.conns_accepted.incr();
        self.metrics.conns_open.add(1);
        self.recorder.record(TraceEvent {
            seq: id,
            epoch: self.epochs_fired,
            tick: self.sweeps,
            stage: TraceStage::ConnAccepted { conn: id },
        });
        id
    }

    /// One full table visit in connection-id order. Returns the
    /// progress made: bytes moved, frames decoded, offers resolved
    /// (parks do not count — a sweep that only parks fires an epoch).
    pub fn sweep(&mut self) -> u64 {
        let now = self.sweeps;
        self.sweeps += 1;
        self.metrics.sweeps.incr();
        let mut progress: u64 = 0;
        let epoch = self.epochs_fired;
        let Self {
            ingress,
            slots,
            journal,
            recorder,
            metrics,
            config,
            admitted_since_epoch,
            total_admitted,
            total_refused,
            admission_ns,
            ..
        } = self;
        let mut read_buf = vec![0u8; config.read_chunk];
        for slot in slots.iter_mut() {
            if slot.conn.is_closed() {
                continue;
            }

            // (1) Flush pending acks.
            loop {
                let head = slot.conn.write_head(config.read_chunk);
                if head.is_empty() {
                    break;
                }
                let wrote = slot.stream.write(now, &head);
                if wrote == 0 {
                    break;
                }
                slot.conn.consume_written(wrote);
                metrics.bytes_written.add(wrote as u64);
                progress += wrote as u64;
            }

            // (2) Offer decoded frames, oldest first. Stop at the
            // epoch-pressure threshold so admission batches stay
            // bounded — the run loop fires the boundary after this
            // sweep.
            while !slot.conn.parked(now) && *admitted_since_epoch < config.ops_per_epoch {
                let Some(bytes) = slot.conn.pop_frame() else { break };
                // Admin frames short-circuit admission: a well-formed
                // stats query is served read-only and journaled as a
                // `Stats` entry (its serving *position* in the offer
                // stream is part of the recorded run), never offered
                // to the core. `TAG_STATS_QUERY` is outside the op tag
                // range, so a malformed 0x11 frame falls through to
                // `ingress_wire` and refuses with a wire error.
                if bytes.first() == Some(&TAG_STATS_QUERY) {
                    if let Ok(query) = StatsQuery::decode(&bytes) {
                        let reply = ingress.serve_stats(query.kind);
                        let tick = ingress.logical_now();
                        let digest = reply.as_ref().map_or(0, |r| body_digest(&r.body));
                        journal.record_stats(
                            slot.conn.id(),
                            tick,
                            query.kind,
                            reply.is_some(),
                            digest,
                        );
                        metrics.journal_entries.incr();
                        match reply {
                            Some(reply) => {
                                slot.conn.queue_payload(&reply.encode());
                                metrics.stats_served.incr();
                            }
                            // The ingress has no stats support: refuse
                            // like any other unserviceable frame.
                            None => slot.conn.queue_refusal(RefusalCode::Other),
                        }
                        progress += 1;
                        continue;
                    }
                }
                let started = Instant::now();
                let result = ingress.ingress_wire(&bytes);
                let elapsed = started.elapsed().as_nanos() as u64;
                admission_ns.push(elapsed);
                metrics.admission_ns.record(elapsed);
                let tick = ingress.logical_now();
                match result {
                    Ok(seq) => {
                        journal.record_offer(slot.conn.id(), tick, &bytes, OfferOutcome::Admitted(seq));
                        metrics.journal_entries.incr();
                        metrics.ops_admitted.incr();
                        slot.conn.queue_ack(seq);
                        *admitted_since_epoch += 1;
                        *total_admitted += 1;
                        progress += 1;
                    }
                    Err(e) => {
                        let code = RefusalCode::classify(&e);
                        journal.record_offer(slot.conn.id(), tick, &bytes, OfferOutcome::Refused(code));
                        metrics.journal_entries.incr();
                        metrics.ops_refused.incr();
                        *total_refused += 1;
                        match e {
                            GatewayError::Admission(AdmissionError::RateLimited {
                                retry_in_ticks: u64::MAX,
                                ..
                            }) => {
                                // This bucket will never refill: waiting
                                // is pointless, and every queued frame
                                // would refuse identically.
                                slot.conn.queue_refusal(code);
                                slot.conn.clear_inbox();
                                close(
                                    &mut slot.conn,
                                    CloseCause::AdmissionStalled,
                                    recorder,
                                    metrics,
                                    now,
                                    epoch,
                                );
                                progress += 1;
                                break;
                            }
                            GatewayError::Admission(AdmissionError::RateLimited {
                                retry_in_ticks,
                                ..
                            }) => {
                                // Transparent retry: the frame goes back
                                // to the inbox head and the connection
                                // parks. The refusal is journaled — it
                                // shaped the core's trace stream.
                                slot.conn.unpop_frame(bytes);
                                let until =
                                    now.saturating_add(retry_in_ticks.clamp(1, MAX_PARK_SWEEPS));
                                slot.conn.park_until(until);
                                metrics.backpressure_pauses.incr();
                                recorder.record(TraceEvent {
                                    seq: slot.conn.id(),
                                    epoch,
                                    tick: now,
                                    stage: TraceStage::BackpressureParked {
                                        conn: slot.conn.id(),
                                        resume_at_tick: until,
                                    },
                                });
                                break;
                            }
                            GatewayError::Admission(AdmissionError::MailboxFull { .. }) => {
                                // Mailboxes drain at epoch boundaries;
                                // park one sweep and let the no-progress
                                // rule fire one.
                                slot.conn.unpop_frame(bytes);
                                slot.conn.park_until(now + 1);
                                metrics.backpressure_pauses.incr();
                                recorder.record(TraceEvent {
                                    seq: slot.conn.id(),
                                    epoch,
                                    tick: now,
                                    stage: TraceStage::BackpressureParked {
                                        conn: slot.conn.id(),
                                        resume_at_tick: now + 1,
                                    },
                                });
                                break;
                            }
                            _ => {
                                // Terminal refusal (unknown user, bad
                                // wire bytes, duplicate register, shard
                                // down): ack it and move on.
                                slot.conn.queue_refusal(code);
                                progress += 1;
                            }
                        }
                    }
                }
            }

            // (3) Read one chunk, if this connection is in a state to
            // accept more work.
            let readable = slot.conn.state() == crate::conn::ConnState::Open
                && slot.conn.inbox_len() == 0
                && !slot.conn.parked(now)
                && slot.conn.write_buf_len() <= config.write_buffer_cap;
            if readable {
                match slot.stream.read(now, &mut read_buf) {
                    ReadOutcome::Data(n) if n > 0 => {
                        slot.conn.note_read(n);
                        metrics.bytes_read.add(n as u64);
                        progress += n as u64;
                        let mut frames = Vec::new();
                        match slot.conn.decoder_mut().feed(&read_buf[..n], &mut frames) {
                            Ok(()) => {
                                for f in frames {
                                    metrics.frames_decoded.incr();
                                    recorder.record(TraceEvent {
                                        seq: slot.conn.id(),
                                        epoch,
                                        tick: now,
                                        stage: TraceStage::FrameDecoded {
                                            conn: slot.conn.id(),
                                            len: f.len() as u32,
                                        },
                                    });
                                    slot.conn.push_frame(f);
                                }
                            }
                            Err(_) => {
                                // Protocol violation: hard close, drop
                                // everything buffered for this peer.
                                slot.conn.clear_inbox();
                                slot.conn.clear_write_buf();
                                close(
                                    &mut slot.conn,
                                    CloseCause::OversizedFrame,
                                    recorder,
                                    metrics,
                                    now,
                                    epoch,
                                );
                            }
                        }
                    }
                    ReadOutcome::Data(_) | ReadOutcome::WouldBlock => {}
                    ReadOutcome::Closed => {
                        // Clean EOF: decoded work still drains.
                        slot.conn.start_draining();
                    }
                    ReadOutcome::Reset => {
                        // The peer is gone and will never read an ack:
                        // abandon undelivered work. Ops already admitted
                        // stay in their session mailboxes and execute —
                        // a reset never strands core state.
                        let mid = slot.conn.decoder().mid_frame();
                        slot.conn.clear_inbox();
                        slot.conn.clear_write_buf();
                        let cause = if mid {
                            CloseCause::MidFrameDisconnect
                        } else {
                            CloseCause::PeerReset
                        };
                        close(&mut slot.conn, cause, recorder, metrics, now, epoch);
                    }
                }
            }

            // Draining connection with nothing left to do: finish it.
            if slot.conn.state() == crate::conn::ConnState::Draining
                && !slot.conn.has_pending_work()
                && !slot.conn.parked(now)
            {
                let cause = if slot.conn.decoder().mid_frame() {
                    CloseCause::MidFrameDisconnect
                } else {
                    CloseCause::Finished
                };
                close(&mut slot.conn, cause, recorder, metrics, now, epoch);
                progress += 1;
            }
        }
        progress
    }

    /// Fires one epoch boundary: journals the marker, then advances the
    /// core (the order replay reproduces).
    pub fn fire_epoch(&mut self) {
        self.journal.record_epoch();
        self.metrics.journal_entries.incr();
        self.ingress.epoch_boundary();
        self.epochs_fired += 1;
        self.admitted_since_epoch = 0;
        self.metrics.epochs_fired.incr();
        if self.recorder.is_enabled() {
            // Flush recorder totals into the monotone trace counters
            // at the epoch cadence (same idiom as the gateway router).
            let stats = self.recorder.stats();
            let (seen_recorded, seen_dropped) = self.trace_counted;
            self.metrics.trace_recorded.add(stats.recorded.saturating_sub(seen_recorded));
            self.metrics.trace_dropped.add(stats.dropped.saturating_sub(seen_dropped));
            self.trace_counted = (stats.recorded, stats.dropped);
            self.metrics.trace_buffer.set(stats.len as i64);
        }
    }

    /// Sweeps until every connection is closed and the ingress backlog
    /// is drained, firing epochs on admission pressure
    /// ([`NetServerConfig::ops_per_epoch`]) or quiescent sweeps.
    pub fn run_to_completion(&mut self) -> ServeReport {
        let mut stalled = false;
        loop {
            if self.epochs_fired >= self.config.max_epochs {
                stalled = true;
                break;
            }
            let progress = self.sweep();
            let all_closed = self.slots.iter().all(|s| s.conn.is_closed());
            if all_closed && self.ingress.backlog() == 0 {
                break;
            }
            if self.admitted_since_epoch >= self.config.ops_per_epoch || progress == 0 {
                self.fire_epoch();
            }
        }
        let mut report = ServeReport {
            conns: self.slots.len() as u64,
            offers: self.journal.offers(),
            admitted: self.total_admitted,
            refused: self.total_refused,
            epochs: self.epochs_fired,
            sweeps: self.sweeps,
            stalled,
            ..ServeReport::default()
        };
        for slot in &self.slots {
            let stats = slot.conn.stats();
            report.bytes_read += stats.bytes_read;
            report.bytes_written += stats.bytes_written;
            report.frames_decoded += stats.frames;
        }
        report
    }

    /// The admission journal recorded so far.
    pub fn journal(&self) -> &AdmissionJournal {
        &self.journal
    }

    /// The wrapped ingress (e.g. to fingerprint the router's audits
    /// after a run).
    pub fn ingress(&self) -> &I {
        &self.ingress
    }

    /// Mutable access to the wrapped ingress.
    pub fn ingress_mut(&mut self) -> &mut I {
        &mut self.ingress
    }

    /// Consumes the server, returning the ingress and the journal.
    pub fn into_parts(self) -> (I, AdmissionJournal) {
        (self.ingress, self.journal)
    }

    /// One connection's state, if it exists.
    pub fn conn(&self, id: u64) -> Option<&Connection> {
        self.slots.get(id as usize).map(|s| &s.conn)
    }

    /// Connections accepted so far.
    pub fn conn_count(&self) -> usize {
        self.slots.len()
    }

    /// The server's net trace stream as JSONL (connection lifecycle —
    /// separate from the ingress's op traces).
    pub fn net_trace_jsonl(&self) -> String {
        trace_jsonl(self.recorder.events())
    }

    /// Net flight-recorder counters.
    pub fn net_trace_stats(&self) -> RecorderStats {
        self.recorder.stats()
    }

    /// A snapshot of the server's metrics.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.hub.snapshot()
    }

    /// Wall-clock nanoseconds per ingress call, in call order (recorded
    /// for reporting only — nothing branches on it).
    pub fn admission_latencies_ns(&self) -> &[u64] {
        &self.admission_ns
    }
}

fn close(
    conn: &mut Connection,
    cause: CloseCause,
    recorder: &mut FlightRecorder,
    metrics: &NetMetrics,
    now: u64,
    epoch: u64,
) {
    if conn.is_closed() {
        return;
    }
    conn.close(cause);
    metrics.conns_closed.incr();
    metrics.conns_open.add(-1);
    recorder.record(TraceEvent {
        seq: conn.id(),
        epoch,
        tick: now,
        stage: TraceStage::ConnClosed { conn: conn.id(), cause: cause.label() },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame;
    use metaverse_gateway::op::Op;
    use metaverse_gateway::router::{GatewayConfig, ShardRouter};
    use metaverse_gateway::session::RateLimit;

    /// A scripted in-memory stream: serves `data` in fixed chunks, then
    /// EOF (or Reset at `reset_at`), and accepts all acks.
    struct ScriptStream {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        acks: Vec<u8>,
        reset_at: Option<usize>,
    }

    impl ScriptStream {
        fn new(data: Vec<u8>, chunk: usize) -> Self {
            ScriptStream { data, pos: 0, chunk, acks: Vec::new(), reset_at: None }
        }
    }

    impl ByteStream for ScriptStream {
        fn read(&mut self, _now: u64, buf: &mut [u8]) -> ReadOutcome {
            if let Some(cut) = self.reset_at {
                if self.pos >= cut {
                    return ReadOutcome::Reset;
                }
            }
            if self.pos >= self.data.len() {
                return ReadOutcome::Closed;
            }
            let mut end = (self.pos + self.chunk).min(self.data.len());
            if let Some(cut) = self.reset_at {
                end = end.min(cut);
            }
            let n = (end - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            ReadOutcome::Data(n)
        }

        fn write(&mut self, _now: u64, bytes: &[u8]) -> usize {
            self.acks.extend_from_slice(bytes);
            bytes.len()
        }
    }

    fn script(ops: &[Op]) -> Vec<u8> {
        let mut out = Vec::new();
        for op in ops {
            out.extend_from_slice(&frame(&op.encode()));
        }
        out
    }

    fn router(shards: usize) -> ShardRouter {
        ShardRouter::new(
            GatewayConfig::builder()
                .shards(shards)
                .key_tree_depth(6)
                .rate_limit(RateLimit { burst: 64, milli_per_tick: 64_000 })
                .build(),
        )
    }

    #[test]
    fn clean_run_admits_everything_and_acks_each_op() {
        let ops = vec![
            Op::Register { user: "alice".into() },
            Op::Register { user: "bob".into() },
            Op::Endorse { user: "alice".into(), subject: "bob".into() },
        ];
        let mut server = NetServer::new(
            router(2),
            NetServerConfig { trace_capacity: 1 << 10, ..NetServerConfig::default() },
        );
        server.accept(ScriptStream::new(script(&ops), 7));
        let report = server.run_to_completion();
        assert!(!report.stalled);
        assert_eq!(report.admitted, 3);
        assert_eq!(report.refused, 0);
        assert_eq!(report.frames_decoded, 3);
        assert_eq!(server.journal().offers(), 3);
        assert!(server.ingress().conservation_report().conserved);
        // Three framed admission acks (13 bytes each).
        let conn = server.conn(0).unwrap();
        assert_eq!(conn.stats().bytes_written, 3 * 13);
        assert_eq!(conn.state(), crate::conn::ConnState::Closed(CloseCause::Finished));
        // Net trace saw the lifecycle.
        let jsonl = server.net_trace_jsonl();
        assert!(jsonl.contains("conn_accepted"), "{jsonl}");
        assert!(jsonl.contains("frame_decoded"));
        assert!(jsonl.contains("conn_closed"));
    }

    #[test]
    fn unknown_user_gets_a_terminal_refusal_ack_and_the_run_completes() {
        let ops = vec![
            Op::Register { user: "alice".into() },
            Op::Endorse { user: "ghost".into(), subject: "alice".into() },
        ];
        let mut server = NetServer::new(router(1), NetServerConfig::default());
        server.accept(ScriptStream::new(script(&ops), 64));
        let report = server.run_to_completion();
        assert!(!report.stalled);
        assert_eq!(report.admitted, 1);
        assert_eq!(report.refused, 1);
        let conn = server.conn(0).unwrap();
        assert_eq!(conn.stats().refused, 1);
        assert_eq!(conn.state(), crate::conn::ConnState::Closed(CloseCause::Finished));
    }

    #[test]
    fn rate_limit_parks_then_transparently_retries_to_completion() {
        // Burst of 2, slow refill: the third op must park and retry.
        let config = GatewayConfig::builder()
            .shards(1)
            .key_tree_depth(6)
            .rate_limit(RateLimit { burst: 2, milli_per_tick: 250 })
            .build();
        let ops = vec![
            Op::Register { user: "alice".into() },
            Op::Endorse { user: "alice".into(), subject: "alice".into() },
            Op::Endorse { user: "alice".into(), subject: "alice".into() },
            Op::Endorse { user: "alice".into(), subject: "alice".into() },
        ];
        let mut server = NetServer::new(ShardRouter::new(config), NetServerConfig::default());
        server.accept(ScriptStream::new(script(&ops), 1024));
        let report = server.run_to_completion();
        assert!(!report.stalled);
        assert_eq!(report.admitted, 4, "every op eventually admitted");
        assert!(report.refused > 0, "rate refusals were journaled");
        assert!(report.offers > 4, "retries appear as extra journaled offers");
        let conn = server.conn(0).unwrap();
        assert!(conn.stats().parks > 0);
        // Exactly one admission ack per op despite retries.
        assert_eq!(conn.stats().admitted, 4);
    }

    #[test]
    fn reset_mid_frame_closes_with_cause_and_never_strands_the_core() {
        let ops = vec![
            Op::Register { user: "alice".into() },
            Op::Endorse { user: "alice".into(), subject: "alice".into() },
        ];
        let bytes = script(&ops);
        // Cut inside the second frame's payload.
        let cut = frame(&ops[0].encode()).len() + 6;
        assert!(cut < bytes.len());
        let mut stream = ScriptStream::new(bytes, 4);
        stream.reset_at = Some(cut);
        let mut server = NetServer::new(router(1), NetServerConfig::default());
        server.accept(stream);
        let report = server.run_to_completion();
        assert!(!report.stalled);
        assert_eq!(report.admitted, 1, "the complete frame was admitted");
        assert_eq!(
            server.conn(0).unwrap().state(),
            crate::conn::ConnState::Closed(CloseCause::MidFrameDisconnect)
        );
        // The admitted op executed: backlog drained, audit clean.
        assert_eq!(server.ingress().pending_ops(), 0);
        assert!(server.ingress().conservation_report().conserved);
    }

    #[test]
    fn epochs_fire_on_admission_pressure() {
        let ops: Vec<Op> = std::iter::once(Op::Register { user: "alice".into() })
            .chain((0..10).map(|_| Op::Endorse { user: "alice".into(), subject: "alice".into() }))
            .collect();
        let mut server = NetServer::new(
            router(1),
            NetServerConfig { ops_per_epoch: 4, ..NetServerConfig::default() },
        );
        server.accept(ScriptStream::new(script(&ops), 4096));
        let report = server.run_to_completion();
        assert!(report.epochs >= 2, "pressure epochs: {report:?}");
        assert_eq!(report.admitted, 11);
    }
}
