//! Deterministic simulated clients: tens of thousands of connections
//! without a socket in sight.
//!
//! A [`SimStream`] replays a pre-encoded script of framed ops through
//! the [`ByteStream`] interface, chopping it into pseudo-random chunk
//! sizes derived purely from `(seed, conn, sweep, position)` — no RNG
//! state, no wall clock — so the same seed produces the same byte
//! deliveries on every run. Connection-scoped faults come from the
//! resilience fabric's [`FaultPlan`]: slowloris trickle (one byte per
//! read), mid-frame disconnect (reset strictly inside a frame), and
//! ack stalls (the client stops draining acks, backing the server's
//! write buffer up).
//!
//! The chunking is deliberately adversarial for the determinism story:
//! admission order depends only on frame completion order, which the
//! journal records — so even though two seeds deliver bytes completely
//! differently, each run's journal replays to byte-identical audits.

use metaverse_gateway::op::Op;
use metaverse_gateway::workload::WorkloadEngine;
use metaverse_resilience::{FaultInjector, FaultPlan};

use crate::frame::{frame, FrameDecoder};
use crate::server::{ByteStream, ReadOutcome};

/// SplitMix64-style bit mix: cheap, stateless, and good enough to make
/// chunk sizes look arbitrary.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One simulated client connection: a scripted byte stream with
/// deterministic chunking and optional connection-scoped faults.
#[derive(Debug)]
pub struct SimStream {
    conn: u64,
    bytes: Vec<u8>,
    /// Exclusive end offset of each frame in `bytes`, ascending.
    frame_ends: Vec<usize>,
    pos: usize,
    seed: u64,
    max_chunk: usize,
    faults: FaultInjector,
    ack_decoder: FrameDecoder,
    acks_admitted: u64,
    acks_refused: u64,
    ack_bytes: u64,
    reset_sent: bool,
    cut_at: Option<usize>,
}

impl SimStream {
    /// A client that will send `ops` (framed, in order) on connection
    /// id `conn`, chunked by `seed`, under `faults`.
    pub fn new(conn: u64, ops: &[Op], seed: u64, max_chunk: usize, faults: FaultPlan) -> Self {
        let mut bytes = Vec::new();
        let mut frame_ends = Vec::with_capacity(ops.len());
        for op in ops {
            bytes.extend_from_slice(&frame(&op.encode()));
            frame_ends.push(bytes.len());
        }
        SimStream {
            conn,
            bytes,
            frame_ends,
            pos: 0,
            seed,
            max_chunk: max_chunk.max(1),
            faults: FaultInjector::new(faults),
            ack_decoder: FrameDecoder::default(),
            acks_admitted: 0,
            acks_refused: 0,
            ack_bytes: 0,
            reset_sent: false,
            cut_at: None,
        }
    }

    /// Connection id this client believes it is.
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// Total script bytes (all frames).
    pub fn script_len(&self) -> usize {
        self.bytes.len()
    }

    /// Admission acks received and decoded.
    pub fn acks_admitted(&self) -> u64 {
        self.acks_admitted
    }

    /// Refusal acks received and decoded.
    pub fn acks_refused(&self) -> u64 {
        self.acks_refused
    }

    /// Whether this client reset its connection (mid-frame disconnect
    /// fault fired).
    pub fn did_reset(&self) -> bool {
        self.reset_sent
    }

    /// A byte offset strictly inside the frame containing (or after)
    /// `pos`: where a mid-frame disconnect cuts. Every op frame is at
    /// least 5 bytes (4-byte prefix + tag), so a strict interior always
    /// exists.
    fn mid_frame_cut(&self) -> Option<usize> {
        let idx = self.frame_ends.iter().position(|&end| end > self.pos)?;
        let start = if idx == 0 { 0 } else { self.frame_ends[idx - 1] };
        let end = self.frame_ends[idx];
        let mid = start + (end - start) / 2;
        // Strictly inside: past at least one byte, short of the end.
        Some(mid.clamp(start + 1, end - 1).max(self.pos + 1).min(end - 1))
    }
}

impl ByteStream for SimStream {
    fn read(&mut self, now: u64, buf: &mut [u8]) -> ReadOutcome {
        if self.reset_sent {
            return ReadOutcome::Reset;
        }
        // Arm the mid-frame disconnect the first sweep its window is
        // active (and only if script bytes remain to cut inside).
        if self.cut_at.is_none()
            && self.pos < self.bytes.len()
            && self.faults.conn_disconnect(now, self.conn)
        {
            self.cut_at = self.mid_frame_cut();
        }
        if let Some(cut) = self.cut_at {
            if self.pos >= cut {
                self.reset_sent = true;
                return ReadOutcome::Reset;
            }
        }
        if self.pos >= self.bytes.len() {
            return ReadOutcome::Closed;
        }
        let chunk = if self.faults.conn_slowloris(now, self.conn) {
            1
        } else {
            let r = mix(self.seed ^ mix(self.conn) ^ mix(now) ^ self.pos as u64);
            1 + (r % self.max_chunk as u64) as usize
        };
        let mut end = (self.pos + chunk).min(self.bytes.len());
        if let Some(cut) = self.cut_at {
            end = end.min(cut);
        }
        let n = (end - self.pos).min(buf.len());
        if n == 0 {
            return ReadOutcome::WouldBlock;
        }
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        ReadOutcome::Data(n)
    }

    fn write(&mut self, now: u64, bytes: &[u8]) -> usize {
        if self.faults.conn_ack_stall(now, self.conn) {
            return 0;
        }
        self.ack_bytes += bytes.len() as u64;
        let mut frames = Vec::new();
        // Ack frames are tiny; oversize is impossible from our server.
        let _ = self.ack_decoder.feed(bytes, &mut frames);
        for f in frames {
            match f.first() {
                Some(0x00) => self.acks_admitted += 1,
                Some(0x01) => self.acks_refused += 1,
                _ => {}
            }
        }
        bytes.len()
    }
}

/// Builds one [`SimStream`] per connection from a workload engine's op
/// stream, sharded by user: each user's ops all ride the same
/// connection (sessions are per-user, so interleaving one user across
/// connections would make admission order ack-dependent), users are
/// assigned to connections round-robin by first appearance, and each
/// connection's script preserves the global relative order of its ops.
///
/// Every stream gets its own [`FaultInjector`] over a clone of `plan`,
/// so connection-scoped fault windows can target any subset.
pub fn sim_clients(
    engine: &WorkloadEngine,
    conns: usize,
    seed: u64,
    max_chunk: usize,
    plan: &FaultPlan,
) -> Vec<SimStream> {
    let ops = engine.generate();
    let conns = conns.max(1);
    let mut user_conn: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut scripts: Vec<Vec<Op>> = (0..conns).map(|_| Vec::new()).collect();
    let mut next = 0usize;
    for op in ops {
        let slot = *user_conn.entry(op.user().to_string()).or_insert_with(|| {
            let s = next % conns;
            next += 1;
            s
        });
        scripts[slot].push(op);
    }
    scripts
        .into_iter()
        .enumerate()
        .map(|(i, script)| {
            SimStream::new(i as u64, &script, seed ^ mix(i as u64), max_chunk, plan.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
    use metaverse_resilience::FaultKind;

    fn ops() -> Vec<Op> {
        vec![
            Op::Register { user: "alice".into() },
            Op::Endorse { user: "alice".into(), subject: "alice".into() },
            Op::Register { user: "bob".into() },
        ]
    }

    fn drain(stream: &mut SimStream) -> (Vec<u8>, u64) {
        let mut out = Vec::new();
        let mut buf = [0u8; 512];
        let mut sweeps = 0u64;
        loop {
            match stream.read(sweeps, &mut buf) {
                ReadOutcome::Data(n) => out.extend_from_slice(&buf[..n]),
                ReadOutcome::Closed | ReadOutcome::Reset => break,
                ReadOutcome::WouldBlock => {}
            }
            sweeps += 1;
            assert!(sweeps < 100_000, "stream never finished");
        }
        (out, sweeps)
    }

    #[test]
    fn chunking_is_deterministic_and_lossless() {
        let a = drain(&mut SimStream::new(0, &ops(), 42, 16, FaultPlan::new()));
        let b = drain(&mut SimStream::new(0, &ops(), 42, 16, FaultPlan::new()));
        assert_eq!(a, b, "same seed, same deliveries");
        let (bytes, _) = a;
        let mut expected = Vec::new();
        for op in ops() {
            expected.extend_from_slice(&frame(&op.encode()));
        }
        assert_eq!(bytes, expected, "chunking never corrupts the script");
        let (other, _) = drain(&mut SimStream::new(0, &ops(), 43, 16, FaultPlan::new()));
        assert_eq!(other, expected, "different seed, same reassembled bytes");
    }

    #[test]
    fn slowloris_fault_trickles_one_byte_per_read() {
        let plan = FaultPlan::new().schedule(0, 1_000_000, FaultKind::ConnSlowloris { conn: 0 });
        let mut s = SimStream::new(0, &ops(), 7, 64, plan);
        let mut buf = [0u8; 64];
        for sweep in 0..5 {
            assert_eq!(s.read(sweep, &mut buf), ReadOutcome::Data(1));
        }
    }

    #[test]
    fn mid_frame_disconnect_resets_strictly_inside_a_frame() {
        let plan =
            FaultPlan::new().schedule(0, 1_000_000, FaultKind::ConnMidFrameDisconnect { conn: 0 });
        let mut s = SimStream::new(0, &ops(), 7, 8, plan);
        let (delivered, _) = drain(&mut s);
        assert!(s.did_reset());
        // The cut lands inside the first frame.
        let first_frame_len = frame(&ops()[0].encode()).len();
        assert!(!delivered.is_empty(), "some bytes flow before the cut");
        assert!(delivered.len() < first_frame_len, "reset strictly mid-frame");
        // Subsequent reads keep reporting Reset.
        assert_eq!(s.read(999, &mut [0u8; 8]), ReadOutcome::Reset);
    }

    #[test]
    fn ack_stall_fault_rejects_writes_then_recovers() {
        let plan = FaultPlan::new().schedule(2, 3, FaultKind::ConnAckStall { conn: 0 });
        let mut s = SimStream::new(0, &ops(), 7, 8, plan);
        let ack = frame(&[0x00, 1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(s.write(0, &ack), ack.len(), "before the window");
        assert_eq!(s.write(2, &ack), 0, "stalled inside the window");
        assert_eq!(s.write(5, &ack), ack.len(), "window over");
        assert_eq!(s.acks_admitted(), 2);
    }

    #[test]
    fn ack_decoding_counts_split_deliveries_correctly() {
        let mut s = SimStream::new(0, &ops(), 7, 8, FaultPlan::new());
        let mut acks = frame(&[0x00, 9, 0, 0, 0, 0, 0, 0, 0]);
        acks.extend_from_slice(&frame(&[0x01, 3]));
        for b in &acks {
            assert_eq!(s.write(0, std::slice::from_ref(b)), 1);
        }
        assert_eq!(s.acks_admitted(), 1);
        assert_eq!(s.acks_refused(), 1);
    }

    #[test]
    fn sim_clients_shards_users_and_preserves_per_user_order() {
        let engine = WorkloadEngine::new(WorkloadConfig {
            users: 20,
            ops: 200,
            seed: 99,
            ..WorkloadConfig::default()
        });
        let clients = sim_clients(&engine, 6, 1234, 32, &FaultPlan::new());
        assert_eq!(clients.len(), 6);
        let total: usize = clients.iter().map(|c| c.script_len()).sum();
        assert!(total > 0);
        // Same inputs rebuild the same scripts.
        let again = sim_clients(&engine, 6, 1234, 32, &FaultPlan::new());
        for (a, b) in clients.iter().zip(again.iter()) {
            assert_eq!(a.bytes, b.bytes, "conn {} script differs", a.conn());
        }
    }
}
