//! # metaverse-net
//!
//! The network front door for `metaverse-kit`: a zero-dependency,
//! connection-oriented serving layer that frames
//! [`Op`](metaverse_gateway::op::Op)s off byte streams and feeds the
//! deterministic epoch core through the gateway's
//! [`Ingress`](metaverse_gateway::ingress::Ingress) trait. This is the
//! paper's "heavy traffic from millions of users" scenario finally
//! crossing a socket boundary instead of an in-process call.
//!
//! The crate is built around one discipline: **the network is allowed
//! to be nondeterministic, the core is not.** Sockets deliver bytes in
//! arbitrary chunks, clients stall mid-frame, acks back up — and none
//! of it may perturb an audit byte. The pieces:
//!
//! * [`frame`] — a streaming length-prefix decoder that tolerates
//!   frames split at *any* byte boundary (one byte per read is fine);
//! * [`conn`] — the per-connection state machine: decoded-frame inbox,
//!   bounded ack write buffer, backpressure parking tied to the
//!   gateway's token buckets and mailbox bounds, typed close causes;
//! * [`server`] — [`NetServer`], a hand-rolled readiness sweep over
//!   nonblocking streams (no mio/tokio): conns are visited in id
//!   order, admissions feed the [`Ingress`], epoch boundaries fire on
//!   admission pressure or quiescence;
//! * [`journal`] — the **determinism boundary**: every offer (admitted
//!   *and* refused — refusals shape the trace stream too) and every
//!   epoch boundary is recorded in order, so an [`AdmissionJournal`]
//!   replayed offline through any [`Ingress`] reproduces the network
//!   run's audits, traces, and conservation reports byte-for-byte;
//! * [`sim`] — deterministic simulated clients (tens of thousands of
//!   them) with connection-scoped fault hooks: slowloris trickle,
//!   mid-frame disconnect, ack stalls;
//! * [`tcp`] — the same server over real `std::net` nonblocking
//!   sockets.
//!
//! [`Ingress`]: metaverse_gateway::ingress::Ingress
//! [`NetServer`]: server::NetServer
//! [`AdmissionJournal`]: journal::AdmissionJournal

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod journal;
pub mod server;
pub mod sim;
pub mod tcp;

pub use conn::{CloseCause, ConnState, ConnStats, Connection};
pub use frame::{frame, FrameDecoder, FrameError, DEFAULT_MAX_FRAME};
pub use journal::{
    body_digest, AdmissionJournal, JournalEntry, JournalError, OfferOutcome, RefusalCode,
    ReplayReport,
};
pub use server::{ByteStream, NetServer, NetServerConfig, ReadOutcome, ServeReport};
pub use sim::{sim_clients, SimStream};
pub use tcp::TcpFrontDoor;
