//! Streaming frame codec: `u32` little-endian length prefix + payload.
//!
//! The gateway's wire codec ([`Op::encode`]) produces self-contained
//! byte strings; on a stream transport they need delimiting. A frame
//! is `len: u32 LE` followed by exactly `len` payload bytes. The
//! [`FrameDecoder`] is an explicit two-state machine (`Len` → `Body`)
//! fed arbitrary chunks: a frame split anywhere — including inside the
//! 4-byte length prefix, one byte per read — reassembles exactly. The
//! chunked-decode proptests in this crate's test suite drive the E21
//! op stream through random 1 B..64 KiB splits and assert canonical
//! re-encode.
//!
//! [`Op::encode`]: metaverse_gateway::op::Op::encode

use std::fmt;

/// Default upper bound on one frame's payload, in bytes. The largest
/// legal op (a `Propose` whose three strings each hit the codec's
/// 64 KiB string cap) is just under 192 KiB; 256 KiB leaves slack
/// without letting one connection balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024;

/// A malformed or abusive frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the decoder's configured bound — the
    /// connection should be closed, not buffered.
    Oversized {
        /// The advertised payload length.
        len: usize,
        /// The decoder's configured bound.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame: advertised payload {len} exceeds bound {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps a payload in a frame: `u32 LE` length + bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decoder progress: collecting the 4-byte prefix, or the payload it
/// announced.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DecodeState {
    /// Collecting the length prefix; `filled` of 4 bytes present.
    Len { bytes: [u8; 4], filled: usize },
    /// Collecting `want` payload bytes.
    Body { want: usize, buf: Vec<u8> },
}

/// The streaming frame state machine. Feed it chunks of any size;
/// complete frames come out in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDecoder {
    state: DecodeState,
    max_frame: usize,
    frames_decoded: u64,
    bytes_consumed: u64,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new(DEFAULT_MAX_FRAME)
    }
}

impl FrameDecoder {
    /// A fresh decoder refusing payloads larger than `max_frame`.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            state: DecodeState::Len { bytes: [0; 4], filled: 0 },
            max_frame,
            frames_decoded: 0,
            bytes_consumed: 0,
        }
    }

    /// Consumes one chunk, appending every frame it completes to
    /// `out`. A chunk may complete zero frames (short read mid-frame)
    /// or many (a burst covering several). On [`FrameError::Oversized`]
    /// the decoder stops consuming; the connection is expected to be
    /// closed, so remaining chunk bytes are dropped with it.
    pub fn feed(&mut self, mut chunk: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), FrameError> {
        while !chunk.is_empty() {
            match &mut self.state {
                DecodeState::Len { bytes, filled } => {
                    let take = (4 - *filled).min(chunk.len());
                    bytes[*filled..*filled + take].copy_from_slice(&chunk[..take]);
                    *filled += take;
                    chunk = &chunk[take..];
                    self.bytes_consumed += take as u64;
                    if *filled == 4 {
                        let want = u32::from_le_bytes(*bytes) as usize;
                        if want > self.max_frame {
                            return Err(FrameError::Oversized { len: want, max: self.max_frame });
                        }
                        if want == 0 {
                            // A zero-length frame completes immediately
                            // (it will fail op decode downstream, but
                            // the transport layer stays honest).
                            self.frames_decoded += 1;
                            out.push(Vec::new());
                            self.state = DecodeState::Len { bytes: [0; 4], filled: 0 };
                        } else {
                            self.state =
                                DecodeState::Body { want, buf: Vec::with_capacity(want) };
                        }
                    }
                }
                DecodeState::Body { want, buf } => {
                    let take = (*want - buf.len()).min(chunk.len());
                    buf.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    self.bytes_consumed += take as u64;
                    if buf.len() == *want {
                        let frame = std::mem::take(buf);
                        self.frames_decoded += 1;
                        out.push(frame);
                        self.state = DecodeState::Len { bytes: [0; 4], filled: 0 };
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the decoder holds a partially-received frame (any prefix
    /// byte or payload byte without its completion). A peer vanishing
    /// in this state is a mid-frame disconnect.
    pub fn mid_frame(&self) -> bool {
        !matches!(self.state, DecodeState::Len { filled: 0, .. })
    }

    /// Complete frames decoded over this decoder's lifetime.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Bytes consumed over this decoder's lifetime.
    pub fn bytes_consumed(&self) -> u64 {
        self.bytes_consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(decoder: &mut FrameDecoder, chunks: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for chunk in chunks {
            decoder.feed(chunk, &mut out).unwrap();
        }
        out
    }

    #[test]
    fn whole_frames_round_trip() {
        let mut d = FrameDecoder::default();
        let a = frame(b"hello");
        let b = frame(b"");
        let c = frame(&[0xff; 300]);
        let joined: Vec<u8> = [a, b, c].concat();
        let frames = decode_all(&mut d, &[&joined]);
        assert_eq!(frames, vec![b"hello".to_vec(), Vec::new(), vec![0xff; 300]]);
        assert_eq!(d.frames_decoded(), 3);
        assert_eq!(d.bytes_consumed(), joined.len() as u64);
        assert!(!d.mid_frame());
    }

    #[test]
    fn one_byte_at_a_time_reassembles_exactly() {
        let mut d = FrameDecoder::default();
        let payload = b"split me anywhere".to_vec();
        let bytes = frame(&payload);
        let mut out = Vec::new();
        for (i, b) in bytes.iter().enumerate() {
            d.feed(std::slice::from_ref(b), &mut out).unwrap();
            // Mid-frame at every step except after the last byte.
            assert_eq!(d.mid_frame(), i + 1 < bytes.len(), "byte {i}");
        }
        assert_eq!(out, vec![payload]);
    }

    #[test]
    fn split_inside_the_length_prefix_is_fine() {
        let mut d = FrameDecoder::default();
        let bytes = frame(b"abc");
        let frames = decode_all(&mut d, &[&bytes[..2], &bytes[2..5], &bytes[5..]]);
        assert_eq!(frames, vec![b"abc".to_vec()]);
    }

    #[test]
    fn one_chunk_may_complete_many_frames_and_start_another() {
        let mut d = FrameDecoder::default();
        let mut joined = Vec::new();
        for payload in [b"a".as_slice(), b"bb", b"ccc"] {
            joined.extend_from_slice(&frame(payload));
        }
        joined.extend_from_slice(&frame(b"dangling")[..6]);
        let frames = decode_all(&mut d, &[&joined]);
        assert_eq!(frames.len(), 3);
        assert!(d.mid_frame(), "fourth frame is in flight");
    }

    #[test]
    fn oversized_prefix_is_refused_without_buffering() {
        let mut d = FrameDecoder::new(64);
        let mut out = Vec::new();
        let bytes = frame(&[0u8; 65]);
        let err = d.feed(&bytes, &mut out).unwrap_err();
        assert_eq!(err, FrameError::Oversized { len: 65, max: 64 });
        assert!(out.is_empty());
    }

    /// Boundary regression: a payload of exactly `max_frame` bytes is
    /// legal and reassembles; `max_frame + 1` is refused with the typed
    /// error — no panic, no silent truncation — and both behaviours
    /// hold however adversarially the frame is split, including one
    /// byte at a time through the length prefix.
    #[test]
    fn oversize_guard_boundary_exact_max_accepted_max_plus_one_refused() {
        const MAX: usize = 64;
        let exact = frame(&[0xab; MAX]);
        let over = frame(&[0xcd; MAX + 1]);
        // Splits that isolate every prefix byte, land on the guard
        // decision point (offset 4), and cut mid-payload.
        let split_points: &[&[usize]] = &[
            &[],
            &[1],
            &[1, 2, 3],
            &[1, 2, 3, 4],
            &[4],
            &[3, 5],
            &[2, 4, MAX / 2],
        ];
        for points in split_points {
            let chunk = |bytes: &[u8]| -> Vec<Vec<u8>> {
                let mut cuts = vec![0];
                cuts.extend(points.iter().copied().filter(|p| *p < bytes.len()));
                cuts.push(bytes.len());
                cuts.windows(2).map(|w| bytes[w[0]..w[1]].to_vec()).collect()
            };

            let mut d = FrameDecoder::new(MAX);
            let mut out = Vec::new();
            for c in chunk(&exact) {
                d.feed(&c, &mut out).unwrap();
            }
            assert_eq!(out, vec![vec![0xab; MAX]], "exact-max frame at splits {points:?}");
            assert!(!d.mid_frame());

            let mut d = FrameDecoder::new(MAX);
            let mut out = Vec::new();
            let mut err = None;
            for c in chunk(&over) {
                if let Err(e) = d.feed(&c, &mut out) {
                    err = Some(e);
                    break;
                }
            }
            assert_eq!(
                err,
                Some(FrameError::Oversized { len: MAX + 1, max: MAX }),
                "max+1 frame at splits {points:?}"
            );
            assert!(out.is_empty(), "refused frame leaked payload at splits {points:?}");
        }
    }

    /// The guard fires the moment the fourth prefix byte arrives, even
    /// when the chunk carries nothing else — an attacker cannot make
    /// the decoder buffer anything by withholding the payload.
    #[test]
    fn oversize_guard_fires_on_the_prefix_alone() {
        let mut d = FrameDecoder::new(16);
        let mut out = Vec::new();
        let prefix = (17u32).to_le_bytes();
        for b in &prefix[..3] {
            d.feed(std::slice::from_ref(b), &mut out).unwrap();
        }
        let err = d.feed(&prefix[3..], &mut out).unwrap_err();
        assert_eq!(err, FrameError::Oversized { len: 17, max: 16 });
        assert!(out.is_empty());
    }

    #[test]
    fn zero_length_frames_complete_without_a_body_state() {
        let mut d = FrameDecoder::default();
        let frames = decode_all(&mut d, &[&frame(b""), &frame(b"x")]);
        assert_eq!(frames, vec![Vec::new(), b"x".to_vec()]);
    }
}
