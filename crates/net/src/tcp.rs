//! Real sockets: the same server over `std::net` nonblocking TCP.
//!
//! No mio, no tokio — [`TcpFrontDoor`] is a nonblocking
//! [`TcpListener`] whose accepted [`TcpStream`]s plug straight into
//! [`NetServer`] through the [`ByteStream`] impl below. The server's
//! sweep loop *is* the event loop: a `WouldBlock` read or write simply
//! yields until the next sweep, exactly like a simulated stream with
//! nothing to deliver.
//!
//! The determinism story is unchanged: a TCP-driven run is as
//! nondeterministic as the kernel wants to be, and the admission
//! journal still captures the exact ingress sequence, so the run
//! replays offline byte-for-byte.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use crate::server::{ByteStream, NetServer, ReadOutcome};
use metaverse_gateway::ingress::Ingress;

impl ByteStream for TcpStream {
    fn read(&mut self, _now: u64, buf: &mut [u8]) -> ReadOutcome {
        match Read::read(self, buf) {
            Ok(0) => ReadOutcome::Closed,
            Ok(n) => ReadOutcome::Data(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => ReadOutcome::WouldBlock,
            Err(e) if e.kind() == ErrorKind::Interrupted => ReadOutcome::WouldBlock,
            Err(e)
                if e.kind() == ErrorKind::ConnectionReset
                    || e.kind() == ErrorKind::ConnectionAborted
                    || e.kind() == ErrorKind::BrokenPipe =>
            {
                ReadOutcome::Reset
            }
            Err(_) => ReadOutcome::Reset,
        }
    }

    fn write(&mut self, _now: u64, bytes: &[u8]) -> usize {
        match Write::write(self, bytes) {
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => 0,
            // A write-side failure surfaces on the next read as Reset;
            // report no progress here.
            Err(_) => 0,
        }
    }
}

/// A nonblocking TCP acceptor feeding a [`NetServer`].
#[derive(Debug)]
pub struct TcpFrontDoor {
    listener: TcpListener,
}

impl TcpFrontDoor {
    /// Binds and switches the listener to nonblocking mode.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpFrontDoor { listener })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts every connection currently pending, registering each
    /// (nonblocking) with the server. Returns how many were accepted.
    pub fn poll_accept<I: Ingress>(
        &self,
        server: &mut NetServer<I, TcpStream>,
    ) -> std::io::Result<usize> {
        let mut accepted = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(true)?;
                    stream.set_nodelay(true).ok();
                    server.accept(stream);
                    accepted += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame;
    use crate::server::NetServerConfig;
    use metaverse_gateway::op::Op;
    use metaverse_gateway::router::{GatewayConfig, ShardRouter};

    /// Sandboxes may deny binding; these tests skip rather than fail
    /// when no loopback socket is available.
    fn try_bind() -> Option<TcpFrontDoor> {
        TcpFrontDoor::bind("127.0.0.1:0").ok()
    }

    #[test]
    fn loopback_clients_flow_through_the_front_door() {
        let Some(door) = try_bind() else {
            eprintln!("skipping: cannot bind loopback in this environment");
            return;
        };
        let addr = door.local_addr().unwrap();
        let mut server = NetServer::new(
            ShardRouter::new(GatewayConfig::builder().shards(2).key_tree_depth(6).build()),
            NetServerConfig::default(),
        );

        let clients: Vec<std::thread::JoinHandle<usize>> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let user = format!("user-{i}");
                    let mut script = frame(&Op::Register { user: user.clone() }.encode());
                    script.extend_from_slice(&frame(
                        &Op::Endorse { user: user.clone(), subject: user }.encode(),
                    ));
                    Write::write_all(&mut stream, &script).unwrap();
                    // Half-close the write side so the server sees EOF,
                    // then drain acks until the server closes.
                    stream.shutdown(std::net::Shutdown::Write).unwrap();
                    let mut acks = Vec::new();
                    let mut buf = [0u8; 256];
                    loop {
                        match Read::read(&mut stream, &mut buf) {
                            Ok(0) => break,
                            Ok(n) => acks.extend_from_slice(&buf[..n]),
                            Err(_) => break,
                        }
                    }
                    acks.len()
                })
            })
            .collect();

        // Accept until all four clients have registered, then serve.
        let mut tries = 0;
        while server.conn_count() < 4 {
            door.poll_accept(&mut server).unwrap();
            tries += 1;
            assert!(tries < 50_000, "clients never connected");
            std::thread::yield_now();
        }
        let report = server.run_to_completion();
        assert!(!report.stalled);
        assert_eq!(report.admitted, 8, "{report:?}");
        assert!(server.ingress().conservation_report().conserved);

        // Connections are gone server-side; dropping the server closes
        // the sockets and unblocks any client still reading.
        drop(server);
        for c in clients {
            let ack_bytes = c.join().unwrap();
            // Each client gets two 13-byte framed admission acks.
            assert_eq!(ack_bytes, 26);
        }
    }

    #[test]
    fn journal_from_a_tcp_run_replays_offline() {
        let Some(door) = try_bind() else {
            eprintln!("skipping: cannot bind loopback in this environment");
            return;
        };
        let addr = door.local_addr().unwrap();
        let config = GatewayConfig::builder().shards(2).key_tree_depth(6).build();
        let mut server =
            NetServer::new(ShardRouter::new(config.clone()), NetServerConfig::default());
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut script = frame(&Op::Register { user: "tcp-user".into() }.encode());
            script.extend_from_slice(&frame(
                &Op::Mint {
                    user: "tcp-user".into(),
                    asset: 0,
                    uri: "ipfs://relic".into(),
                    quality: 0.9,
                }
                .encode(),
            ));
            Write::write_all(&mut stream, &script).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = Read::read_to_end(&mut stream, &mut sink);
        });
        let mut tries = 0;
        while server.conn_count() < 1 {
            door.poll_accept(&mut server).unwrap();
            tries += 1;
            assert!(tries < 50_000, "client never connected");
            std::thread::yield_now();
        }
        let report = server.run_to_completion();
        assert_eq!(report.admitted, 2);
        let (live, journal) = server.into_parts();
        client.join().unwrap();

        let mut offline = ShardRouter::new(config);
        let replay = journal.replay_into(&mut offline);
        assert_eq!(replay.divergences, 0);
        assert_eq!(
            format!("{:?}", offline.conservation_report()),
            format!("{:?}", live.conservation_report()),
            "offline replay reproduces the audit"
        );
    }
}
