//! Per-connection state: decoded-frame inbox, ack write buffer,
//! backpressure parking, and typed close causes.
//!
//! A [`Connection`] owns everything the server knows about one client
//! except the byte stream itself: the streaming [`FrameDecoder`], the
//! inbox of decoded-but-not-yet-admitted frames, the outbound ack
//! buffer, and the lifecycle state. The server sweeps connections in id
//! order; all per-connection bookkeeping lives here so the sweep stays
//! a straight-line loop.
//!
//! ## Ack protocol
//!
//! Every journaled offer earns exactly one framed ack back to the
//! client: `[0x00, seq: u64 LE]` for an admission, `[0x01, code]` for a
//! refusal (codes from [`RefusalCode`]). Acks queue in a bounded write
//! buffer; when a client stops draining it, the server stops reading
//! from that client — backpressure propagates to the socket instead of
//! ballooning memory.
//!
//! [`RefusalCode`]: crate::journal::RefusalCode

use std::collections::VecDeque;

use crate::frame::{frame, FrameDecoder};
use crate::journal::RefusalCode;

/// Why a connection reached [`ConnState::Closed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseCause {
    /// The peer shut down cleanly at a frame boundary and every decoded
    /// op was offered.
    Finished,
    /// The peer reset the connection at a frame boundary.
    PeerReset,
    /// The peer vanished with a partial frame in the decoder — the
    /// fragment is discarded, already-decoded ops still drain.
    MidFrameDisconnect,
    /// The peer advertised a frame beyond the server's bound.
    OversizedFrame,
    /// Admission reported a permanent stall (a rate limiter that will
    /// never refill), so waiting is pointless.
    AdmissionStalled,
}

impl CloseCause {
    /// Stable lowercase label for traces and metrics.
    pub fn label(self) -> &'static str {
        match self {
            CloseCause::Finished => "finished",
            CloseCause::PeerReset => "peer_reset",
            CloseCause::MidFrameDisconnect => "mid_frame_disconnect",
            CloseCause::OversizedFrame => "oversized_frame",
            CloseCause::AdmissionStalled => "admission_stalled",
        }
    }
}

/// Connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Reading, decoding, offering.
    Open,
    /// The peer is gone; the inbox and write buffer still drain.
    Draining,
    /// Done, with a cause. Terminal.
    Closed(CloseCause),
}

/// Monotonic per-connection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Bytes read off the stream.
    pub bytes_read: u64,
    /// Bytes written back (acks).
    pub bytes_written: u64,
    /// Complete frames decoded.
    pub frames: u64,
    /// Offers admitted by the ingress.
    pub admitted: u64,
    /// Offers refused by the ingress.
    pub refused: u64,
    /// Times this connection was parked for backpressure.
    pub parks: u64,
}

/// One client connection's server-side state.
#[derive(Debug)]
pub struct Connection {
    id: u64,
    decoder: FrameDecoder,
    inbox: VecDeque<Vec<u8>>,
    write_buf: VecDeque<u8>,
    parked_until: u64,
    state: ConnState,
    stats: ConnStats,
}

impl Connection {
    /// A fresh open connection with the given id and frame bound.
    pub fn new(id: u64, max_frame: usize) -> Self {
        Connection {
            id,
            decoder: FrameDecoder::new(max_frame),
            inbox: VecDeque::new(),
            write_buf: VecDeque::new(),
            parked_until: 0,
            state: ConnState::Open,
            stats: ConnStats::default(),
        }
    }

    /// This connection's id (its slot in the server's table, and the
    /// `seq` field on its net trace events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the connection is fully closed.
    pub fn is_closed(&self) -> bool {
        matches!(self.state, ConnState::Closed(_))
    }

    /// Counters so far.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// The streaming decoder (exposed for mid-frame inspection).
    pub fn decoder(&self) -> &FrameDecoder {
        &self.decoder
    }

    /// Mutable decoder access for the server's read path.
    pub(crate) fn decoder_mut(&mut self) -> &mut FrameDecoder {
        &mut self.decoder
    }

    /// Decoded frames awaiting admission.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Pushes a decoded frame onto the inbox.
    pub(crate) fn push_frame(&mut self, bytes: Vec<u8>) {
        self.stats.frames += 1;
        self.inbox.push_back(bytes);
    }

    /// Next frame to offer, if any.
    pub(crate) fn pop_frame(&mut self) -> Option<Vec<u8>> {
        self.inbox.pop_front()
    }

    /// Returns a frame to the head of the inbox (offer deferred by a
    /// park — it must stay first so admission order is stable).
    pub(crate) fn unpop_frame(&mut self, bytes: Vec<u8>) {
        self.inbox.push_front(bytes);
    }

    /// Drops every queued frame (connection reset: the peer will never
    /// see acks, so pending work is abandoned).
    pub(crate) fn clear_inbox(&mut self) {
        self.inbox.clear();
    }

    /// Whether offers are paused until `parked_until`.
    pub fn parked(&self, now: u64) -> bool {
        now < self.parked_until
    }

    /// Parks offers until the given sweep tick.
    pub(crate) fn park_until(&mut self, tick: u64) {
        self.stats.parks += 1;
        self.parked_until = tick;
    }

    /// Queues an admission ack (`[0x00, seq LE]`, framed).
    pub(crate) fn queue_ack(&mut self, seq: u64) {
        let mut payload = [0u8; 9];
        payload[1..].copy_from_slice(&seq.to_le_bytes());
        self.write_buf.extend(frame(&payload));
        self.stats.admitted += 1;
    }

    /// Queues a refusal ack (`[0x01, code]`, framed).
    pub(crate) fn queue_refusal(&mut self, code: RefusalCode) {
        self.write_buf.extend(frame(&[0x01, code.code()]));
        self.stats.refused += 1;
    }

    /// Queues an arbitrary payload (framed) — the stats-reply path.
    /// Unlike acks, a payload bumps no admission counter: it answers
    /// an admin frame, not an op.
    pub(crate) fn queue_payload(&mut self, payload: &[u8]) {
        self.write_buf.extend(frame(payload));
    }

    /// Unflushed ack bytes.
    pub fn write_buf_len(&self) -> usize {
        self.write_buf.len()
    }

    /// Up to `max` pending ack bytes as a contiguous slice for one
    /// stream write.
    pub(crate) fn write_head(&mut self, max: usize) -> Vec<u8> {
        let take = self.write_buf.len().min(max);
        self.write_buf.iter().take(take).copied().collect()
    }

    /// Discards `n` flushed bytes from the front of the write buffer.
    pub(crate) fn consume_written(&mut self, n: usize) {
        self.stats.bytes_written += n as u64;
        self.write_buf.drain(..n);
    }

    /// Drops unflushed acks (peer reset — nobody is listening).
    pub(crate) fn clear_write_buf(&mut self) {
        self.write_buf.clear();
    }

    /// Credits bytes read off the stream.
    pub(crate) fn note_read(&mut self, n: usize) {
        self.stats.bytes_read += n as u64;
    }

    /// Moves to [`ConnState::Draining`]: the peer is gone but decoded
    /// work still flows.
    pub(crate) fn start_draining(&mut self) {
        if matches!(self.state, ConnState::Open) {
            self.state = ConnState::Draining;
        }
    }

    /// Terminal transition (idempotent; the first cause wins).
    pub(crate) fn close(&mut self, cause: CloseCause) {
        if !self.is_closed() {
            self.state = ConnState::Closed(cause);
        }
    }

    /// Whether the server still has anything to do for this
    /// connection: undelivered acks or unoffered frames.
    pub fn has_pending_work(&self) -> bool {
        !self.inbox.is_empty() || !self.write_buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DEFAULT_MAX_FRAME;

    #[test]
    fn lifecycle_first_close_cause_wins() {
        let mut c = Connection::new(3, DEFAULT_MAX_FRAME);
        assert_eq!(c.state(), ConnState::Open);
        c.start_draining();
        assert_eq!(c.state(), ConnState::Draining);
        c.close(CloseCause::MidFrameDisconnect);
        c.close(CloseCause::Finished);
        assert_eq!(c.state(), ConnState::Closed(CloseCause::MidFrameDisconnect));
        // Draining after close is a no-op.
        c.start_draining();
        assert!(c.is_closed());
    }

    #[test]
    fn inbox_preserves_offer_order_across_a_park() {
        let mut c = Connection::new(0, DEFAULT_MAX_FRAME);
        c.push_frame(b"first".to_vec());
        c.push_frame(b"second".to_vec());
        let head = c.pop_frame().unwrap();
        assert_eq!(head, b"first");
        c.unpop_frame(head);
        c.park_until(5);
        assert!(c.parked(4));
        assert!(!c.parked(5));
        assert_eq!(c.pop_frame().unwrap(), b"first", "park must not reorder");
        assert_eq!(c.stats().parks, 1);
    }

    #[test]
    fn acks_are_framed_and_flushed_incrementally() {
        let mut c = Connection::new(0, DEFAULT_MAX_FRAME);
        c.queue_ack(0x0102030405060708);
        c.queue_refusal(RefusalCode::RateLimited);
        // Admission ack: 4-byte prefix + 9-byte payload; refusal: 4 + 2.
        assert_eq!(c.write_buf_len(), 13 + 6);
        let head = c.write_head(5);
        assert_eq!(head, vec![9, 0, 0, 0, 0x00]);
        c.consume_written(5);
        assert_eq!(c.write_buf_len(), 14);
        // Remaining admission payload is the LE seq.
        let rest = c.write_head(8);
        assert_eq!(rest, vec![0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        c.consume_written(8);
        assert_eq!(c.write_head(6), vec![2, 0, 0, 0, 0x01, RefusalCode::RateLimited.code()]);
        assert_eq!(c.stats().admitted, 1);
        assert_eq!(c.stats().refused, 1);
    }

    #[test]
    fn pending_work_tracks_inbox_and_write_buffer() {
        let mut c = Connection::new(0, DEFAULT_MAX_FRAME);
        assert!(!c.has_pending_work());
        c.push_frame(b"x".to_vec());
        assert!(c.has_pending_work());
        c.pop_frame();
        c.queue_ack(1);
        assert!(c.has_pending_work());
        c.consume_written(c.write_buf_len());
        assert!(!c.has_pending_work());
        c.push_frame(b"y".to_vec());
        c.clear_inbox();
        assert!(!c.has_pending_work());
    }
}
