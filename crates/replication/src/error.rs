//! Typed replication failures.

/// Why a block could not be quorum-committed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplicationError {
    /// No reachable node could take leadership: every validator in the
    /// cluster is crashed or partitioned at the commit tick.
    NoLeader {
        /// Shard whose cluster failed.
        shard: u32,
        /// Chain height of the block awaiting replication.
        height: u64,
    },
    /// A leader proposed the block but fewer than a majority of nodes
    /// acked it. The entry stays in the live logs and is implicitly
    /// committed by the next block that does reach quorum.
    QuorumLost {
        /// Shard whose cluster failed.
        shard: u32,
        /// Chain height of the block that missed quorum.
        height: u64,
        /// Acks gathered (leader included).
        acks: u32,
        /// Majority threshold that was missed.
        needed: u32,
    },
}

impl std::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationError::NoLeader { shard, height } => write!(
                f,
                "replication: no reachable validator can lead shard {shard} for height {height}"
            ),
            ReplicationError::QuorumLost { shard, height, acks, needed } => write!(
                f,
                "replication: shard {shard} height {height} gathered {acks}/{needed} acks"
            ),
        }
    }
}

impl std::error::Error for ReplicationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shard_and_height() {
        let e = ReplicationError::NoLeader { shard: 2, height: 9 };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("height 9"));
        let e = ReplicationError::QuorumLost { shard: 0, height: 4, acks: 1, needed: 2 };
        assert!(e.to_string().contains("1/2 acks"), "{e}");
    }
}
