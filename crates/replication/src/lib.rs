//! # metaverse-replication
//!
//! Quorum-commit replication of the per-shard ledger across N simulated
//! validator nodes.
//!
//! The paper grounds metaverse governance transparency in a ledger
//! (§II-D), but a single proof-of-authority chain instance is a single
//! point of failure: one crash loses the transparency substrate the
//! accountability claims rest on. This crate runs each shard's chain of
//! sealed blocks through a raft-like replication protocol:
//!
//! * the cluster **leader** proposes every sealed block to its follower
//!   validators;
//! * reachable followers append the entry to their replicated logs and
//!   **ack**;
//! * the block is **quorum-committed** once a majority of the cluster
//!   (leader included) holds it;
//! * when the leader is unreachable, leadership **rotates
//!   deterministically** to the most up-to-date reachable node and the
//!   election delay is charged to the in-flight commit;
//! * recovered validators **catch up** by copying the log suffix they
//!   missed.
//!
//! Everything is driven by the platform's logical tick clock and the
//! deterministic [`metaverse_resilience::FaultInjector`] — no wall
//! clock, no RNG, no threads, zero new dependencies. Replication is a
//! pure *observational overlay* on the chain: it never mutates chain or
//! platform state and never advances the platform clock (failover
//! latency is reported in the [`cluster::CommitCertificate`], in ticks,
//! not enacted on the clock), which is what keeps conservation audits
//! and op trace streams byte-identical between faulted and fault-free
//! runs.
//!
//! ## Quick example
//!
//! ```
//! use metaverse_ledger::Digest;
//! use metaverse_replication::{ReplicationCluster, ReplicationConfig};
//!
//! let mut cluster = ReplicationCluster::new(0, ReplicationConfig::default());
//! let cert = cluster.replicate(1, Digest([0xab; 32]), 10).unwrap();
//! assert_eq!(cert.acks, 3, "all three validators hold the block");
//! assert_eq!(cert.failover_ticks, 0, "no faults, no election");
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod error;

pub use cluster::{CommitCertificate, LogEntry, ReplicationCluster, ReplicationStats, ValidatorNode};
pub use config::ReplicationConfig;
pub use error::ReplicationError;
