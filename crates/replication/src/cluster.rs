//! The per-shard validator cluster and its quorum-commit protocol.

use crate::config::ReplicationConfig;
use crate::error::ReplicationError;
use metaverse_ledger::{Digest, Tick};
use metaverse_resilience::{FaultInjector, FaultPlan};
use metaverse_telemetry::{FlightRecorder, TraceEvent, TraceStage};

/// One replicated log entry: a sealed block's identity, stamped with
/// the term under which it was proposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Chain height of the sealed block.
    pub height: u64,
    /// Header digest of the sealed block.
    pub digest: Digest,
    /// Leader term that proposed the entry.
    pub term: u64,
}

/// One simulated validator node: an identity plus its replicated log.
///
/// A node holds no clock and no RNG; whether it is reachable at a given
/// tick is answered entirely by the cluster's [`FaultInjector`], so the
/// same fault plan always produces the same cluster behaviour.
#[derive(Debug, Clone)]
pub struct ValidatorNode {
    id: String,
    log: Vec<LogEntry>,
}

impl ValidatorNode {
    fn new(shard: u32, index: usize) -> Self {
        ValidatorNode { id: format!("s{shard}-v{index}"), log: Vec::new() }
    }

    /// Stable identity, the target vocabulary of validator-scoped
    /// faults: `s<shard>-v<index>`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The node's replicated log, oldest first.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }
}

/// Proof that one block reached quorum commit, with the latency story
/// attached. Returned by [`ReplicationCluster::replicate`]; purely
/// informational — nothing downstream branches on it, which is what
/// keeps faulted runs byte-identical to fault-free ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitCertificate {
    /// Shard whose cluster committed.
    pub shard: u32,
    /// Committed chain height.
    pub height: u64,
    /// Leader term at commit.
    pub term: u64,
    /// Committing leader's node index.
    pub leader: u32,
    /// Acks gathered, leader included.
    pub acks: u32,
    /// Majority threshold that was met.
    pub quorum: u32,
    /// Ticks from proposal to quorum, election delay included.
    pub commit_latency_ticks: u64,
    /// Election delay charged to this commit (0 without failover).
    pub failover_ticks: u64,
    /// Leader elections performed during this commit.
    pub elections: u32,
}

/// Lifetime protocol counters for one cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Blocks proposed by leaders.
    pub blocks_proposed: u64,
    /// Blocks that reached quorum commit.
    pub blocks_committed: u64,
    /// Follower acks delivered to leaders.
    pub acks_delivered: u64,
    /// Follower acks lost to crashes, partitions, or drops.
    pub acks_lost: u64,
    /// Leader elections forced by an unreachable leader.
    pub leader_elections: u64,
    /// Log-suffix catch-ups performed by recovered validators.
    pub catch_ups: u64,
}

/// One shard's replication cluster: N validator nodes, a leader, a
/// term counter, and the fault oracle that decides who is reachable.
///
/// All scheduling is in logical tick time. `replicate` is called once
/// per sealed block from the shard's epoch-commit path; the cluster
/// answers with a [`CommitCertificate`] or a typed error, and leaves a
/// deterministic [`TraceEvent`] stream behind (seq = chain height) when
/// tracing is enabled.
#[derive(Debug)]
pub struct ReplicationCluster {
    shard: u32,
    config: ReplicationConfig,
    nodes: Vec<ValidatorNode>,
    leader: usize,
    term: u64,
    injector: FaultInjector,
    stats: ReplicationStats,
    recorder: FlightRecorder,
}

impl ReplicationCluster {
    /// A healthy cluster of `config.validators` nodes (at least one)
    /// for `shard`, node 0 leading at term 0, with no faults installed
    /// and tracing disabled.
    pub fn new(shard: u32, config: ReplicationConfig) -> Self {
        let n = config.validators.max(1);
        ReplicationCluster {
            shard,
            config,
            nodes: (0..n).map(|i| ValidatorNode::new(shard, i)).collect(),
            leader: 0,
            term: 0,
            injector: FaultInjector::default(),
            stats: ReplicationStats::default(),
            recorder: FlightRecorder::disabled(),
        }
    }

    /// Installs (replaces) the validator-fault schedule this cluster
    /// replays. Target node ids are `s<shard>-v<index>`.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = plan.injector();
    }

    /// Enables the replication trace stream, ring-bounded at
    /// `capacity` events (0 disables it again).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.recorder = FlightRecorder::new(capacity);
    }

    /// Removes and returns the recorded replication events, oldest
    /// first. Event `seq` is the chain height; `epoch` is left 0 for
    /// the caller (the gateway stamps its router epoch at drain time).
    pub fn drain_events(&mut self) -> Vec<TraceEvent> {
        self.recorder.drain()
    }

    /// Lifetime protocol counters.
    pub fn stats(&self) -> ReplicationStats {
        self.stats
    }

    /// Current leader's node index.
    pub fn leader(&self) -> usize {
        self.leader
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Majority threshold for this cluster.
    pub fn quorum(&self) -> usize {
        self.nodes.len() / 2 + 1
    }

    /// The validator nodes, in index order.
    pub fn nodes(&self) -> &[ValidatorNode] {
        &self.nodes
    }

    /// Whether every node that is reachable at `tick` holds the same
    /// log as the leader (the cluster-wide consistency check the
    /// proptests lean on; unreachable nodes are allowed to lag — they
    /// catch up on recovery).
    pub fn reachable_logs_consistent(&self, tick: Tick) -> bool {
        let leader_log = &self.nodes[self.leader].log;
        self.nodes
            .iter()
            .filter(|n| !self.injector.validator_unreachable(tick, &n.id))
            .all(|n| n.log.len() <= leader_log.len() && n.log == leader_log[..n.log.len()])
    }

    fn unreachable(&self, index: usize, tick: Tick) -> bool {
        self.injector.validator_unreachable(tick, &self.nodes[index].id)
    }

    fn record(&mut self, seq: u64, tick: Tick, stage: TraceStage) {
        self.recorder.record(TraceEvent { seq, epoch: 0, tick, stage });
    }

    /// Elects the most up-to-date reachable node, scanning round-robin
    /// from the current leader so rotation order is deterministic.
    fn elect(&mut self, height: u64, tick: Tick) -> Result<(), ReplicationError> {
        let n = self.nodes.len();
        let mut best: Option<usize> = None;
        for offset in 1..=n {
            let candidate = (self.leader + offset) % n;
            if self.unreachable(candidate, tick) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => self.nodes[candidate].log.len() > self.nodes[b].log.len(),
            };
            if better {
                best = Some(candidate);
            }
        }
        let Some(new_leader) = best else {
            return Err(ReplicationError::NoLeader { shard: self.shard, height });
        };
        self.leader = new_leader;
        self.term += 1;
        self.stats.leader_elections += 1;
        let stage = TraceStage::LeaderElected {
            shard: self.shard,
            term: self.term,
            leader: new_leader as u32,
            failover_ticks: self.config.election_timeout,
        };
        self.record(height, tick, stage);
        Ok(())
    }

    /// Replicates one sealed block across the cluster at `tick`.
    ///
    /// The full round happens logically at this tick: failover if the
    /// leader is unreachable, catch-up for lagging reachable nodes,
    /// proposal, acks, and the quorum decision. Latencies (ack delays,
    /// election timeouts) are *accounted* on the certificate rather
    /// than awaited — the caller's clock never moves, so replication
    /// cannot perturb the platform's deterministic schedule.
    ///
    /// On [`ReplicationError::QuorumLost`] the proposed entry stays in
    /// the live logs; the next block that reaches quorum implicitly
    /// commits it (standard raft prefix semantics).
    pub fn replicate(
        &mut self,
        height: u64,
        digest: Digest,
        tick: Tick,
    ) -> Result<CommitCertificate, ReplicationError> {
        let n = self.nodes.len();
        let quorum = self.quorum();
        let mut failover_ticks = 0u64;
        let mut elections = 0u32;
        if self.unreachable(self.leader, tick) {
            self.elect(height, tick)?;
            failover_ticks = failover_ticks.saturating_add(self.config.election_timeout);
            elections += 1;
        }

        // Recovered (reachable but lagging) nodes copy the suffix they
        // missed before the new proposal lands.
        let leader_log = self.nodes[self.leader].log.clone();
        for i in 0..n {
            if i == self.leader || self.unreachable(i, tick) {
                continue;
            }
            let node = &mut self.nodes[i];
            if node.log.len() < leader_log.len() {
                node.log.extend_from_slice(&leader_log[node.log.len()..]);
                self.stats.catch_ups += 1;
            }
        }

        let entry = LogEntry { height, digest, term: self.term };
        self.nodes[self.leader].log.push(entry);
        self.stats.blocks_proposed += 1;
        let proposal = TraceStage::BlockProposed {
            shard: self.shard,
            height,
            term: self.term,
            leader: self.leader as u32,
        };
        self.record(height, tick, proposal);

        // The leader's own ack is instant; followers answer in
        // deterministic rotation order from the leader.
        let mut acks = 1u32;
        let mut latencies = vec![0u64];
        for offset in 1..n {
            let i = (self.leader + offset) % n;
            if self.unreachable(i, tick) {
                self.stats.acks_lost += 1;
                continue;
            }
            self.nodes[i].log.push(entry);
            if self.injector.ack_dropped(tick, &self.nodes[i].id) {
                self.stats.acks_lost += 1;
                continue;
            }
            let delay = self.injector.ack_delay(tick, &self.nodes[i].id).unwrap_or(0);
            let latency = self.config.ack_latency.saturating_add(delay);
            acks += 1;
            latencies.push(latency);
            self.stats.acks_delivered += 1;
            let ack = TraceStage::AckReceived {
                shard: self.shard,
                height,
                node: i as u32,
                latency_ticks: latency,
            };
            self.record(height, tick, ack);
        }

        if (acks as usize) < quorum {
            return Err(ReplicationError::QuorumLost {
                shard: self.shard,
                height,
                acks,
                needed: quorum as u32,
            });
        }
        latencies.sort_unstable();
        let commit_latency = failover_ticks.saturating_add(latencies[quorum - 1]);
        self.stats.blocks_committed += 1;
        let committed = TraceStage::QuorumCommitted {
            shard: self.shard,
            height,
            acks,
            latency_ticks: commit_latency,
        };
        self.record(height, tick, committed);
        Ok(CommitCertificate {
            shard: self.shard,
            height,
            term: self.term,
            leader: self.leader as u32,
            acks,
            quorum: quorum as u32,
            commit_latency_ticks: commit_latency,
            failover_ticks,
            elections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_resilience::FaultKind;
    use metaverse_telemetry::export::trace_jsonl;

    fn cluster() -> ReplicationCluster {
        ReplicationCluster::new(0, ReplicationConfig::default())
    }

    #[test]
    fn healthy_cluster_commits_with_full_acks() {
        let mut c = cluster();
        let cert = c.replicate(1, Digest([1; 32]), 10).unwrap();
        assert_eq!(cert.acks, 3);
        assert_eq!(cert.quorum, 2);
        assert_eq!(cert.leader, 0);
        assert_eq!(cert.term, 0);
        assert_eq!(cert.commit_latency_ticks, 1, "baseline ack latency");
        assert_eq!(cert.failover_ticks, 0);
        assert!(c.reachable_logs_consistent(10));
        assert!(c.nodes().iter().all(|n| n.log().len() == 1));
        let stats = c.stats();
        assert_eq!(stats.blocks_committed, 1);
        assert_eq!(stats.acks_delivered, 2);
        assert_eq!(stats.acks_lost, 0);
    }

    #[test]
    fn leader_crash_fails_over_within_one_election() {
        let mut c = cluster();
        c.replicate(1, Digest([1; 32]), 0).unwrap();
        c.install_fault_plan(
            FaultPlan::new().schedule(5, 10, FaultKind::ValidatorCrash { validator: "s0-v0".into() }),
        );
        let cert = c.replicate(2, Digest([2; 32]), 6).unwrap();
        assert_eq!(cert.leader, 1, "rotates to the next live node");
        assert_eq!(cert.term, 1);
        assert_eq!(cert.elections, 1);
        assert_eq!(cert.failover_ticks, 4, "one election timeout");
        assert_eq!(cert.commit_latency_ticks, 4 + 1);
        assert_eq!(cert.acks, 2, "old leader is down");
        assert_eq!(c.stats().leader_elections, 1);
        // The crashed node recovers with its log and catches up on the
        // next round.
        let cert = c.replicate(3, Digest([3; 32]), 20).unwrap();
        assert_eq!(cert.acks, 3);
        assert_eq!(c.stats().catch_ups, 1);
        assert!(c.nodes().iter().all(|n| n.log().len() == 3), "recovered node caught up");
        assert!(c.reachable_logs_consistent(20));
    }

    #[test]
    fn follower_partition_still_reaches_quorum() {
        let mut c = cluster();
        c.install_fault_plan(FaultPlan::new().schedule(
            0,
            100,
            FaultKind::ValidatorPartition { validator: "s0-v2".into() },
        ));
        let cert = c.replicate(1, Digest([1; 32]), 1).unwrap();
        assert_eq!(cert.acks, 2);
        assert_eq!(cert.leader, 0, "leader unaffected");
        assert_eq!(c.stats().acks_lost, 1);
        assert_eq!(c.nodes()[2].log().len(), 0, "partitioned node missed the entry");
        assert!(c.reachable_logs_consistent(1));
    }

    #[test]
    fn dropped_acks_do_not_lose_log_entries() {
        let mut c = cluster();
        c.install_fault_plan(
            FaultPlan::new().schedule(0, 100, FaultKind::AckDrop { validator: "s0-v1".into() }),
        );
        let cert = c.replicate(1, Digest([1; 32]), 1).unwrap();
        assert_eq!(cert.acks, 2, "v1's ack was dropped, v2's arrived");
        assert_eq!(c.nodes()[1].log().len(), 1, "the entry itself was appended");
        assert_eq!(c.stats().acks_lost, 1);
        assert_eq!(c.stats().acks_delivered, 1);
    }

    #[test]
    fn ack_delay_raises_commit_latency_only_when_quorum_needs_it() {
        // Delay only v2: quorum (leader + v1) is met at baseline.
        let mut c = cluster();
        c.install_fault_plan(FaultPlan::new().schedule(
            0,
            100,
            FaultKind::AckDelay { validator: "s0-v2".into(), delay: 7 },
        ));
        let cert = c.replicate(1, Digest([1; 32]), 1).unwrap();
        assert_eq!(cert.commit_latency_ticks, 1, "quorum did not wait for the slow ack");
        // Delay both followers: quorum must wait.
        let mut c = cluster();
        c.install_fault_plan(
            FaultPlan::new()
                .schedule(0, 100, FaultKind::AckDelay { validator: "s0-v1".into(), delay: 7 })
                .schedule(0, 100, FaultKind::AckDelay { validator: "s0-v2".into(), delay: 9 }),
        );
        let cert = c.replicate(1, Digest([1; 32]), 1).unwrap();
        assert_eq!(cert.commit_latency_ticks, 1 + 7, "second-fastest ack gates quorum");
    }

    #[test]
    fn losing_the_whole_cluster_is_a_typed_error() {
        let mut c = cluster();
        let plan = (0..3).fold(FaultPlan::new(), |p, i| {
            p.schedule(0, 100, FaultKind::ValidatorCrash { validator: format!("s0-v{i}") })
        });
        c.install_fault_plan(plan);
        assert_eq!(c.replicate(1, Digest([1; 32]), 1), Err(ReplicationError::NoLeader { shard: 0, height: 1 }));
    }

    #[test]
    fn beyond_f_faults_lose_quorum_but_stay_typed() {
        let mut c = cluster();
        c.install_fault_plan(
            FaultPlan::new()
                .schedule(0, 100, FaultKind::ValidatorCrash { validator: "s0-v1".into() })
                .schedule(0, 100, FaultKind::ValidatorPartition { validator: "s0-v2".into() }),
        );
        let err = c.replicate(1, Digest([1; 32]), 1).unwrap_err();
        assert_eq!(
            err,
            ReplicationError::QuorumLost { shard: 0, height: 1, acks: 1, needed: 2 }
        );
        // The leader kept the entry; once the cluster heals, the next
        // commit implicitly carries the prefix to the followers.
        let cert = c.replicate(2, Digest([2; 32]), 200).unwrap();
        assert_eq!(cert.acks, 3);
        assert!(c.nodes().iter().all(|n| n.log().len() == 2));
    }

    #[test]
    fn election_prefers_the_most_up_to_date_reachable_node() {
        let mut c = cluster();
        // v1 partitioned for the first two commits: it lags by 2.
        c.install_fault_plan(FaultPlan::new().schedule(
            0,
            10,
            FaultKind::ValidatorPartition { validator: "s0-v1".into() },
        ));
        c.replicate(1, Digest([1; 32]), 1).unwrap();
        c.replicate(2, Digest([2; 32]), 2).unwrap();
        // Now crash the leader while v1 is still behind (it has not
        // caught up yet at tick 12's start — catch-up happens inside
        // replicate, after election).
        c.install_fault_plan(FaultPlan::new().schedule(
            11,
            10,
            FaultKind::ValidatorCrash { validator: "s0-v0".into() },
        ));
        let cert = c.replicate(3, Digest([3; 32]), 12).unwrap();
        assert_eq!(cert.leader, 2, "v2 holds the longer log, v1 only recovered");
        assert_eq!(c.stats().catch_ups, 1, "v1 caught up from the new leader");
        assert!(c.reachable_logs_consistent(12));
    }

    #[test]
    fn replication_stream_is_deterministic_for_a_fault_plan() {
        let run = || {
            let mut c = cluster();
            c.enable_tracing(1 << 10);
            c.install_fault_plan(FaultPlan::new().schedule(
                3,
                4,
                FaultKind::ValidatorCrash { validator: "s0-v0".into() },
            ));
            for h in 1..=6u64 {
                c.replicate(h, Digest([h as u8; 32]), h).unwrap();
            }
            trace_jsonl(&c.drain_events())
        };
        let a = run();
        assert_eq!(a, run(), "same plan, same bytes");
        assert!(a.contains("\"stage\":\"leader_elected\""), "{a}");
        assert!(a.contains("\"stage\":\"quorum_committed\""));
    }

    #[test]
    fn single_node_cluster_commits_alone() {
        let mut c = ReplicationCluster::new(
            7,
            ReplicationConfig { validators: 1, ..ReplicationConfig::default() },
        );
        let cert = c.replicate(1, Digest([1; 32]), 0).unwrap();
        assert_eq!(cert.acks, 1);
        assert_eq!(cert.quorum, 1);
        assert_eq!(cert.commit_latency_ticks, 0, "no followers to wait for");
        assert_eq!(cert.shard, 7);
    }
}
