//! Cluster sizing and timing knobs.

use metaverse_ledger::Tick;
use serde::{Deserialize, Serialize};

/// Configuration of one shard's replication cluster.
///
/// The defaults model the acceptance scenario of the workspace's
/// determinism-under-faults gate: 3 validators per shard, tolerating
/// any single crashed or partitioned node (f = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Validator nodes per cluster (quorum is `validators / 2 + 1`).
    /// Clamped to at least 1 at cluster construction.
    pub validators: usize,
    /// Election delay charged to the in-flight commit each time
    /// leadership rotates away from an unreachable leader, in ticks.
    pub election_timeout: Tick,
    /// Baseline ticks for a healthy follower's ack to reach the leader.
    pub ack_latency: Tick,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig { validators: 3, election_timeout: 4, ack_latency: 1 }
    }
}

impl ReplicationConfig {
    /// Majority threshold for this cluster size (leader included).
    pub fn quorum(&self) -> usize {
        self.validators.max(1) / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f1_tolerant() {
        let c = ReplicationConfig::default();
        assert_eq!(c.validators, 3);
        assert_eq!(c.quorum(), 2, "any single node can fail");
    }

    #[test]
    fn quorum_is_majority() {
        for (n, q) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4)] {
            let c = ReplicationConfig { validators: n, ..ReplicationConfig::default() };
            assert_eq!(c.quorum(), q, "n = {n}");
        }
        let degenerate = ReplicationConfig { validators: 0, ..ReplicationConfig::default() };
        assert_eq!(degenerate.quorum(), 1, "clamped to a single node");
    }
}
