//! Property-based tests for the quorum-commit protocol: safety under
//! any single-validator fault (f = 1 at N = 3), deterministic replay,
//! and log-prefix consistency across arbitrary fault schedules.

use metaverse_ledger::Digest;
use metaverse_replication::{ReplicationCluster, ReplicationConfig, ReplicationError};
use metaverse_resilience::{FaultKind, FaultPlan};
use metaverse_telemetry::export::trace_jsonl;
use proptest::prelude::*;

fn digest(h: u64) -> Digest {
    let mut b = [0u8; 32];
    b[..8].copy_from_slice(&h.to_le_bytes());
    Digest(b)
}

/// A single validator-scoped fault kind on node `victim` of shard 0.
fn single_fault(kind: u8, victim: usize, delay: u64) -> FaultKind {
    let validator = format!("s0-v{victim}");
    match kind % 4 {
        0 => FaultKind::ValidatorCrash { validator },
        1 => FaultKind::ValidatorPartition { validator },
        2 => FaultKind::AckDrop { validator },
        _ => FaultKind::AckDelay { validator, delay: delay.max(1) },
    }
}

proptest! {
    /// With 3 validators, any single validator-scoped fault window —
    /// crash, partition, ack drop, ack delay, on any node including the
    /// leader, at any time — never prevents quorum commit, and every
    /// reachable node's log stays a prefix of the leader's.
    #[test]
    fn any_single_fault_still_commits(
        kind in 0u8..4,
        victim in 0usize..3,
        start in 0u64..40,
        duration in 1u64..40,
        delay in 1u64..16,
        commits in 1usize..30,
    ) {
        let mut cluster = ReplicationCluster::new(0, ReplicationConfig::default());
        cluster.install_fault_plan(
            FaultPlan::new().schedule(start, duration, single_fault(kind, victim, delay)),
        );
        for h in 1..=commits as u64 {
            let tick = h * 3;
            let cert = cluster.replicate(h, digest(h), tick).unwrap();
            prop_assert!(cert.acks >= cert.quorum);
            prop_assert!(cluster.reachable_logs_consistent(tick));
        }
        prop_assert_eq!(cluster.stats().blocks_committed, commits as u64);
        // After every window closes, one more commit heals all logs.
        let healed_tick = (start + duration).max(30 * 3) + 1;
        let final_height = commits as u64 + 1;
        cluster.replicate(final_height, digest(final_height), healed_tick).unwrap();
        for node in cluster.nodes() {
            prop_assert_eq!(node.log().len() as u64, final_height, "{}", node.id());
        }
    }

    /// The same fault plan replays to byte-identical certificates and
    /// trace streams.
    #[test]
    fn replay_is_byte_identical(
        kind in 0u8..4,
        victim in 0usize..3,
        start in 0u64..30,
        duration in 1u64..30,
        commits in 1usize..20,
    ) {
        let run = || {
            let mut cluster = ReplicationCluster::new(0, ReplicationConfig::default());
            cluster.enable_tracing(1 << 12);
            cluster.install_fault_plan(
                FaultPlan::new().schedule(start, duration, single_fault(kind, victim, 3)),
            );
            let mut certs = String::new();
            for h in 1..=commits as u64 {
                certs.push_str(&format!("{:?}\n", cluster.replicate(h, digest(h), h * 2)));
            }
            (certs, trace_jsonl(&cluster.drain_events()))
        };
        prop_assert_eq!(run(), run());
    }

    /// Commit latency decomposes as failover delay plus the quorum-th
    /// ack latency: never below the baseline when followers are needed,
    /// and exactly the election charge on top of acks during failover.
    #[test]
    fn latency_accounting_is_consistent(
        victim in 0usize..3,
        tick in 1u64..100,
    ) {
        let config = ReplicationConfig::default();
        let mut cluster = ReplicationCluster::new(0, config);
        cluster.install_fault_plan(FaultPlan::new().schedule(
            0,
            u64::MAX,
            FaultKind::ValidatorCrash { validator: format!("s0-v{victim}") },
        ));
        let cert = cluster.replicate(1, digest(1), tick).unwrap();
        if victim == 0 {
            prop_assert_eq!(cert.elections, 1, "leader crash forces failover");
            prop_assert_eq!(cert.failover_ticks, config.election_timeout);
        } else {
            prop_assert_eq!(cert.elections, 0);
            prop_assert_eq!(cert.failover_ticks, 0);
        }
        prop_assert_eq!(
            cert.commit_latency_ticks,
            cert.failover_ticks + config.ack_latency,
            "quorum needs exactly one follower ack at N=3 with one node down"
        );
    }

    /// Two concurrent unreachable validators (beyond f = 1) surface a
    /// typed error, never a panic, and the cluster recovers once the
    /// windows close.
    #[test]
    fn beyond_f_is_typed_and_recoverable(
        a in 0usize..3,
        b in 0usize..3,
        window in 1u64..50,
    ) {
        prop_assume!(a != b);
        let mut cluster = ReplicationCluster::new(0, ReplicationConfig::default());
        cluster.install_fault_plan(
            FaultPlan::new()
                .schedule(0, window, FaultKind::ValidatorCrash { validator: format!("s0-v{a}") })
                .schedule(0, window, FaultKind::ValidatorPartition { validator: format!("s0-v{b}") }),
        );
        match cluster.replicate(1, digest(1), 0) {
            Err(ReplicationError::QuorumLost { acks, needed, .. }) => {
                prop_assert_eq!(acks, 1);
                prop_assert_eq!(needed, 2);
            }
            other => prop_assert!(false, "expected QuorumLost, got {other:?}"),
        }
        let cert = cluster.replicate(2, digest(2), window).unwrap();
        prop_assert_eq!(cert.acks, 3, "full cluster after the windows close");
        for node in cluster.nodes() {
            prop_assert_eq!(node.log().len(), 2, "prefix implicitly committed");
        }
    }
}
