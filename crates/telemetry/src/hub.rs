//! The instrument registry.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, CounterCell, Gauge, GaugeCell, Histogram, HistogramCell};
use crate::snapshot::TelemetrySnapshot;
use crate::Span;

#[derive(Debug, Default)]
struct HubInner {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// The telemetry registry: hands out instruments by name and takes
/// whole-registry snapshots.
///
/// Cloning a hub is one `Arc` bump, so every subsystem can hold its own
/// handle onto the same registry (the platform shares its hub with twin
/// sync channels this way). Instrument *registration* takes a mutex;
/// recording through a previously obtained handle is lock-free, so hot
/// paths should hold their handles rather than re-resolve names.
///
/// A hub built with [`TelemetryHub::disabled`] hands out no-op
/// instruments and empty snapshots; instrumented code stays identical.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHub {
    inner: Option<Arc<HubInner>>,
}

impl TelemetryHub {
    /// An enabled, empty hub.
    pub fn new() -> Self {
        TelemetryHub { inner: Some(Arc::new(HubInner::default())) }
    }

    /// A hub that records nothing and costs (almost) nothing.
    pub fn disabled() -> Self {
        TelemetryHub { inner: None }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter registered under `name` (registering it first if
    /// needed). Same name, same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else { return Counter::noop() };
        let mut map = inner.counters.lock().expect("telemetry registry poisoned");
        let cell = map.entry(name.to_string()).or_default().clone();
        Counter { cell: Some(cell) }
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else { return Gauge::noop() };
        let mut map = inner.gauges.lock().expect("telemetry registry poisoned");
        let cell = map.entry(name.to_string()).or_default().clone();
        Gauge { cell: Some(cell) }
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else { return Histogram::noop() };
        let mut map = inner.histograms.lock().expect("telemetry registry poisoned");
        let cell = map.entry(name.to_string()).or_default().clone();
        Histogram { cell: Some(cell) }
    }

    /// Starts a wall-clock span recording into the histogram `name`.
    pub fn span(&self, name: &str) -> Span {
        self.histogram(name).start_span()
    }

    /// Convenience: bump the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.counter(name).incr();
    }

    /// A point-in-time view of every registered instrument.
    ///
    /// Individual reads are relaxed, so a snapshot taken while another
    /// thread records is internally consistent per instrument but not
    /// across instruments — fine for the diff/report uses it serves.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else { return TelemetrySnapshot::default() };
        TelemetrySnapshot {
            counters: inner
                .counters
                .lock()
                .expect("telemetry registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.value.load(std::sync::atomic::Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .expect("telemetry registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.value.load(std::sync::atomic::Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .expect("telemetry registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let hub = TelemetryHub::new();
        hub.counter("x").add(2);
        hub.counter("x").add(3);
        assert_eq!(hub.counter("x").get(), 5);
    }

    #[test]
    fn clones_share_the_registry() {
        let hub = TelemetryHub::new();
        let clone = hub.clone();
        clone.incr("shared");
        assert_eq!(hub.counter("shared").get(), 1);
        assert_eq!(hub.snapshot().counters["shared"], 1);
    }

    #[test]
    fn disabled_hub_snapshots_empty() {
        let hub = TelemetryHub::disabled();
        assert!(!hub.is_enabled());
        hub.incr("ignored");
        hub.gauge("g").set(7);
        hub.histogram("h").record(1);
        let snap = hub.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_sees_all_instrument_kinds() {
        let hub = TelemetryHub::new();
        hub.incr("c");
        hub.gauge("g").add(-4);
        hub.histogram("h").record(9);
        let snap = hub.snapshot();
        assert_eq!(snap.counters["c"], 1);
        assert_eq!(snap.gauges["g"], -4);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn hub_is_thread_cheap_and_safe() {
        let hub = TelemetryHub::new();
        let counter = hub.counter("threads");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = counter.clone();
                let h = hub.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                        h.histogram("lat").record(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.counter("threads").get(), 4000);
        assert_eq!(hub.histogram("lat").count(), 4000);
    }
}
