//! Heat accounting: sliding tick-window load aggregates per shard.
//!
//! Counters (the rest of this crate) are monotone since process start;
//! a split/merge policy needs *heat over time* — how hot is shard 3
//! **right now**, relative to its fair share? This module folds one
//! [`EpochHeatSample`] per router epoch into a [`HeatWindow`] of recent
//! epochs bounded by logical ticks, and summarises the window as a
//! [`HeatReport`]: global rates (ops per kilotick, refusal rate by
//! class, DP-budget burn, escrow pressure) plus a per-shard
//! skew/imbalance score — the exact signal an elastic-resharding
//! policy consumes.
//!
//! Determinism rules, same as the trace layer:
//!
//! * **logical time only** — windows are measured in ticks, never wall
//!   clock, so the same seeded run produces the same reports at any
//!   worker count (a wall-clock window would move with host speed);
//! * **integer arithmetic only** — rates are milli-units (`x1000`) and
//!   burns micro-units (`x1e6`), never floats, so report bytes cannot
//!   drift across platforms;
//! * **`&mut` accumulation** — per-shard tallies are accumulated inside
//!   the worker scope via exclusive references and merged in shard
//!   order at the epoch barrier; no locks, no atomics, no ordering
//!   races to leak into the bytes.

use std::collections::VecDeque;

/// Stable labels for the admission-refusal classes tracked per window,
/// in the fixed order used by every `refused_by_class` array in this
/// module. These match the gateway's `AdmissionError::label` values
/// plus the governance DP-budget refusal.
pub const REFUSAL_CLASSES: [&str; 6] = [
    "rate_limited",
    "mailbox_full",
    "unknown_user",
    "duplicate_register",
    "shard_down",
    "budget_refused",
];

/// Number of refusal classes in [`REFUSAL_CLASSES`].
pub const REFUSAL_CLASS_COUNT: usize = REFUSAL_CLASSES.len();

/// Per-shard tallies accumulated *inside* the worker scope via `&mut`
/// while the shard executes its epoch batch, then handed back to the
/// router at the merge barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardHeatSample {
    /// Ops routed into this shard's epoch queue (pre-route phase).
    pub routed: u64,
    /// Ops the shard platform executed successfully.
    pub executed: u64,
    /// Ops the shard platform refused or failed.
    pub failed: u64,
    /// Ops still queued for this shard when the epoch folded (held by
    /// an open breaker or deferred past the barrier).
    pub queue_depth: u64,
}

impl ShardHeatSample {
    /// Accumulates another sample into this one (used when a worker
    /// processes one shard across several pipeline chunks).
    pub fn merge(&mut self, other: &ShardHeatSample) {
        self.routed += other.routed;
        self.executed += other.executed;
        self.failed += other.failed;
        self.queue_depth += other.queue_depth;
    }
}

/// Everything one router epoch contributes to the heat window. Built by
/// the router at the epoch barrier from values it already tracks; the
/// heat window itself never reaches into router state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochHeatSample {
    /// Router epoch this sample covers.
    pub epoch: u64,
    /// Logical tick at the *end* of the epoch (fold time).
    pub tick: u64,
    /// Ticks the epoch advanced the clock by.
    pub ticks: u64,
    /// Ops admitted into session mailboxes during the epoch.
    pub admitted: u64,
    /// Admission refusals by class, indexed per [`REFUSAL_CLASSES`].
    pub refused_by_class: [u64; REFUSAL_CLASS_COUNT],
    /// Micro-epsilon debited from the global DP budget this epoch.
    pub dp_spent_micro: u64,
    /// Cross-shard settlement entries enqueued this epoch.
    pub escrow_enqueued: u64,
    /// Settlement entries still in flight at fold time.
    pub escrow_depth: u64,
    /// Settlement entries that reached a terminal outcome this epoch.
    pub settled: u64,
    /// Ops or settlement entries requeued for a later epoch.
    pub requeued: u64,
    /// Per-shard tallies, indexed by shard id.
    pub shards: Vec<ShardHeatSample>,
}

/// A bounded sliding window of recent [`EpochHeatSample`]s, evicted by
/// logical tick age (never wall clock, never entry count alone).
#[derive(Debug, Clone)]
pub struct HeatWindow {
    window_ticks: u64,
    buckets: VecDeque<EpochHeatSample>,
    epochs_folded: u64,
}

impl HeatWindow {
    /// Creates a window covering the trailing `window_ticks` logical
    /// ticks (clamped to at least 1).
    pub fn new(window_ticks: u64) -> Self {
        HeatWindow {
            window_ticks: window_ticks.max(1),
            buckets: VecDeque::new(),
            epochs_folded: 0,
        }
    }

    /// Folds one epoch's sample into the window, evicting samples that
    /// fell out of the trailing tick range.
    pub fn fold(&mut self, sample: EpochHeatSample) {
        let horizon = sample.tick.saturating_sub(self.window_ticks);
        while self.buckets.front().is_some_and(|b| b.tick <= horizon) {
            self.buckets.pop_front();
        }
        self.buckets.push_back(sample);
        self.epochs_folded += 1;
    }

    /// Total epochs ever folded (not just those still in the window).
    pub fn epochs_folded(&self) -> u64 {
        self.epochs_folded
    }

    /// Summarises the current window. Deterministic: pure integer
    /// arithmetic over the folded samples, shards in id order.
    pub fn report(&self) -> HeatReport {
        let mut global = GlobalHeat::default();
        let epochs = self.buckets.len() as u64;
        let mut ticks_covered = 0u64;
        let mut shard_count = 0usize;
        for b in &self.buckets {
            ticks_covered += b.ticks;
            global.admitted += b.admitted;
            for (acc, v) in global.refused_by_class.iter_mut().zip(b.refused_by_class) {
                *acc += v;
            }
            global.dp_spent_micro += b.dp_spent_micro;
            global.escrow_enqueued += b.escrow_enqueued;
            global.settled += b.settled;
            global.requeued += b.requeued;
            shard_count = shard_count.max(b.shards.len());
        }
        global.refused = global.refused_by_class.iter().sum();
        if let Some(last) = self.buckets.back() {
            global.escrow_depth = last.escrow_depth;
        }
        let offered = global.admitted + global.refused;
        global.refusal_rate_milli = (global.refused * 1000).checked_div(offered).unwrap_or(0);
        global.ops_per_kilotick =
            (global.admitted * 1000).checked_div(ticks_covered).unwrap_or(0);
        global.dp_burn_micro_per_epoch = global.dp_spent_micro.checked_div(epochs).unwrap_or(0);

        let mut shards: Vec<ShardHeat> = (0..shard_count)
            .map(|i| ShardHeat { shard: i as u32, ..ShardHeat::default() })
            .collect();
        for b in &self.buckets {
            for (i, s) in b.shards.iter().enumerate() {
                let row = &mut shards[i];
                row.routed += s.routed;
                row.executed += s.executed;
                row.failed += s.failed;
            }
        }
        if let Some(last) = self.buckets.back() {
            for (i, s) in last.shards.iter().enumerate() {
                shards[i].queue_depth = s.queue_depth;
            }
        }
        let total_routed: u64 = shards.iter().map(|s| s.routed).sum();
        let mut imbalance_milli = 0u64;
        for row in &mut shards {
            row.share_milli = (row.routed * 1000).checked_div(total_routed).unwrap_or(0);
            // Signed deviation from the fair 1/N share, in milli:
            // 0 = exactly fair, +1000 = double share, -1000 = idle.
            row.skew_milli = if total_routed == 0 {
                0
            } else {
                (row.share_milli * shard_count as u64) as i64 - 1000
            };
            imbalance_milli = imbalance_milli.max(row.skew_milli.unsigned_abs());
        }

        let from_tick = self.buckets.front().map_or(0, |b| b.tick.saturating_sub(b.ticks));
        let to_tick = self.buckets.back().map_or(0, |b| b.tick);
        HeatReport {
            window_ticks: self.window_ticks,
            epochs,
            from_tick,
            to_tick,
            imbalance_milli,
            global,
            shards,
        }
    }
}

/// Window-wide aggregates: the "how hot is the platform" half of the
/// report. All rates are integer milli-units; burns are micro-units.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalHeat {
    /// Ops admitted within the window.
    pub admitted: u64,
    /// Total admission refusals within the window.
    pub refused: u64,
    /// Refusals by class, indexed per [`REFUSAL_CLASSES`].
    pub refused_by_class: [u64; REFUSAL_CLASS_COUNT],
    /// Admitted ops per 1000 logical ticks.
    pub ops_per_kilotick: u64,
    /// `refused * 1000 / (admitted + refused)` (0 when nothing was
    /// offered).
    pub refusal_rate_milli: u64,
    /// Micro-epsilon debited from the global DP budget in the window.
    pub dp_spent_micro: u64,
    /// Average micro-epsilon burned per epoch in the window.
    pub dp_burn_micro_per_epoch: u64,
    /// Cross-shard settlement entries enqueued in the window.
    pub escrow_enqueued: u64,
    /// Settlement entries in flight at the most recent fold.
    pub escrow_depth: u64,
    /// Settlement entries settled in the window.
    pub settled: u64,
    /// Requeues (op or settlement) in the window.
    pub requeued: u64,
}

/// One shard's share of the window: absolute tallies plus its deviation
/// from the fair 1/N share.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardHeat {
    /// Shard id.
    pub shard: u32,
    /// Ops routed to this shard in the window.
    pub routed: u64,
    /// Ops this shard executed successfully in the window.
    pub executed: u64,
    /// Ops this shard refused or failed in the window.
    pub failed: u64,
    /// Ops still queued at the most recent fold.
    pub queue_depth: u64,
    /// This shard's share of routed ops, in milli (`routed * 1000 /
    /// total`).
    pub share_milli: u64,
    /// Signed deviation from the fair share, in milli: 0 = exactly
    /// fair, +1000 = double the fair share, -1000 = completely idle.
    pub skew_milli: i64,
}

/// The window summary: global heat plus per-shard skew — the load
/// signal an elastic split/merge policy reads. Byte-identity gates
/// compare the [`HeatReport::to_json`] rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatReport {
    /// Trailing tick range the window covers.
    pub window_ticks: u64,
    /// Epoch samples currently inside the window.
    pub epochs: u64,
    /// First logical tick covered by the window.
    pub from_tick: u64,
    /// Last logical tick covered by the window.
    pub to_tick: u64,
    /// Largest absolute per-shard skew, in milli — the single scalar a
    /// resharding policy thresholds on.
    pub imbalance_milli: u64,
    /// Window-wide aggregates.
    pub global: GlobalHeat,
    /// Per-shard rows, in shard-id order.
    pub shards: Vec<ShardHeat>,
}

impl HeatReport {
    /// Renders the full report as one deterministic JSON object (hand
    /// rolled — this crate is dependency-free). Equal reports render
    /// byte-identically, which the shard-count determinism gates rely
    /// on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.shards.len() * 128);
        out.push_str(&format!(
            "{{\"window_ticks\":{},\"epochs\":{},\"from_tick\":{},\"to_tick\":{},\"imbalance_milli\":{}",
            self.window_ticks, self.epochs, self.from_tick, self.to_tick, self.imbalance_milli
        ));
        let g = &self.global;
        out.push_str(&format!(
            ",\"global\":{{\"admitted\":{},\"refused\":{},\"refused_by_class\":{{",
            g.admitted, g.refused
        ));
        for (i, (label, count)) in REFUSAL_CLASSES.iter().zip(g.refused_by_class).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{label}\":{count}"));
        }
        out.push_str(&format!(
            "}},\"ops_per_kilotick\":{},\"refusal_rate_milli\":{},\"dp_spent_micro\":{},\"dp_burn_micro_per_epoch\":{},\"escrow_enqueued\":{},\"escrow_depth\":{},\"settled\":{},\"requeued\":{}}}",
            g.ops_per_kilotick,
            g.refusal_rate_milli,
            g.dp_spent_micro,
            g.dp_burn_micro_per_epoch,
            g.escrow_enqueued,
            g.escrow_depth,
            g.settled,
            g.requeued
        ));
        out.push_str(",\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"routed\":{},\"executed\":{},\"failed\":{},\"queue_depth\":{},\"share_milli\":{},\"skew_milli\":{}}}",
                s.shard, s.routed, s.executed, s.failed, s.queue_depth, s.share_milli, s.skew_milli
            ));
        }
        out.push_str("]}");
        out
    }

    /// The global half of the report rendered alone — the part that is
    /// byte-identical *across* shard counts for shard-invariant
    /// workloads. Per-shard rows necessarily differ when N differs, and
    /// so does `imbalance_milli` (it *measures* placement skew), so
    /// both stay out of this view.
    pub fn global_json(&self) -> String {
        let full = self.to_json();
        let head = format!(
            "{{\"window_ticks\":{},\"epochs\":{},\"from_tick\":{},\"to_tick\":{}",
            self.window_ticks, self.epochs, self.from_tick, self.to_tick
        );
        match (full.find(",\"global\":{"), full.find(",\"shards\":[")) {
            (Some(from), Some(to)) => format!("{head}{}}}", &full[from..to]),
            _ => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, tick: u64, admitted: u64, per_shard: &[u64]) -> EpochHeatSample {
        EpochHeatSample {
            epoch,
            tick,
            ticks: 4,
            admitted,
            refused_by_class: [0; REFUSAL_CLASS_COUNT],
            dp_spent_micro: 0,
            escrow_enqueued: 0,
            escrow_depth: 0,
            settled: 0,
            requeued: 0,
            shards: per_shard
                .iter()
                .map(|&routed| ShardHeatSample { routed, executed: routed, ..Default::default() })
                .collect(),
        }
    }

    #[test]
    fn window_evicts_by_tick_age_not_entry_count() {
        let mut w = HeatWindow::new(8);
        w.fold(sample(0, 4, 10, &[10]));
        w.fold(sample(1, 8, 10, &[10]));
        w.fold(sample(2, 12, 10, &[10]));
        // tick 4 is exactly window_ticks behind tick 12: evicted.
        let r = w.report();
        assert_eq!(r.epochs, 2);
        assert_eq!(r.global.admitted, 20);
        assert_eq!(w.epochs_folded(), 3);
    }

    #[test]
    fn skew_is_zero_when_balanced_and_signed_when_not() {
        let mut w = HeatWindow::new(100);
        w.fold(sample(0, 4, 40, &[10, 10, 10, 10]));
        let r = w.report();
        assert!(r.shards.iter().all(|s| s.skew_milli == 0), "{r:?}");
        assert_eq!(r.imbalance_milli, 0);

        let mut w = HeatWindow::new(100);
        w.fold(sample(0, 4, 40, &[30, 10, 0, 0]));
        let r = w.report();
        assert_eq!(r.shards[0].share_milli, 750);
        assert_eq!(r.shards[0].skew_milli, 2000, "3x the fair share");
        assert_eq!(r.shards[2].skew_milli, -1000, "idle shard");
        assert_eq!(r.imbalance_milli, 2000);
    }

    #[test]
    fn rates_are_integer_milli_units() {
        let mut w = HeatWindow::new(100);
        let mut s = sample(0, 4, 30, &[30]);
        s.refused_by_class[0] = 10; // rate_limited
        s.dp_spent_micro = 9;
        w.fold(s);
        w.fold(sample(1, 8, 30, &[30]));
        let r = w.report();
        assert_eq!(r.global.refused, 10);
        assert_eq!(r.global.refusal_rate_milli, 10 * 1000 / 70);
        assert_eq!(r.global.ops_per_kilotick, 60 * 1000 / 8);
        assert_eq!(r.global.dp_burn_micro_per_epoch, 4, "9 micro over 2 epochs");
    }

    #[test]
    fn json_is_deterministic_and_global_slice_drops_shards() {
        let mut w = HeatWindow::new(16);
        w.fold(sample(0, 4, 12, &[8, 4]));
        let r = w.report();
        assert_eq!(r.to_json(), w.report().to_json());
        let g = r.global_json();
        assert!(!g.contains("\"shards\""), "{g}");
        assert!(
            !g.contains("\"imbalance_milli\""),
            "skew is a placement signal and must stay out of the global view: {g}"
        );
        assert!(g.starts_with('{') && g.ends_with('}'), "{g}");
        assert!(g.contains("\"refused_by_class\":{\"rate_limited\":0"), "{g}");
        assert!(g.contains("\"global\":{\"admitted\":12"), "{g}");
    }

    #[test]
    fn empty_window_reports_zeroes() {
        let w = HeatWindow::new(8);
        let r = w.report();
        assert_eq!(r.epochs, 0);
        assert_eq!(r.global.ops_per_kilotick, 0);
        assert_eq!(r.imbalance_milli, 0);
        assert!(r.shards.is_empty());
    }
}
