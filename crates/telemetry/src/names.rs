//! Canonical metric names shared by every crate that records or reads
//! platform telemetry.
//!
//! The platform façade, the gateway, and the experiments all agree on
//! counter names *by construction*: the strings live here once, as
//! `pub const`s (for fixed names) and small formatting helpers (for
//! per-module / per-shard families). A snapshot consumer that asks for
//! [`EPOCH_COMMITS`] can never drift apart from the producer that
//! increments it, which is exactly the failure mode scattered string
//! literals invite.
//!
//! Conventions:
//!
//! * `ops.<op>` — platform façade operation invocation counters.
//! * `module.<slot>.{calls,refused,zombie,latency_ns}` — per-slot
//!   instruments (see [`module_calls`] and friends).
//! * `epoch.*` — epoch-commit counters and phase histograms.
//! * `moderation.*`, `escape.*`, `platform.*` — façade-level state.
//! * `breaker.<slot>.<state>` — breaker transition counters.
//! * `gateway.*` — session-gateway instruments (see [`gateway`]).
//! * `twins.sync.*` — twin sync-channel counters (attached hubs).

/// Prefix of every platform-operation counter (`ops.<op>`).
pub const OPS_PREFIX: &str = "ops.";

/// Counter name for one platform operation: `ops.<op>`.
pub fn op(name: &str) -> String {
    format!("{OPS_PREFIX}{name}")
}

/// Per-slot call counter: `module.<slot>.calls`.
pub fn module_calls(slot: &str) -> String {
    format!("module.{slot}.calls")
}

/// Per-slot fail-closed refusal counter: `module.<slot>.refused`.
pub fn module_refused(slot: &str) -> String {
    format!("module.{slot}.refused")
}

/// Per-slot zombie-pass counter: `module.<slot>.zombie`.
pub fn module_zombie(slot: &str) -> String {
    format!("module.{slot}.zombie")
}

/// Per-slot operation latency histogram: `module.<slot>.latency_ns`.
pub fn module_latency(slot: &str) -> String {
    format!("module.{slot}.latency_ns")
}

/// Breaker transition counter: `breaker.<slot>.<state-label>`.
pub fn breaker_transition(slot: &str, state: &str) -> String {
    format!("breaker.{slot}.{state}")
}

/// Epoch-commit collect-phase histogram.
pub const EPOCH_COLLECT_NS: &str = "epoch.collect_ns";
/// Epoch-commit merkle-phase histogram (per sealed block).
pub const EPOCH_MERKLE_NS: &str = "epoch.merkle_ns";
/// Epoch-commit sign-phase histogram (per sealed block).
pub const EPOCH_SIGN_NS: &str = "epoch.sign_ns";
/// Epoch-commit append-phase histogram (per sealed block).
pub const EPOCH_APPEND_NS: &str = "epoch.append_ns";
/// Completed epoch commits.
pub const EPOCH_COMMITS: &str = "epoch.commits";
/// Aborted epoch commits (rogue validator outlasted the retries).
pub const EPOCH_ABORTS: &str = "epoch.aborts";
/// Blocks sealed across all commits.
pub const EPOCH_BLOCKS_SEALED: &str = "epoch.blocks_sealed";
/// Transactions submitted to the mempool by commits.
pub const EPOCH_TXS_SUBMITTED: &str = "epoch.txs_submitted";

/// Moderation reports deferred while the slot was down.
pub const MODERATION_REPORTS_DEFERRED: &str = "moderation.reports_deferred";
/// Held moderation reports replayed after recovery.
pub const MODERATION_REPORTS_REPLAYED: &str = "moderation.reports_replayed";
/// Gauge: moderation reports currently held.
pub const MODERATION_REPORTS_HELD: &str = "moderation.reports_held";

/// Escape-hatch counter: direct governance access.
pub const ESCAPE_GOVERNANCE: &str = "escape.governance";
/// Escape-hatch counter: direct reputation access.
pub const ESCAPE_REPUTATION: &str = "escape.reputation";
/// Escape-hatch counter: direct review-board access.
pub const ESCAPE_IRB: &str = "escape.irb";

/// Gauge: registered users.
pub const PLATFORM_USERS: &str = "platform.users";
/// Gauge: current platform tick.
pub const PLATFORM_TICK: &str = "platform.tick";

/// Gauge: audit-chain height after the most recent epoch commit.
pub const EPOCH_CHAIN_HEIGHT: &str = "epoch.chain_height";

/// Trace events recorded into flight recorders (router + shards).
pub const TRACE_EVENTS_RECORDED: &str = "trace.events.recorded";
/// Trace events evicted from full flight-recorder rings.
pub const TRACE_EVENTS_DROPPED: &str = "trace.events.dropped";
/// Gauge: events currently held by the router-level flight recorder.
pub const TRACE_BUFFER_LEN: &str = "trace.buffer.len";

/// Gateway (sharded session front door) instrument names.
///
/// Kept beside the platform names for the same anti-drift reason: E21
/// and the gateway integration tests read these counters back out of
/// snapshots produced by `metaverse-gateway`.
pub mod gateway {
    /// Ops offered to sessions (before admission control).
    pub const OPS_SUBMITTED: &str = "gateway.ops.submitted";
    /// Ops admitted into a session mailbox.
    pub const OPS_ACCEPTED: &str = "gateway.ops.accepted";
    /// Ops that executed successfully on a shard platform.
    pub const OPS_COMMITTED: &str = "gateway.ops.committed";
    /// Ops that reached a shard platform and were refused or failed.
    pub const OPS_FAILED: &str = "gateway.ops.failed";
    /// Admission refusals: token bucket empty.
    pub const REJECTED_RATE_LIMITED: &str = "gateway.rejected.rate_limited";
    /// Admission refusals: session mailbox full.
    pub const REJECTED_MAILBOX_FULL: &str = "gateway.rejected.mailbox_full";
    /// Admission refusals: the session's home shard breaker is open.
    pub const REJECTED_SHARD_DOWN: &str = "gateway.rejected.shard_down";
    /// Admission refusals: no session for the named user.
    pub const REJECTED_UNKNOWN_USER: &str = "gateway.rejected.unknown_user";
    /// Admission refusals: a second `Register` for an existing session.
    pub const REJECTED_DUPLICATE_REGISTER: &str = "gateway.rejected.duplicate_register";
    /// Cross-shard settlement entries enqueued.
    pub const SETTLEMENT_ENQUEUED: &str = "gateway.settlement.enqueued";
    /// Cross-shard settlement entries applied.
    pub const SETTLEMENT_APPLIED: &str = "gateway.settlement.applied";
    /// Cross-shard settlement entries rejected (refund path taken).
    pub const SETTLEMENT_REJECTED: &str = "gateway.settlement.rejected";
    /// Cross-shard settlement entries requeued (target module down).
    pub const SETTLEMENT_REQUEUED: &str = "gateway.settlement.requeued";
    /// Gauge: settlement entries currently in flight.
    pub const SETTLEMENT_DEPTH: &str = "gateway.settlement.depth";
    /// Router epochs executed.
    pub const EPOCHS: &str = "gateway.epochs";
    /// Gauge: connected sessions.
    pub const SESSIONS: &str = "gateway.sessions";
    /// Histogram: ops per shard batch.
    pub const BATCH_SIZE: &str = "gateway.batch.size";
    /// Shard commit failures observed by the router's breakers.
    pub const SHARD_COMMIT_FAILURES: &str = "gateway.shard.commit_failures";
    /// Shard epochs skipped because the shard breaker was open.
    pub const SHARD_EPOCHS_SKIPPED: &str = "gateway.shard.epochs_skipped";
    /// Micro-epsilon debited from the global differential-privacy
    /// budget by admitted sensor releases.
    pub const DP_SPENT_MICRO: &str = "gateway.dp.spent_micro";
    /// Sensor releases admitted against the global DP budget.
    pub const DP_ADMITTED: &str = "gateway.dp.admitted";
    /// Sensor releases refused fail-closed because the global DP
    /// budget could not cover them.
    pub const DP_REFUSED: &str = "gateway.dp.refused";
    /// Liquid-democracy delegation changes applied across all shards
    /// at the merge barrier (revocations included).
    pub const GOVERNANCE_DELEGATIONS: &str = "gateway.governance.delegations";
    /// Credit-budgeted quadratic ballots that executed on a shard.
    pub const GOVERNANCE_QUADRATIC_VOTES: &str = "gateway.governance.quadratic_votes";
    /// Moderation appeals adjudicated on a shard.
    pub const GOVERNANCE_APPEALS: &str = "gateway.governance.appeals";

    /// Per-shard batch execution latency histogram:
    /// `gateway.shard.<i>.batch_ns`.
    pub fn shard_batch_ns(shard: usize) -> String {
        format!("gateway.shard.{shard}.batch_ns")
    }

    /// Per-shard queue-depth gauge: `gateway.shard.<i>.queue_depth`.
    pub fn shard_queue_depth(shard: usize) -> String {
        format!("gateway.shard.{shard}.queue_depth")
    }

    /// Per-shard breaker transition counter:
    /// `gateway.shard.<i>.breaker.<state>`.
    pub fn shard_breaker(shard: usize, state: &str) -> String {
        format!("gateway.shard.{shard}.breaker.{state}")
    }
}

/// Serving-layer (connection-oriented network front door) instrument
/// names, recorded by `metaverse-net`'s server hub.
pub mod net {
    /// Connections ever accepted.
    pub const CONNS_ACCEPTED: &str = "net.conns.accepted";
    /// Connections closed (any cause).
    pub const CONNS_CLOSED: &str = "net.conns.closed";
    /// Gauge: connections currently open or draining.
    pub const CONNS_OPEN: &str = "net.conns.open";
    /// Bytes read off client streams.
    pub const BYTES_READ: &str = "net.bytes.read";
    /// Ack bytes written back to clients.
    pub const BYTES_WRITTEN: &str = "net.bytes.written";
    /// Complete frames reassembled.
    pub const FRAMES_DECODED: &str = "net.frames.decoded";
    /// Offers the ingress admitted.
    pub const OPS_ADMITTED: &str = "net.ops.admitted";
    /// Offers the ingress refused (transparent retries included).
    pub const OPS_REFUSED: &str = "net.ops.refused";
    /// Connections parked for admission backpressure.
    pub const BACKPRESSURE_PAUSES: &str = "net.backpressure.pauses";
    /// Epoch boundaries the server fired into its ingress.
    pub const EPOCHS_FIRED: &str = "net.epochs.fired";
    /// Readiness sweeps performed.
    pub const SWEEPS: &str = "net.sweeps";
    /// Admission-journal records written (offers + epoch markers).
    pub const JOURNAL_ENTRIES: &str = "net.journal.entries";
    /// Histogram: wall-clock nanoseconds per ingress call (reporting
    /// only — no control flow reads it).
    pub const ADMISSION_NS: &str = "net.admission_ns";
}

/// Replication (per-shard quorum-commit cluster) instrument names.
pub mod replication {
    /// Blocks proposed by cluster leaders.
    pub const BLOCKS_PROPOSED: &str = "replication.blocks.proposed";
    /// Blocks that reached quorum commit.
    pub const BLOCKS_COMMITTED: &str = "replication.blocks.committed";
    /// Follower acks delivered to leaders.
    pub const ACKS_DELIVERED: &str = "replication.acks.delivered";
    /// Follower acks lost to drops, crashes, or partitions.
    pub const ACKS_LOST: &str = "replication.acks.lost";
    /// Leader elections forced by an unreachable leader.
    pub const LEADER_ELECTIONS: &str = "replication.leader.elections";
    /// Log-suffix catch-ups performed by recovered validators.
    pub const CATCH_UPS: &str = "replication.catch_ups";
    /// Histogram: proposal-to-quorum commit latency, in ticks.
    pub const COMMIT_LATENCY_TICKS: &str = "replication.commit.latency_ticks";
    /// Histogram: election delay charged to failed-over commits, ticks.
    pub const FAILOVER_TICKS: &str = "replication.failover.ticks";
}

/// Every fixed (non-family) canonical name, used by [`is_canonical`]
/// and the workspace metric-hygiene tests.
pub const ALL_FIXED: &[&str] = &[
    EPOCH_COLLECT_NS,
    EPOCH_MERKLE_NS,
    EPOCH_SIGN_NS,
    EPOCH_APPEND_NS,
    EPOCH_COMMITS,
    EPOCH_ABORTS,
    EPOCH_BLOCKS_SEALED,
    EPOCH_TXS_SUBMITTED,
    EPOCH_CHAIN_HEIGHT,
    MODERATION_REPORTS_DEFERRED,
    MODERATION_REPORTS_REPLAYED,
    MODERATION_REPORTS_HELD,
    ESCAPE_GOVERNANCE,
    ESCAPE_REPUTATION,
    ESCAPE_IRB,
    PLATFORM_USERS,
    PLATFORM_TICK,
    TRACE_EVENTS_RECORDED,
    TRACE_EVENTS_DROPPED,
    TRACE_BUFFER_LEN,
    gateway::OPS_SUBMITTED,
    gateway::OPS_ACCEPTED,
    gateway::OPS_COMMITTED,
    gateway::OPS_FAILED,
    gateway::REJECTED_RATE_LIMITED,
    gateway::REJECTED_MAILBOX_FULL,
    gateway::REJECTED_SHARD_DOWN,
    gateway::REJECTED_UNKNOWN_USER,
    gateway::REJECTED_DUPLICATE_REGISTER,
    gateway::SETTLEMENT_ENQUEUED,
    gateway::SETTLEMENT_APPLIED,
    gateway::SETTLEMENT_REJECTED,
    gateway::SETTLEMENT_REQUEUED,
    gateway::SETTLEMENT_DEPTH,
    gateway::EPOCHS,
    gateway::SESSIONS,
    gateway::BATCH_SIZE,
    gateway::SHARD_COMMIT_FAILURES,
    gateway::SHARD_EPOCHS_SKIPPED,
    gateway::DP_SPENT_MICRO,
    gateway::DP_ADMITTED,
    gateway::DP_REFUSED,
    gateway::GOVERNANCE_DELEGATIONS,
    gateway::GOVERNANCE_QUADRATIC_VOTES,
    gateway::GOVERNANCE_APPEALS,
    net::CONNS_ACCEPTED,
    net::CONNS_CLOSED,
    net::CONNS_OPEN,
    net::BYTES_READ,
    net::BYTES_WRITTEN,
    net::FRAMES_DECODED,
    net::OPS_ADMITTED,
    net::OPS_REFUSED,
    net::BACKPRESSURE_PAUSES,
    net::EPOCHS_FIRED,
    net::SWEEPS,
    net::JOURNAL_ENTRIES,
    net::ADMISSION_NS,
    replication::BLOCKS_PROPOSED,
    replication::BLOCKS_COMMITTED,
    replication::ACKS_DELIVERED,
    replication::ACKS_LOST,
    replication::LEADER_ELECTIONS,
    replication::CATCH_UPS,
    replication::COMMIT_LATENCY_TICKS,
    replication::FAILOVER_TICKS,
    "twins.sync.updates_lost",
    "twins.sync.retransmissions",
    "twins.sync.recovered",
    "twins.sync.duplicates_dropped",
    "twins.sync.reconciliations",
    "twins.sync.forced_reconciliations",
];

/// One lowercase name segment: `[a-z0-9_-]+` (dash appears only in the
/// breaker-state label `half-open`).
fn is_segment(seg: &str) -> bool {
    !seg.is_empty()
        && seg
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

fn is_breaker_state(state: &str) -> bool {
    matches!(state, "closed" | "open" | "half-open")
}

/// Whether `name` is a canonical metric name: one of the fixed
/// constants above, or a well-formed member of a registered family
/// (`ops.<op>`, `module.<slot>.<kind>`, `breaker.<slot>.<state>`,
/// `gateway.shard.<i>.…`). The metric-hygiene tests run every name
/// found in a live snapshot through this gate, so a producer inventing
/// an ad-hoc string literal fails CI instead of drifting silently.
pub fn is_canonical(name: &str) -> bool {
    if ALL_FIXED.contains(&name) {
        return true;
    }
    if let Some(op) = name.strip_prefix(OPS_PREFIX) {
        return is_segment(op);
    }
    if let Some(rest) = name.strip_prefix("module.") {
        return match rest.rsplit_once('.') {
            Some((slot, kind)) => {
                is_segment(slot) && matches!(kind, "calls" | "refused" | "zombie" | "latency_ns")
            }
            None => false,
        };
    }
    if let Some(rest) = name.strip_prefix("breaker.") {
        return match rest.split_once('.') {
            Some((slot, state)) => is_segment(slot) && is_breaker_state(state),
            None => false,
        };
    }
    if let Some(rest) = name.strip_prefix("gateway.shard.") {
        let Some((index, kind)) = rest.split_once('.') else {
            return false;
        };
        if index.is_empty() || !index.chars().all(|c| c.is_ascii_digit()) {
            return false;
        }
        return match kind.strip_prefix("breaker.") {
            Some(state) => is_breaker_state(state),
            None => matches!(kind, "batch_ns" | "queue_depth"),
        };
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_format_stably() {
        assert_eq!(op("vote"), "ops.vote");
        assert_eq!(module_calls("moderation"), "module.moderation.calls");
        assert_eq!(module_refused("privacy"), "module.privacy.refused");
        assert_eq!(module_zombie("assets"), "module.assets.zombie");
        assert_eq!(module_latency("trust"), "module.trust.latency_ns");
        assert_eq!(breaker_transition("moderation", "open"), "breaker.moderation.open");
        assert_eq!(gateway::shard_batch_ns(3), "gateway.shard.3.batch_ns");
        assert_eq!(gateway::shard_queue_depth(0), "gateway.shard.0.queue_depth");
        assert_eq!(gateway::shard_breaker(2, "open"), "gateway.shard.2.breaker.open");
    }

    #[test]
    fn constants_keep_their_wire_values() {
        // These strings are a public contract: committed experiment
        // results and external dashboards key on them.
        assert_eq!(EPOCH_COMMITS, "epoch.commits");
        assert_eq!(EPOCH_TXS_SUBMITTED, "epoch.txs_submitted");
        assert_eq!(MODERATION_REPORTS_HELD, "moderation.reports_held");
        assert_eq!(PLATFORM_USERS, "platform.users");
        assert_eq!(gateway::OPS_COMMITTED, "gateway.ops.committed");
        assert_eq!(gateway::SETTLEMENT_ENQUEUED, "gateway.settlement.enqueued");
        assert_eq!(EPOCH_CHAIN_HEIGHT, "epoch.chain_height");
        assert_eq!(TRACE_EVENTS_RECORDED, "trace.events.recorded");
        assert_eq!(TRACE_EVENTS_DROPPED, "trace.events.dropped");
        assert_eq!(TRACE_BUFFER_LEN, "trace.buffer.len");
        assert_eq!(replication::BLOCKS_COMMITTED, "replication.blocks.committed");
        assert_eq!(replication::LEADER_ELECTIONS, "replication.leader.elections");
        assert_eq!(replication::COMMIT_LATENCY_TICKS, "replication.commit.latency_ticks");
        assert_eq!(net::CONNS_ACCEPTED, "net.conns.accepted");
        assert_eq!(net::FRAMES_DECODED, "net.frames.decoded");
        assert_eq!(net::BACKPRESSURE_PAUSES, "net.backpressure.pauses");
        assert_eq!(net::JOURNAL_ENTRIES, "net.journal.entries");
        assert_eq!(net::ADMISSION_NS, "net.admission_ns");
    }

    #[test]
    fn canonical_gate_accepts_constants_and_families() {
        for name in ALL_FIXED {
            assert!(is_canonical(name), "fixed name rejected: {name}");
        }
        assert!(is_canonical(&op("buy")));
        assert!(is_canonical(&module_calls("moderation")));
        assert!(is_canonical(&module_latency("privacy")));
        assert!(is_canonical(&breaker_transition("assets", "half-open")));
        assert!(is_canonical(&gateway::shard_batch_ns(7)));
        assert!(is_canonical(&gateway::shard_queue_depth(0)));
        assert!(is_canonical(&gateway::shard_breaker(2, "open")));
    }

    #[test]
    fn canonical_gate_rejects_drifted_names() {
        for name in [
            "gateway.ops.acepted",        // typo
            "ops.",                       // empty family member
            "module.moderation.latency",  // wrong kind
            "breaker.assets.sorta_open",  // invented state
            "gateway.shard.x.batch_ns",   // non-numeric shard
            "gateway.shard.3.jitter_ns",  // invented per-shard kind
            "Trace.events.recorded",      // case drift
            "totally.made.up",
        ] {
            assert!(!is_canonical(name), "drifted name accepted: {name}");
        }
    }
}
