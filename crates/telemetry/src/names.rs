//! Canonical metric names shared by every crate that records or reads
//! platform telemetry.
//!
//! The platform façade, the gateway, and the experiments all agree on
//! counter names *by construction*: the strings live here once, as
//! `pub const`s (for fixed names) and small formatting helpers (for
//! per-module / per-shard families). A snapshot consumer that asks for
//! [`EPOCH_COMMITS`] can never drift apart from the producer that
//! increments it, which is exactly the failure mode scattered string
//! literals invite.
//!
//! Conventions:
//!
//! * `ops.<op>` — platform façade operation invocation counters.
//! * `module.<slot>.{calls,refused,zombie,latency_ns}` — per-slot
//!   instruments (see [`module_calls`] and friends).
//! * `epoch.*` — epoch-commit counters and phase histograms.
//! * `moderation.*`, `escape.*`, `platform.*` — façade-level state.
//! * `breaker.<slot>.<state>` — breaker transition counters.
//! * `gateway.*` — session-gateway instruments (see [`gateway`]).
//! * `twins.sync.*` — twin sync-channel counters (attached hubs).

/// Prefix of every platform-operation counter (`ops.<op>`).
pub const OPS_PREFIX: &str = "ops.";

/// Counter name for one platform operation: `ops.<op>`.
pub fn op(name: &str) -> String {
    format!("{OPS_PREFIX}{name}")
}

/// Per-slot call counter: `module.<slot>.calls`.
pub fn module_calls(slot: &str) -> String {
    format!("module.{slot}.calls")
}

/// Per-slot fail-closed refusal counter: `module.<slot>.refused`.
pub fn module_refused(slot: &str) -> String {
    format!("module.{slot}.refused")
}

/// Per-slot zombie-pass counter: `module.<slot>.zombie`.
pub fn module_zombie(slot: &str) -> String {
    format!("module.{slot}.zombie")
}

/// Per-slot operation latency histogram: `module.<slot>.latency_ns`.
pub fn module_latency(slot: &str) -> String {
    format!("module.{slot}.latency_ns")
}

/// Breaker transition counter: `breaker.<slot>.<state-label>`.
pub fn breaker_transition(slot: &str, state: &str) -> String {
    format!("breaker.{slot}.{state}")
}

/// Epoch-commit collect-phase histogram.
pub const EPOCH_COLLECT_NS: &str = "epoch.collect_ns";
/// Epoch-commit merkle-phase histogram (per sealed block).
pub const EPOCH_MERKLE_NS: &str = "epoch.merkle_ns";
/// Epoch-commit sign-phase histogram (per sealed block).
pub const EPOCH_SIGN_NS: &str = "epoch.sign_ns";
/// Epoch-commit append-phase histogram (per sealed block).
pub const EPOCH_APPEND_NS: &str = "epoch.append_ns";
/// Completed epoch commits.
pub const EPOCH_COMMITS: &str = "epoch.commits";
/// Aborted epoch commits (rogue validator outlasted the retries).
pub const EPOCH_ABORTS: &str = "epoch.aborts";
/// Blocks sealed across all commits.
pub const EPOCH_BLOCKS_SEALED: &str = "epoch.blocks_sealed";
/// Transactions submitted to the mempool by commits.
pub const EPOCH_TXS_SUBMITTED: &str = "epoch.txs_submitted";

/// Moderation reports deferred while the slot was down.
pub const MODERATION_REPORTS_DEFERRED: &str = "moderation.reports_deferred";
/// Held moderation reports replayed after recovery.
pub const MODERATION_REPORTS_REPLAYED: &str = "moderation.reports_replayed";
/// Gauge: moderation reports currently held.
pub const MODERATION_REPORTS_HELD: &str = "moderation.reports_held";

/// Escape-hatch counter: direct governance access.
pub const ESCAPE_GOVERNANCE: &str = "escape.governance";
/// Escape-hatch counter: direct reputation access.
pub const ESCAPE_REPUTATION: &str = "escape.reputation";
/// Escape-hatch counter: direct review-board access.
pub const ESCAPE_IRB: &str = "escape.irb";

/// Gauge: registered users.
pub const PLATFORM_USERS: &str = "platform.users";
/// Gauge: current platform tick.
pub const PLATFORM_TICK: &str = "platform.tick";

/// Gateway (sharded session front door) instrument names.
///
/// Kept beside the platform names for the same anti-drift reason: E21
/// and the gateway integration tests read these counters back out of
/// snapshots produced by `metaverse-gateway`.
pub mod gateway {
    /// Ops offered to sessions (before admission control).
    pub const OPS_SUBMITTED: &str = "gateway.ops.submitted";
    /// Ops admitted into a session mailbox.
    pub const OPS_ACCEPTED: &str = "gateway.ops.accepted";
    /// Ops that executed successfully on a shard platform.
    pub const OPS_COMMITTED: &str = "gateway.ops.committed";
    /// Ops that reached a shard platform and were refused or failed.
    pub const OPS_FAILED: &str = "gateway.ops.failed";
    /// Admission refusals: token bucket empty.
    pub const REJECTED_RATE_LIMITED: &str = "gateway.rejected.rate_limited";
    /// Admission refusals: session mailbox full.
    pub const REJECTED_MAILBOX_FULL: &str = "gateway.rejected.mailbox_full";
    /// Admission refusals: the session's home shard breaker is open.
    pub const REJECTED_SHARD_DOWN: &str = "gateway.rejected.shard_down";
    /// Admission refusals: no session for the named user.
    pub const REJECTED_UNKNOWN_USER: &str = "gateway.rejected.unknown_user";
    /// Admission refusals: a second `Register` for an existing session.
    pub const REJECTED_DUPLICATE_REGISTER: &str = "gateway.rejected.duplicate_register";
    /// Cross-shard settlement entries enqueued.
    pub const SETTLEMENT_ENQUEUED: &str = "gateway.settlement.enqueued";
    /// Cross-shard settlement entries applied.
    pub const SETTLEMENT_APPLIED: &str = "gateway.settlement.applied";
    /// Cross-shard settlement entries rejected (refund path taken).
    pub const SETTLEMENT_REJECTED: &str = "gateway.settlement.rejected";
    /// Cross-shard settlement entries requeued (target module down).
    pub const SETTLEMENT_REQUEUED: &str = "gateway.settlement.requeued";
    /// Gauge: settlement entries currently in flight.
    pub const SETTLEMENT_DEPTH: &str = "gateway.settlement.depth";
    /// Router epochs executed.
    pub const EPOCHS: &str = "gateway.epochs";
    /// Gauge: connected sessions.
    pub const SESSIONS: &str = "gateway.sessions";
    /// Histogram: ops per shard batch.
    pub const BATCH_SIZE: &str = "gateway.batch.size";
    /// Shard commit failures observed by the router's breakers.
    pub const SHARD_COMMIT_FAILURES: &str = "gateway.shard.commit_failures";
    /// Shard epochs skipped because the shard breaker was open.
    pub const SHARD_EPOCHS_SKIPPED: &str = "gateway.shard.epochs_skipped";

    /// Per-shard batch execution latency histogram:
    /// `gateway.shard.<i>.batch_ns`.
    pub fn shard_batch_ns(shard: usize) -> String {
        format!("gateway.shard.{shard}.batch_ns")
    }

    /// Per-shard queue-depth gauge: `gateway.shard.<i>.queue_depth`.
    pub fn shard_queue_depth(shard: usize) -> String {
        format!("gateway.shard.{shard}.queue_depth")
    }

    /// Per-shard breaker transition counter:
    /// `gateway.shard.<i>.breaker.<state>`.
    pub fn shard_breaker(shard: usize, state: &str) -> String {
        format!("gateway.shard.{shard}.breaker.{state}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_format_stably() {
        assert_eq!(op("vote"), "ops.vote");
        assert_eq!(module_calls("moderation"), "module.moderation.calls");
        assert_eq!(module_refused("privacy"), "module.privacy.refused");
        assert_eq!(module_zombie("assets"), "module.assets.zombie");
        assert_eq!(module_latency("trust"), "module.trust.latency_ns");
        assert_eq!(breaker_transition("moderation", "open"), "breaker.moderation.open");
        assert_eq!(gateway::shard_batch_ns(3), "gateway.shard.3.batch_ns");
        assert_eq!(gateway::shard_queue_depth(0), "gateway.shard.0.queue_depth");
        assert_eq!(gateway::shard_breaker(2, "open"), "gateway.shard.2.breaker.open");
    }

    #[test]
    fn constants_keep_their_wire_values() {
        // These strings are a public contract: committed experiment
        // results and external dashboards key on them.
        assert_eq!(EPOCH_COMMITS, "epoch.commits");
        assert_eq!(EPOCH_TXS_SUBMITTED, "epoch.txs_submitted");
        assert_eq!(MODERATION_REPORTS_HELD, "moderation.reports_held");
        assert_eq!(PLATFORM_USERS, "platform.users");
        assert_eq!(gateway::OPS_COMMITTED, "gateway.ops.committed");
        assert_eq!(gateway::SETTLEMENT_ENQUEUED, "gateway.settlement.enqueued");
    }
}
