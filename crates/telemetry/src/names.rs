//! Canonical metric names shared by every crate that records or reads
//! platform telemetry.
//!
//! The platform façade, the gateway, and the experiments all agree on
//! counter names *by construction*: the strings live here once, as
//! `pub const`s (for fixed names) and small formatting helpers (for
//! per-module / per-shard families). A snapshot consumer that asks for
//! [`EPOCH_COMMITS`] can never drift apart from the producer that
//! increments it, which is exactly the failure mode scattered string
//! literals invite.
//!
//! Conventions:
//!
//! * `ops.<op>` — platform façade operation invocation counters.
//! * `module.<slot>.{calls,refused,zombie,latency_ns}` — per-slot
//!   instruments (see [`module_calls`] and friends).
//! * `epoch.*` — epoch-commit counters and phase histograms.
//! * `moderation.*`, `escape.*`, `platform.*` — façade-level state.
//! * `breaker.<slot>.<state>` — breaker transition counters.
//! * `gateway.*` — session-gateway instruments (see [`gateway`]).
//! * `twins.sync.*` — twin sync-channel counters (attached hubs).

/// Prefix of every platform-operation counter (`ops.<op>`).
pub const OPS_PREFIX: &str = "ops.";

/// Counter name for one platform operation: `ops.<op>`.
pub fn op(name: &str) -> String {
    format!("{OPS_PREFIX}{name}")
}

/// Per-slot call counter: `module.<slot>.calls`.
pub fn module_calls(slot: &str) -> String {
    format!("module.{slot}.calls")
}

/// Per-slot fail-closed refusal counter: `module.<slot>.refused`.
pub fn module_refused(slot: &str) -> String {
    format!("module.{slot}.refused")
}

/// Per-slot zombie-pass counter: `module.<slot>.zombie`.
pub fn module_zombie(slot: &str) -> String {
    format!("module.{slot}.zombie")
}

/// Per-slot operation latency histogram: `module.<slot>.latency_ns`.
pub fn module_latency(slot: &str) -> String {
    format!("module.{slot}.latency_ns")
}

/// Breaker transition counter: `breaker.<slot>.<state-label>`.
pub fn breaker_transition(slot: &str, state: &str) -> String {
    format!("breaker.{slot}.{state}")
}

/// Epoch-commit collect-phase histogram.
pub const EPOCH_COLLECT_NS: &str = "epoch.collect_ns";
/// Epoch-commit merkle-phase histogram (per sealed block).
pub const EPOCH_MERKLE_NS: &str = "epoch.merkle_ns";
/// Epoch-commit sign-phase histogram (per sealed block).
pub const EPOCH_SIGN_NS: &str = "epoch.sign_ns";
/// Epoch-commit append-phase histogram (per sealed block).
pub const EPOCH_APPEND_NS: &str = "epoch.append_ns";
/// Completed epoch commits.
pub const EPOCH_COMMITS: &str = "epoch.commits";
/// Aborted epoch commits (rogue validator outlasted the retries).
pub const EPOCH_ABORTS: &str = "epoch.aborts";
/// Blocks sealed across all commits.
pub const EPOCH_BLOCKS_SEALED: &str = "epoch.blocks_sealed";
/// Transactions submitted to the mempool by commits.
pub const EPOCH_TXS_SUBMITTED: &str = "epoch.txs_submitted";

/// Moderation reports deferred while the slot was down.
pub const MODERATION_REPORTS_DEFERRED: &str = "moderation.reports_deferred";
/// Held moderation reports replayed after recovery.
pub const MODERATION_REPORTS_REPLAYED: &str = "moderation.reports_replayed";
/// Gauge: moderation reports currently held.
pub const MODERATION_REPORTS_HELD: &str = "moderation.reports_held";

/// Escape-hatch counter: direct governance access.
pub const ESCAPE_GOVERNANCE: &str = "escape.governance";
/// Escape-hatch counter: direct reputation access.
pub const ESCAPE_REPUTATION: &str = "escape.reputation";
/// Escape-hatch counter: direct review-board access.
pub const ESCAPE_IRB: &str = "escape.irb";

/// Gauge: registered users.
pub const PLATFORM_USERS: &str = "platform.users";
/// Gauge: current platform tick.
pub const PLATFORM_TICK: &str = "platform.tick";

/// Gauge: audit-chain height after the most recent epoch commit.
pub const EPOCH_CHAIN_HEIGHT: &str = "epoch.chain_height";

/// Trace events recorded into flight recorders (router + shards).
pub const TRACE_EVENTS_RECORDED: &str = "trace.events.recorded";
/// Trace events evicted from full flight-recorder rings.
pub const TRACE_EVENTS_DROPPED: &str = "trace.events.dropped";
/// Gauge: events currently held by the router-level flight recorder.
pub const TRACE_BUFFER_LEN: &str = "trace.buffer.len";
/// Gauge: the router-level flight recorder's ring capacity (0 when
/// tracing is disabled) — read beside `trace.events.dropped` to judge
/// how lossy the ring is.
pub const TRACE_BUFFER_CAPACITY: &str = "trace.buffer.capacity";

/// Ops-plane (heat accounting, stage-latency attribution, SLO engine)
/// instrument names.
pub mod ops_plane {
    /// Epoch heat samples folded into the sliding window.
    pub const HEAT_EPOCHS_FOLDED: &str = "ops_plane.heat.epochs_folded";
    /// Gauge: largest absolute per-shard skew in the window, milli.
    pub const HEAT_IMBALANCE_MILLI: &str = "ops_plane.heat.imbalance_milli";
    /// SLO objectives that crossed their threshold (trip edges).
    pub const SLO_TRIPS: &str = "ops_plane.slo.trips";
    /// SLO objectives that came back under their threshold.
    pub const SLO_RECOVERIES: &str = "ops_plane.slo.recoveries";
    /// Gauge: objectives currently tripped.
    pub const SLO_TRIPPED: &str = "ops_plane.slo.tripped";
    /// Stats queries served by the router's live stats endpoint.
    pub const STATS_QUERIES: &str = "ops_plane.stats.queries";
}

/// Gateway (sharded session front door) instrument names.
///
/// Kept beside the platform names for the same anti-drift reason: E21
/// and the gateway integration tests read these counters back out of
/// snapshots produced by `metaverse-gateway`.
pub mod gateway {
    /// Ops offered to sessions (before admission control).
    pub const OPS_SUBMITTED: &str = "gateway.ops.submitted";
    /// Ops admitted into a session mailbox.
    pub const OPS_ACCEPTED: &str = "gateway.ops.accepted";
    /// Ops that executed successfully on a shard platform.
    pub const OPS_COMMITTED: &str = "gateway.ops.committed";
    /// Ops that reached a shard platform and were refused or failed.
    pub const OPS_FAILED: &str = "gateway.ops.failed";
    /// Admission refusals: token bucket empty.
    pub const REJECTED_RATE_LIMITED: &str = "gateway.rejected.rate_limited";
    /// Admission refusals: session mailbox full.
    pub const REJECTED_MAILBOX_FULL: &str = "gateway.rejected.mailbox_full";
    /// Admission refusals: the session's home shard breaker is open.
    pub const REJECTED_SHARD_DOWN: &str = "gateway.rejected.shard_down";
    /// Admission refusals: no session for the named user.
    pub const REJECTED_UNKNOWN_USER: &str = "gateway.rejected.unknown_user";
    /// Admission refusals: a second `Register` for an existing session.
    pub const REJECTED_DUPLICATE_REGISTER: &str = "gateway.rejected.duplicate_register";
    /// Cross-shard settlement entries enqueued.
    pub const SETTLEMENT_ENQUEUED: &str = "gateway.settlement.enqueued";
    /// Cross-shard settlement entries applied.
    pub const SETTLEMENT_APPLIED: &str = "gateway.settlement.applied";
    /// Cross-shard settlement entries rejected (refund path taken).
    pub const SETTLEMENT_REJECTED: &str = "gateway.settlement.rejected";
    /// Cross-shard settlement entries requeued (target module down).
    pub const SETTLEMENT_REQUEUED: &str = "gateway.settlement.requeued";
    /// Gauge: settlement entries currently in flight.
    pub const SETTLEMENT_DEPTH: &str = "gateway.settlement.depth";
    /// Router epochs executed.
    pub const EPOCHS: &str = "gateway.epochs";
    /// Gauge: connected sessions.
    pub const SESSIONS: &str = "gateway.sessions";
    /// Histogram: ops per shard batch.
    pub const BATCH_SIZE: &str = "gateway.batch.size";
    /// Shard commit failures observed by the router's breakers.
    pub const SHARD_COMMIT_FAILURES: &str = "gateway.shard.commit_failures";
    /// Shard epochs skipped because the shard breaker was open.
    pub const SHARD_EPOCHS_SKIPPED: &str = "gateway.shard.epochs_skipped";
    /// Micro-epsilon debited from the global differential-privacy
    /// budget by admitted sensor releases.
    pub const DP_SPENT_MICRO: &str = "gateway.dp.spent_micro";
    /// Sensor releases admitted against the global DP budget.
    pub const DP_ADMITTED: &str = "gateway.dp.admitted";
    /// Sensor releases refused fail-closed because the global DP
    /// budget could not cover them.
    pub const DP_REFUSED: &str = "gateway.dp.refused";
    /// Liquid-democracy delegation changes applied across all shards
    /// at the merge barrier (revocations included).
    pub const GOVERNANCE_DELEGATIONS: &str = "gateway.governance.delegations";
    /// Credit-budgeted quadratic ballots that executed on a shard.
    pub const GOVERNANCE_QUADRATIC_VOTES: &str = "gateway.governance.quadratic_votes";
    /// Moderation appeals adjudicated on a shard.
    pub const GOVERNANCE_APPEALS: &str = "gateway.governance.appeals";

    /// Per-shard batch execution latency histogram:
    /// `gateway.shard.<i>.batch_ns`.
    pub fn shard_batch_ns(shard: usize) -> String {
        format!("gateway.shard.{shard}.batch_ns")
    }

    /// Per-shard queue-depth gauge: `gateway.shard.<i>.queue_depth`.
    pub fn shard_queue_depth(shard: usize) -> String {
        format!("gateway.shard.{shard}.queue_depth")
    }

    /// Per-shard breaker transition counter:
    /// `gateway.shard.<i>.breaker.<state>`.
    pub fn shard_breaker(shard: usize, state: &str) -> String {
        format!("gateway.shard.{shard}.breaker.{state}")
    }
}

/// Serving-layer (connection-oriented network front door) instrument
/// names, recorded by `metaverse-net`'s server hub.
pub mod net {
    /// Connections ever accepted.
    pub const CONNS_ACCEPTED: &str = "net.conns.accepted";
    /// Connections closed (any cause).
    pub const CONNS_CLOSED: &str = "net.conns.closed";
    /// Gauge: connections currently open or draining.
    pub const CONNS_OPEN: &str = "net.conns.open";
    /// Bytes read off client streams.
    pub const BYTES_READ: &str = "net.bytes.read";
    /// Ack bytes written back to clients.
    pub const BYTES_WRITTEN: &str = "net.bytes.written";
    /// Complete frames reassembled.
    pub const FRAMES_DECODED: &str = "net.frames.decoded";
    /// Offers the ingress admitted.
    pub const OPS_ADMITTED: &str = "net.ops.admitted";
    /// Offers the ingress refused (transparent retries included).
    pub const OPS_REFUSED: &str = "net.ops.refused";
    /// Connections parked for admission backpressure.
    pub const BACKPRESSURE_PAUSES: &str = "net.backpressure.pauses";
    /// Epoch boundaries the server fired into its ingress.
    pub const EPOCHS_FIRED: &str = "net.epochs.fired";
    /// Readiness sweeps performed.
    pub const SWEEPS: &str = "net.sweeps";
    /// Admission-journal records written (offers + epoch markers).
    pub const JOURNAL_ENTRIES: &str = "net.journal.entries";
    /// Histogram: wall-clock nanoseconds per ingress call (reporting
    /// only — no control flow reads it).
    pub const ADMISSION_NS: &str = "net.admission_ns";
    /// Stats-query admin frames served back over connections.
    pub const STATS_SERVED: &str = "net.stats.served";
}

/// Replication (per-shard quorum-commit cluster) instrument names.
pub mod replication {
    /// Blocks proposed by cluster leaders.
    pub const BLOCKS_PROPOSED: &str = "replication.blocks.proposed";
    /// Blocks that reached quorum commit.
    pub const BLOCKS_COMMITTED: &str = "replication.blocks.committed";
    /// Follower acks delivered to leaders.
    pub const ACKS_DELIVERED: &str = "replication.acks.delivered";
    /// Follower acks lost to drops, crashes, or partitions.
    pub const ACKS_LOST: &str = "replication.acks.lost";
    /// Leader elections forced by an unreachable leader.
    pub const LEADER_ELECTIONS: &str = "replication.leader.elections";
    /// Log-suffix catch-ups performed by recovered validators.
    pub const CATCH_UPS: &str = "replication.catch_ups";
    /// Histogram: proposal-to-quorum commit latency, in ticks.
    pub const COMMIT_LATENCY_TICKS: &str = "replication.commit.latency_ticks";
    /// Histogram: election delay charged to failed-over commits, ticks.
    pub const FAILOVER_TICKS: &str = "replication.failover.ticks";
}

/// Every fixed (non-family) canonical name, used by [`is_canonical`]
/// and the workspace metric-hygiene tests.
pub const ALL_FIXED: &[&str] = &[
    EPOCH_COLLECT_NS,
    EPOCH_MERKLE_NS,
    EPOCH_SIGN_NS,
    EPOCH_APPEND_NS,
    EPOCH_COMMITS,
    EPOCH_ABORTS,
    EPOCH_BLOCKS_SEALED,
    EPOCH_TXS_SUBMITTED,
    EPOCH_CHAIN_HEIGHT,
    MODERATION_REPORTS_DEFERRED,
    MODERATION_REPORTS_REPLAYED,
    MODERATION_REPORTS_HELD,
    ESCAPE_GOVERNANCE,
    ESCAPE_REPUTATION,
    ESCAPE_IRB,
    PLATFORM_USERS,
    PLATFORM_TICK,
    TRACE_EVENTS_RECORDED,
    TRACE_EVENTS_DROPPED,
    TRACE_BUFFER_LEN,
    TRACE_BUFFER_CAPACITY,
    ops_plane::HEAT_EPOCHS_FOLDED,
    ops_plane::HEAT_IMBALANCE_MILLI,
    ops_plane::SLO_TRIPS,
    ops_plane::SLO_RECOVERIES,
    ops_plane::SLO_TRIPPED,
    ops_plane::STATS_QUERIES,
    gateway::OPS_SUBMITTED,
    gateway::OPS_ACCEPTED,
    gateway::OPS_COMMITTED,
    gateway::OPS_FAILED,
    gateway::REJECTED_RATE_LIMITED,
    gateway::REJECTED_MAILBOX_FULL,
    gateway::REJECTED_SHARD_DOWN,
    gateway::REJECTED_UNKNOWN_USER,
    gateway::REJECTED_DUPLICATE_REGISTER,
    gateway::SETTLEMENT_ENQUEUED,
    gateway::SETTLEMENT_APPLIED,
    gateway::SETTLEMENT_REJECTED,
    gateway::SETTLEMENT_REQUEUED,
    gateway::SETTLEMENT_DEPTH,
    gateway::EPOCHS,
    gateway::SESSIONS,
    gateway::BATCH_SIZE,
    gateway::SHARD_COMMIT_FAILURES,
    gateway::SHARD_EPOCHS_SKIPPED,
    gateway::DP_SPENT_MICRO,
    gateway::DP_ADMITTED,
    gateway::DP_REFUSED,
    gateway::GOVERNANCE_DELEGATIONS,
    gateway::GOVERNANCE_QUADRATIC_VOTES,
    gateway::GOVERNANCE_APPEALS,
    net::CONNS_ACCEPTED,
    net::CONNS_CLOSED,
    net::CONNS_OPEN,
    net::BYTES_READ,
    net::BYTES_WRITTEN,
    net::FRAMES_DECODED,
    net::OPS_ADMITTED,
    net::OPS_REFUSED,
    net::BACKPRESSURE_PAUSES,
    net::EPOCHS_FIRED,
    net::SWEEPS,
    net::JOURNAL_ENTRIES,
    net::ADMISSION_NS,
    net::STATS_SERVED,
    replication::BLOCKS_PROPOSED,
    replication::BLOCKS_COMMITTED,
    replication::ACKS_DELIVERED,
    replication::ACKS_LOST,
    replication::LEADER_ELECTIONS,
    replication::CATCH_UPS,
    replication::COMMIT_LATENCY_TICKS,
    replication::FAILOVER_TICKS,
    "twins.sync.updates_lost",
    "twins.sync.retransmissions",
    "twins.sync.recovered",
    "twins.sync.duplicates_dropped",
    "twins.sync.reconciliations",
    "twins.sync.forced_reconciliations",
];

/// One lowercase name segment: `[a-z0-9_-]+` (dash appears only in the
/// breaker-state label `half-open`).
fn is_segment(seg: &str) -> bool {
    !seg.is_empty()
        && seg
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

fn is_breaker_state(state: &str) -> bool {
    matches!(state, "closed" | "open" | "half-open")
}

/// Whether `name` is a canonical metric name: one of the fixed
/// constants above, or a well-formed member of a registered family
/// (`ops.<op>`, `module.<slot>.<kind>`, `breaker.<slot>.<state>`,
/// `gateway.shard.<i>.…`). The metric-hygiene tests run every name
/// found in a live snapshot through this gate, so a producer inventing
/// an ad-hoc string literal fails CI instead of drifting silently.
pub fn is_canonical(name: &str) -> bool {
    if ALL_FIXED.contains(&name) {
        return true;
    }
    if let Some(op) = name.strip_prefix(OPS_PREFIX) {
        return is_segment(op);
    }
    if let Some(rest) = name.strip_prefix("module.") {
        return match rest.rsplit_once('.') {
            Some((slot, kind)) => {
                is_segment(slot) && matches!(kind, "calls" | "refused" | "zombie" | "latency_ns")
            }
            None => false,
        };
    }
    if let Some(rest) = name.strip_prefix("breaker.") {
        return match rest.split_once('.') {
            Some((slot, state)) => is_segment(slot) && is_breaker_state(state),
            None => false,
        };
    }
    if let Some(rest) = name.strip_prefix("gateway.shard.") {
        let Some((index, kind)) = rest.split_once('.') else {
            return false;
        };
        if index.is_empty() || !index.chars().all(|c| c.is_ascii_digit()) {
            return false;
        }
        return match kind.strip_prefix("breaker.") {
            Some(state) => is_breaker_state(state),
            None => matches!(kind, "batch_ns" | "queue_depth"),
        };
    }
    false
}

/// One-line human description of a canonical metric, for `# HELP`
/// lines in the Prometheus exposition. Every fixed name and every
/// well-formed family member has one; unknown names return `None` (the
/// exporter then emits no HELP line rather than inventing text). The
/// metric-hygiene gate requires a description for every instrument a
/// live platform or gateway registers, so a new instrument cannot ship
/// undocumented.
pub fn description(name: &str) -> Option<&'static str> {
    let fixed = match name {
        _ if name == EPOCH_COLLECT_NS => "Epoch-commit collect-phase wall nanoseconds",
        _ if name == EPOCH_MERKLE_NS => "Epoch-commit merkle-phase wall nanoseconds per sealed block",
        _ if name == EPOCH_SIGN_NS => "Epoch-commit sign-phase wall nanoseconds per sealed block",
        _ if name == EPOCH_APPEND_NS => "Epoch-commit append-phase wall nanoseconds per sealed block",
        _ if name == EPOCH_COMMITS => "Completed epoch commits",
        _ if name == EPOCH_ABORTS => "Aborted epoch commits (rogue validator outlasted retries)",
        _ if name == EPOCH_BLOCKS_SEALED => "Blocks sealed across all epoch commits",
        _ if name == EPOCH_TXS_SUBMITTED => "Transactions submitted to the mempool by epoch commits",
        _ if name == EPOCH_CHAIN_HEIGHT => "Audit-chain height after the most recent epoch commit",
        _ if name == MODERATION_REPORTS_DEFERRED => "Moderation reports deferred while the slot was down",
        _ if name == MODERATION_REPORTS_REPLAYED => "Held moderation reports replayed after recovery",
        _ if name == MODERATION_REPORTS_HELD => "Moderation reports currently held",
        _ if name == ESCAPE_GOVERNANCE => "Escape-hatch uses: direct governance access",
        _ if name == ESCAPE_REPUTATION => "Escape-hatch uses: direct reputation access",
        _ if name == ESCAPE_IRB => "Escape-hatch uses: direct review-board access",
        _ if name == PLATFORM_USERS => "Registered users",
        _ if name == PLATFORM_TICK => "Current platform logical tick",
        _ if name == TRACE_EVENTS_RECORDED => "Trace events recorded into flight recorders",
        _ if name == TRACE_EVENTS_DROPPED => "Trace events evicted from full flight-recorder rings",
        _ if name == TRACE_BUFFER_LEN => "Events currently held by the router flight recorder",
        _ if name == TRACE_BUFFER_CAPACITY => "Router flight-recorder ring capacity (0 = tracing disabled)",
        _ if name == ops_plane::HEAT_EPOCHS_FOLDED => "Epoch heat samples folded into the sliding window",
        _ if name == ops_plane::HEAT_IMBALANCE_MILLI => "Largest absolute per-shard load skew in the heat window, milli",
        _ if name == ops_plane::SLO_TRIPS => "SLO objectives that crossed their threshold (trip edges)",
        _ if name == ops_plane::SLO_RECOVERIES => "SLO objectives that came back under their threshold",
        _ if name == ops_plane::SLO_TRIPPED => "SLO objectives currently tripped",
        _ if name == ops_plane::STATS_QUERIES => "Stats queries served by the router live stats endpoint",
        _ if name == gateway::OPS_SUBMITTED => "Ops offered to sessions before admission control",
        _ if name == gateway::OPS_ACCEPTED => "Ops admitted into a session mailbox",
        _ if name == gateway::OPS_COMMITTED => "Ops that executed successfully on a shard platform",
        _ if name == gateway::OPS_FAILED => "Ops that reached a shard platform and were refused or failed",
        _ if name == gateway::REJECTED_RATE_LIMITED => "Admission refusals: token bucket empty",
        _ if name == gateway::REJECTED_MAILBOX_FULL => "Admission refusals: session mailbox full",
        _ if name == gateway::REJECTED_SHARD_DOWN => "Admission refusals: home shard breaker open",
        _ if name == gateway::REJECTED_UNKNOWN_USER => "Admission refusals: no session for the named user",
        _ if name == gateway::REJECTED_DUPLICATE_REGISTER => "Admission refusals: duplicate Register for an existing session",
        _ if name == gateway::SETTLEMENT_ENQUEUED => "Cross-shard settlement entries enqueued",
        _ if name == gateway::SETTLEMENT_APPLIED => "Cross-shard settlement entries applied",
        _ if name == gateway::SETTLEMENT_REJECTED => "Cross-shard settlement entries rejected (refund path)",
        _ if name == gateway::SETTLEMENT_REQUEUED => "Cross-shard settlement entries requeued (target module down)",
        _ if name == gateway::SETTLEMENT_DEPTH => "Settlement entries currently in flight",
        _ if name == gateway::EPOCHS => "Router epochs executed",
        _ if name == gateway::SESSIONS => "Connected sessions",
        _ if name == gateway::BATCH_SIZE => "Ops per shard batch",
        _ if name == gateway::SHARD_COMMIT_FAILURES => "Shard commit failures observed by router breakers",
        _ if name == gateway::SHARD_EPOCHS_SKIPPED => "Shard epochs skipped while the shard breaker was open",
        _ if name == gateway::DP_SPENT_MICRO => "Micro-epsilon debited from the global DP budget",
        _ if name == gateway::DP_ADMITTED => "Sensor releases admitted against the global DP budget",
        _ if name == gateway::DP_REFUSED => "Sensor releases refused fail-closed on DP budget exhaustion",
        _ if name == gateway::GOVERNANCE_DELEGATIONS => "Delegation changes applied across shards at the merge barrier",
        _ if name == gateway::GOVERNANCE_QUADRATIC_VOTES => "Credit-budgeted quadratic ballots executed on a shard",
        _ if name == gateway::GOVERNANCE_APPEALS => "Moderation appeals adjudicated on a shard",
        _ if name == net::CONNS_ACCEPTED => "Connections ever accepted",
        _ if name == net::CONNS_CLOSED => "Connections closed, any cause",
        _ if name == net::CONNS_OPEN => "Connections currently open or draining",
        _ if name == net::BYTES_READ => "Bytes read off client streams",
        _ if name == net::BYTES_WRITTEN => "Ack bytes written back to clients",
        _ if name == net::FRAMES_DECODED => "Complete frames reassembled",
        _ if name == net::OPS_ADMITTED => "Offers the ingress admitted",
        _ if name == net::OPS_REFUSED => "Offers the ingress refused, transparent retries included",
        _ if name == net::BACKPRESSURE_PAUSES => "Connections parked for admission backpressure",
        _ if name == net::EPOCHS_FIRED => "Epoch boundaries the server fired into its ingress",
        _ if name == net::SWEEPS => "Readiness sweeps performed",
        _ if name == net::JOURNAL_ENTRIES => "Admission-journal records written",
        _ if name == net::ADMISSION_NS => "Wall nanoseconds per ingress call, reporting only",
        _ if name == net::STATS_SERVED => "Stats-query admin frames served back over connections",
        _ if name == replication::BLOCKS_PROPOSED => "Blocks proposed by cluster leaders",
        _ if name == replication::BLOCKS_COMMITTED => "Blocks that reached quorum commit",
        _ if name == replication::ACKS_DELIVERED => "Follower acks delivered to leaders",
        _ if name == replication::ACKS_LOST => "Follower acks lost to drops, crashes, or partitions",
        _ if name == replication::LEADER_ELECTIONS => "Leader elections forced by an unreachable leader",
        _ if name == replication::CATCH_UPS => "Log-suffix catch-ups performed by recovered validators",
        _ if name == replication::COMMIT_LATENCY_TICKS => "Proposal-to-quorum commit latency, ticks",
        _ if name == replication::FAILOVER_TICKS => "Election delay charged to failed-over commits, ticks",
        "twins.sync.updates_lost" => "Twin sync updates lost in transit",
        "twins.sync.retransmissions" => "Twin sync retransmissions after a missed ack",
        "twins.sync.recovered" => "Twin sync updates recovered by retransmission",
        "twins.sync.duplicates_dropped" => "Duplicate twin sync updates dropped by version dedup",
        "twins.sync.reconciliations" => "Twin state reconciliations",
        "twins.sync.forced_reconciliations" => "Twin reconciliations forced after repeated divergence",
        _ => "",
    };
    if !fixed.is_empty() {
        return Some(fixed);
    }
    if !is_canonical(name) {
        return None;
    }
    // Family members share one description per family: the member is
    // identified by its name, the family by its shape.
    if name.starts_with(OPS_PREFIX) {
        return Some("Platform facade operation invocations");
    }
    if name.starts_with("module.") {
        return match name.rsplit_once('.').map(|(_, kind)| kind) {
            Some("calls") => Some("Module slot calls"),
            Some("refused") => Some("Module slot fail-closed refusals"),
            Some("zombie") => Some("Module slot zombie passes"),
            Some("latency_ns") => Some("Module slot operation latency, wall nanoseconds"),
            _ => None,
        };
    }
    if name.starts_with("breaker.") {
        return Some("Circuit-breaker transitions into the named state");
    }
    if name.starts_with("gateway.shard.") {
        if name.ends_with(".batch_ns") {
            return Some("Shard batch execution latency, wall nanoseconds");
        }
        if name.ends_with(".queue_depth") {
            return Some("Ops queued for the shard at the epoch barrier");
        }
        return Some("Shard breaker transitions into the named state");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_format_stably() {
        assert_eq!(op("vote"), "ops.vote");
        assert_eq!(module_calls("moderation"), "module.moderation.calls");
        assert_eq!(module_refused("privacy"), "module.privacy.refused");
        assert_eq!(module_zombie("assets"), "module.assets.zombie");
        assert_eq!(module_latency("trust"), "module.trust.latency_ns");
        assert_eq!(breaker_transition("moderation", "open"), "breaker.moderation.open");
        assert_eq!(gateway::shard_batch_ns(3), "gateway.shard.3.batch_ns");
        assert_eq!(gateway::shard_queue_depth(0), "gateway.shard.0.queue_depth");
        assert_eq!(gateway::shard_breaker(2, "open"), "gateway.shard.2.breaker.open");
    }

    #[test]
    fn constants_keep_their_wire_values() {
        // These strings are a public contract: committed experiment
        // results and external dashboards key on them.
        assert_eq!(EPOCH_COMMITS, "epoch.commits");
        assert_eq!(EPOCH_TXS_SUBMITTED, "epoch.txs_submitted");
        assert_eq!(MODERATION_REPORTS_HELD, "moderation.reports_held");
        assert_eq!(PLATFORM_USERS, "platform.users");
        assert_eq!(gateway::OPS_COMMITTED, "gateway.ops.committed");
        assert_eq!(gateway::SETTLEMENT_ENQUEUED, "gateway.settlement.enqueued");
        assert_eq!(EPOCH_CHAIN_HEIGHT, "epoch.chain_height");
        assert_eq!(TRACE_EVENTS_RECORDED, "trace.events.recorded");
        assert_eq!(TRACE_EVENTS_DROPPED, "trace.events.dropped");
        assert_eq!(TRACE_BUFFER_LEN, "trace.buffer.len");
        assert_eq!(replication::BLOCKS_COMMITTED, "replication.blocks.committed");
        assert_eq!(replication::LEADER_ELECTIONS, "replication.leader.elections");
        assert_eq!(replication::COMMIT_LATENCY_TICKS, "replication.commit.latency_ticks");
        assert_eq!(net::CONNS_ACCEPTED, "net.conns.accepted");
        assert_eq!(net::FRAMES_DECODED, "net.frames.decoded");
        assert_eq!(net::BACKPRESSURE_PAUSES, "net.backpressure.pauses");
        assert_eq!(net::JOURNAL_ENTRIES, "net.journal.entries");
        assert_eq!(net::ADMISSION_NS, "net.admission_ns");
    }

    #[test]
    fn canonical_gate_accepts_constants_and_families() {
        for name in ALL_FIXED {
            assert!(is_canonical(name), "fixed name rejected: {name}");
        }
        assert!(is_canonical(&op("buy")));
        assert!(is_canonical(&module_calls("moderation")));
        assert!(is_canonical(&module_latency("privacy")));
        assert!(is_canonical(&breaker_transition("assets", "half-open")));
        assert!(is_canonical(&gateway::shard_batch_ns(7)));
        assert!(is_canonical(&gateway::shard_queue_depth(0)));
        assert!(is_canonical(&gateway::shard_breaker(2, "open")));
    }

    #[test]
    fn every_fixed_name_and_family_member_has_a_description() {
        for name in ALL_FIXED {
            assert!(description(name).is_some(), "undescribed fixed name: {name}");
        }
        assert!(description(&op("buy")).is_some());
        assert!(description(&module_calls("moderation")).is_some());
        assert!(description(&module_latency("privacy")).is_some());
        assert!(description(&breaker_transition("assets", "half-open")).is_some());
        assert!(description(&gateway::shard_batch_ns(7)).is_some());
        assert!(description(&gateway::shard_queue_depth(0)).is_some());
        assert!(description(&gateway::shard_breaker(2, "open")).is_some());
        // Unknown names get no HELP text rather than invented prose.
        assert_eq!(description("totally.made.up"), None);
        assert_eq!(description("gateway.shard.3.jitter_ns"), None);
        assert_eq!(description(""), None);
        // Descriptions are exposition-safe: single line, no escaping
        // needed.
        for name in ALL_FIXED {
            let d = description(name).unwrap();
            assert!(!d.contains('\n') && !d.contains('\\'), "{name}: {d}");
        }
    }

    #[test]
    fn canonical_gate_rejects_drifted_names() {
        for name in [
            "gateway.ops.acepted",        // typo
            "ops.",                       // empty family member
            "module.moderation.latency",  // wrong kind
            "breaker.assets.sorta_open",  // invented state
            "gateway.shard.x.batch_ns",   // non-numeric shard
            "gateway.shard.3.jitter_ns",  // invented per-shard kind
            "Trace.events.recorded",      // case drift
            "totally.made.up",
        ] {
            assert!(!is_canonical(name), "drifted name accepted: {name}");
        }
    }
}
