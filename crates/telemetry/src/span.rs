//! RAII span timers.

use std::time::Instant;

use crate::Histogram;

/// A wall-clock span: created against a histogram, records its elapsed
/// nanoseconds into it when dropped (or explicitly via
/// [`Span::finish`]). Spans nest freely — each owns only its own start
/// instant — and a span from a disabled hub never reads the clock.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn new(histogram: Histogram) -> Self {
        let start = histogram.cell.is_some().then(Instant::now);
        Span { histogram, start }
    }

    /// Ends the span now, returning the elapsed nanoseconds it recorded
    /// (`None` for a disabled span).
    pub fn finish(mut self) -> Option<u64> {
        self.record()
    }

    fn record(&mut self) -> Option<u64> {
        let start = self.start.take()?;
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(nanos);
        Some(nanos)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use crate::TelemetryHub;

    #[test]
    fn span_records_on_drop_and_nests() {
        let hub = TelemetryHub::new();
        {
            let _outer = hub.span("outer_ns");
            for _ in 0..3 {
                let _inner = hub.span("inner_ns");
            }
        }
        assert_eq!(hub.histogram("outer_ns").count(), 1);
        assert_eq!(hub.histogram("inner_ns").count(), 3);
    }

    #[test]
    fn finish_records_exactly_once() {
        let hub = TelemetryHub::new();
        let span = hub.span("once_ns");
        assert!(span.finish().is_some());
        assert_eq!(hub.histogram("once_ns").count(), 1, "drop after finish is a no-op");
    }

    #[test]
    fn disabled_span_is_free() {
        let hub = TelemetryHub::disabled();
        let span = hub.span("never_ns");
        assert!(span.finish().is_none());
    }
}
