//! The instruments: counters, gauges, and log-scale histograms.
//!
//! Handles are thin `Option<Arc<…>>` wrappers: a handle from a disabled
//! [`crate::TelemetryHub`] carries `None` and every operation is a no-op,
//! so instrumented code pays one branch when telemetry is off and one
//! relaxed atomic op when it is on.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Number of log₂ buckets a histogram carries. Bucket 0 holds zeros;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 64 buckets cover
/// the whole `u64` range, so nanosecond latencies from sub-nanosecond
/// to centuries all land somewhere.
pub const BUCKET_COUNT: usize = 64;

/// Index of the log₂ bucket for a value.
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKET_COUNT - 1)
    }
}

/// Inclusive lower bound of bucket `i` (see [`BUCKET_COUNT`]).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    pub(crate) value: AtomicU64,
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    pub(crate) value: AtomicI64,
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Relaxed) },
            max: self.max.load(Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Relaxed);
                    (n > 0).then_some((bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A no-op counter (what a disabled hub hands out).
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(n, Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.value.load(Relaxed))
    }
}

/// A signed level that can rise and fall (queue depths, held reports,
/// registered users).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Sets the gauge to an absolute level.
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.value.store(value, Relaxed);
        }
    }

    /// Moves the gauge by a signed delta.
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(delta, Relaxed);
        }
    }

    /// Current level (0 for a no-op gauge).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.value.load(Relaxed))
    }
}

/// A fixed log₂-bucket histogram. Values are whatever unit the caller
/// records — the platform records nanoseconds for latency series and
/// raw counts elsewhere.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Histogram { cell: None }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Starts a wall-clock span recording into this histogram on drop.
    pub fn start_span(&self) -> crate::Span {
        crate::Span::new(self.clone())
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count.load(Relaxed))
    }

    /// Point-in-time view of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.as_ref().map(|c| c.snapshot()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        for i in 1..BUCKET_COUNT {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound lands in its own bucket");
        }
    }

    #[test]
    fn histogram_tracks_extremes_and_sum() {
        let cell = HistogramCell::default();
        for v in [0u64, 1, 7, 1024, 5] {
            cell.record(v);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1037);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        let total: u64 = snap.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 5, "every observation lands in exactly one bucket");
    }

    #[test]
    fn noop_instruments_do_nothing() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let snap = HistogramCell::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0, "empty histogram reports min 0, not u64::MAX");
        assert!(snap.buckets.is_empty());
    }
}
