//! Dependency-free exporters: Prometheus text exposition for
//! [`TelemetrySnapshot`]s and JSONL for [`TraceEvent`] streams.
//!
//! Both formats are plain strings built by hand (the offline serde
//! stand-in cannot serialise; see `third_party/README.md`), and both
//! are deterministic: snapshots iterate `BTreeMap`s, trace events are
//! rendered in recording order, and nothing here reads a clock. The
//! golden-file tests in the gateway crate pin the exact bytes.
//!
//! ## Prometheus exposition
//!
//! Metric names in this workspace are dotted (`gateway.ops.accepted`);
//! Prometheus names may only contain `[a-zA-Z0-9_:]`, so every invalid
//! character is rewritten to `_` ([`sanitize_metric_name`]). Label
//! values escape `\`, `"`, and newlines per the exposition format.
//! Histograms render as cumulative `_bucket{le="…"}` series derived
//! from this crate's log₂ buckets (a bucket with inclusive lower bound
//! `b` covers `[b, 2b)`, so its inclusive upper bound is `2b - 1`),
//! plus the conventional `_sum` and `_count`.

use crate::names;
use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};
use crate::trace::{TraceEvent, TraceStage};

/// Rewrites a workspace metric name into the Prometheus alphabet:
/// the first byte must match `[a-zA-Z_:]` and the rest `[a-zA-Z0-9_:]`;
/// everything else (dots, dashes, unicode) becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",…}` from base labels plus one optional extra pair
/// (used for histogram `le`). Empty when there are no labels at all.
fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Emits a `# HELP` line when the (un-sanitized) workspace name has a
/// registered description in [`names::description`]; unknown names get
/// no HELP line rather than invented text.
fn push_help(out: &mut String, raw_name: &str, sanitized: &str) {
    if let Some(desc) = names::description(raw_name) {
        out.push_str(&format!("# HELP {sanitized} {desc}\n"));
    }
}

fn push_histogram(
    out: &mut String,
    raw_name: &str,
    name: &str,
    labels: &[(&str, &str)],
    h: &HistogramSnapshot,
) {
    push_help(out, raw_name, name);
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (bound, count) in &h.buckets {
        cumulative += count;
        let le = if *bound == 0 { 0 } else { 2 * bound - 1 };
        let le = le.to_string();
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            label_block(labels, Some(("le", &le)))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        label_block(labels, Some(("le", "+Inf"))),
        h.count
    ));
    out.push_str(&format!("{name}_sum{} {}\n", label_block(labels, None), h.sum));
    out.push_str(&format!("{name}_count{} {}\n", label_block(labels, None), h.count));
}

/// Renders a snapshot in the Prometheus text exposition format, one
/// `# TYPE` header per metric, metrics in name order (snapshots are
/// `BTreeMap`-backed, so the output is byte-stable for equal inputs).
pub fn prometheus(snapshot: &TelemetrySnapshot) -> String {
    prometheus_labeled(snapshot, &[])
}

/// [`prometheus`] with a set of labels stamped onto every sample (e.g.
/// `[("shard", "3"), ("run", "e23")]`).
pub fn prometheus_labeled(snapshot: &TelemetrySnapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (raw, value) in &snapshot.counters {
        let name = sanitize_metric_name(raw);
        push_help(&mut out, raw, &name);
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name}{} {value}\n", label_block(labels, None)));
    }
    for (raw, value) in &snapshot.gauges {
        let name = sanitize_metric_name(raw);
        push_help(&mut out, raw, &name);
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name}{} {value}\n", label_block(labels, None)));
    }
    for (raw, h) in &snapshot.histograms {
        push_histogram(&mut out, raw, &sanitize_metric_name(raw), labels, h);
    }
    out
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

/// Renders one trace event as a single-line JSON object. Stage fields
/// are flattened beside a `"stage"` discriminator; block references
/// render as lowercase hex. Every string field comes from a fixed
/// `&'static str` vocabulary, so no escaping is needed (and none is
/// performed).
pub fn trace_event_json(e: &TraceEvent) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"epoch\":{},\"tick\":{},\"stage\":\"{}\"",
        e.seq,
        e.epoch,
        e.tick,
        e.stage.label()
    );
    match &e.stage {
        TraceStage::Admitted { op, shard } => {
            out.push_str(&format!(",\"op\":\"{op}\",\"shard\":{shard}"));
        }
        TraceStage::RateLimited { op, retry_in_ticks } => {
            out.push_str(&format!(",\"op\":\"{op}\",\"retry_in_ticks\":{retry_in_ticks}"));
        }
        TraceStage::Refused { op, cause } => {
            out.push_str(&format!(",\"op\":\"{op}\",\"cause\":\"{cause}\""));
        }
        TraceStage::RoutedToShard { shard, waited_ticks } => {
            out.push_str(&format!(",\"shard\":{shard},\"waited_ticks\":{waited_ticks}"));
        }
        TraceStage::Deferred { op } => {
            out.push_str(&format!(",\"op\":\"{op}\""));
        }
        TraceStage::Requeued { shard } => {
            out.push_str(&format!(",\"shard\":{shard}"));
        }
        TraceStage::Executed { shard, ok } => {
            out.push_str(&format!(",\"shard\":{shard},\"ok\":{ok}"));
        }
        TraceStage::Escrowed { from_shard, to_shard, price } => {
            out.push_str(&format!(
                ",\"from_shard\":{from_shard},\"to_shard\":{to_shard},\"price\":{price}"
            ));
        }
        TraceStage::Settled { outcome, requeues } => {
            out.push_str(&format!(",\"outcome\":\"{outcome}\",\"requeues\":{requeues}"));
        }
        TraceStage::CommittedInEpoch { shard, height, block } => {
            out.push_str(&format!(",\"shard\":{shard},\"height\":{height},\"block\":\""));
            push_hex(&mut out, block);
            out.push('"');
        }
        TraceStage::BlockProposed { shard, height, term, leader } => {
            out.push_str(&format!(
                ",\"shard\":{shard},\"height\":{height},\"term\":{term},\"leader\":{leader}"
            ));
        }
        TraceStage::AckReceived { shard, height, node, latency_ticks } => {
            out.push_str(&format!(
                ",\"shard\":{shard},\"height\":{height},\"node\":{node},\"latency_ticks\":{latency_ticks}"
            ));
        }
        TraceStage::QuorumCommitted { shard, height, acks, latency_ticks } => {
            out.push_str(&format!(
                ",\"shard\":{shard},\"height\":{height},\"acks\":{acks},\"latency_ticks\":{latency_ticks}"
            ));
        }
        TraceStage::LeaderElected { shard, term, leader, failover_ticks } => {
            out.push_str(&format!(
                ",\"shard\":{shard},\"term\":{term},\"leader\":{leader},\"failover_ticks\":{failover_ticks}"
            ));
        }
        TraceStage::ConnAccepted { conn } => {
            out.push_str(&format!(",\"conn\":{conn}"));
        }
        TraceStage::FrameDecoded { conn, len } => {
            out.push_str(&format!(",\"conn\":{conn},\"len\":{len}"));
        }
        TraceStage::BackpressureParked { conn, resume_at_tick } => {
            out.push_str(&format!(",\"conn\":{conn},\"resume_at_tick\":{resume_at_tick}"));
        }
        TraceStage::ConnClosed { conn, cause } => {
            out.push_str(&format!(",\"conn\":{conn},\"cause\":\"{cause}\""));
        }
        TraceStage::PetFiltered { shard, samples_in, samples_out, epsilon_micro } => {
            out.push_str(&format!(
                ",\"shard\":{shard},\"samples_in\":{samples_in},\"samples_out\":{samples_out},\"epsilon_micro\":{epsilon_micro}"
            ));
        }
        TraceStage::BudgetRefused { op, requested_micro, remaining_micro } => {
            out.push_str(&format!(
                ",\"op\":\"{op}\",\"requested_micro\":{requested_micro},\"remaining_micro\":{remaining_micro}"
            ));
        }
        TraceStage::Delegated { shard, revoked } => {
            out.push_str(&format!(",\"shard\":{shard},\"revoked\":{revoked}"));
        }
        TraceStage::Escalated { shard, action } => {
            out.push_str(&format!(",\"shard\":{shard},\"action\":\"{action}\""));
        }
        TraceStage::SloTripped { objective, measured, threshold, burn_milli } => {
            out.push_str(&format!(
                ",\"objective\":\"{objective}\",\"measured\":{measured},\"threshold\":{threshold},\"burn_milli\":{burn_milli}"
            ));
        }
        TraceStage::SloRecovered { objective, measured, threshold } => {
            out.push_str(&format!(
                ",\"objective\":\"{objective}\",\"measured\":{measured},\"threshold\":{threshold}"
            ));
        }
    }
    out.push('}');
    out
}

/// Renders an event stream as JSONL: one object per line, each line
/// newline-terminated. An empty stream renders as an empty string.
pub fn trace_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&trace_event_json(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryHub;

    #[test]
    fn sanitization_rewrites_everything_outside_the_prometheus_alphabet() {
        assert_eq!(sanitize_metric_name("gateway.ops.accepted"), "gateway_ops_accepted");
        assert_eq!(sanitize_metric_name("gateway.shard.3.batch_ns"), "gateway_shard_3_batch_ns");
        assert_eq!(sanitize_metric_name("0day"), "_day", "leading digit is invalid");
        assert_eq!(sanitize_metric_name("weird métric\nname"), "weird_m_tric_name");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let hub = TelemetryHub::new();
        hub.counter("c").incr();
        let text = prometheus_labeled(&hub.snapshot(), &[("k", "a\"b")]);
        assert!(text.contains("c{k=\"a\\\"b\"} 1\n"), "{text}");
    }

    #[test]
    fn counters_gauges_and_histograms_expose_with_type_headers() {
        let hub = TelemetryHub::new();
        hub.counter("ops.total").add(7);
        hub.gauge("depth").set(-3);
        for v in [1u64, 2, 2, 900] {
            hub.histogram("lat.ns").record(v);
        }
        let text = prometheus(&hub.snapshot());
        assert!(text.contains("# TYPE ops_total counter\nops_total 7\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -3\n"));
        // log2 buckets: 1 → le 1, 2 (x2) → le 3, 900 → bucket 512 → le 1023.
        assert!(text.contains("# TYPE lat_ns histogram\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3\n"), "cumulative: {text}");
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_ns_sum 905\n"));
        assert!(text.contains("lat_ns_count 4\n"));
    }

    #[test]
    fn exposition_is_deterministic_and_labeled_uniformly() {
        let hub = TelemetryHub::new();
        hub.counter("b").incr();
        hub.counter("a").incr();
        hub.histogram("h").record(5);
        let labels = [("run", "e23"), ("shards", "8")];
        let one = prometheus_labeled(&hub.snapshot(), &labels);
        let two = prometheus_labeled(&hub.snapshot(), &labels);
        assert_eq!(one, two);
        assert!(one.find("a{").unwrap() < one.find("b{").unwrap(), "name order");
        for line in one.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.contains("run=\"e23\",shards=\"8\""), "unlabeled sample: {line}");
        }
    }

    #[test]
    fn canonical_names_get_help_lines_and_unknown_names_do_not() {
        let hub = TelemetryHub::new();
        hub.counter(crate::names::gateway::OPS_ACCEPTED).incr();
        hub.counter("not.a.canonical.name").incr();
        hub.gauge(crate::names::TRACE_BUFFER_CAPACITY).set(1024);
        hub.histogram(crate::names::net::ADMISSION_NS).record(5);
        let text = prometheus(&hub.snapshot());
        assert!(
            text.contains(
                "# HELP gateway_ops_accepted Ops admitted into a session mailbox\n# TYPE gateway_ops_accepted counter\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("# HELP trace_buffer_capacity Router flight-recorder ring capacity"),
            "{text}"
        );
        assert!(
            text.contains("# HELP net_admission_ns Wall nanoseconds per ingress call"),
            "{text}"
        );
        assert!(!text.contains("# HELP not_a_canonical_name"), "{text}");
        assert!(text.contains("# TYPE not_a_canonical_name counter\n"), "{text}");
    }

    #[test]
    fn slo_trace_stages_render_flat_json() {
        let e = TraceEvent {
            seq: 12,
            epoch: 3,
            tick: 12,
            stage: TraceStage::SloTripped {
                objective: "admission_p99",
                measured: 40,
                threshold: 8,
                burn_milli: 5000,
            },
        };
        assert_eq!(
            trace_event_json(&e),
            "{\"seq\":12,\"epoch\":3,\"tick\":12,\"stage\":\"slo_tripped\",\"objective\":\"admission_p99\",\"measured\":40,\"threshold\":8,\"burn_milli\":5000}"
        );
        let e = TraceEvent {
            seq: 20,
            epoch: 5,
            tick: 20,
            stage: TraceStage::SloRecovered { objective: "admission_p99", measured: 4, threshold: 8 },
        };
        assert!(trace_event_json(&e).contains("\"stage\":\"slo_recovered\""));
    }

    #[test]
    fn trace_events_render_one_json_object_per_line() {
        use crate::trace::TraceEvent;
        let events = vec![
            TraceEvent {
                seq: 4,
                epoch: 1,
                tick: 2,
                stage: TraceStage::Admitted { op: "buy", shard: 3 },
            },
            TraceEvent {
                seq: 4,
                epoch: 2,
                tick: 4,
                stage: TraceStage::CommittedInEpoch { shard: 3, height: 9, block: [0xab; 32] },
            },
        ];
        let jsonl = trace_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":4,\"epoch\":1,\"tick\":2,\"stage\":\"admitted\",\"op\":\"buy\",\"shard\":3}"
        );
        assert!(lines[1].ends_with(&format!("\"block\":\"{}\"}}", "ab".repeat(32))), "{jsonl}");
        assert!(jsonl.ends_with('\n'));
        assert_eq!(trace_jsonl([]), "");
    }
}
