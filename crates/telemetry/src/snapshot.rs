//! Serialisable, diffable views of a hub.

use std::collections::BTreeMap;

/// Point-in-time view of one histogram.
///
/// `buckets` holds only the non-empty log₂ buckets as
/// `(inclusive lower bound, observation count)` pairs, in ascending
/// bound order. `min`/`max` are exact over the histogram's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(lower_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the lower bound of the bucket in which the
    /// `q`-quantile observation falls (`q` clamped to `[0, 1]`). An
    /// empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return *bound;
            }
        }
        self.max
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram. Counts and sums subtract (saturating); `min`/`max`
    /// are lifetime values, so the later snapshot's are kept.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let earlier_by_bound: BTreeMap<u64, u64> = earlier.buckets.iter().copied().collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .filter_map(|(bound, n)| {
                    let d = n.saturating_sub(earlier_by_bound.get(bound).copied().unwrap_or(0));
                    (d > 0).then_some((*bound, d))
                })
                .collect(),
        }
    }

    /// Whether this snapshot is a monotone successor of `earlier`:
    /// count, sum, and every bucket count are ≥ the earlier ones.
    pub fn dominates(&self, earlier: &HistogramSnapshot) -> bool {
        if self.count < earlier.count || self.sum < earlier.sum {
            return false;
        }
        let by_bound: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        earlier
            .buckets
            .iter()
            .all(|(bound, n)| by_bound.get(bound).copied().unwrap_or(0) >= *n)
    }
}

/// A point-in-time view of every instrument in a hub: serialisable (see
/// [`TelemetrySnapshot::to_json`]) and diffable
/// ([`TelemetrySnapshot::delta`]). Counter and histogram series are
/// monotone across snapshots of the same hub — the invariant the
/// workspace proptests pin down.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram views by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// The difference since `earlier`: counters subtract (saturating,
    /// and instruments absent earlier count from zero), gauges keep
    /// their current level, histograms diff bucket-wise. The result is
    /// itself a valid snapshot — "what happened in this window".
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let d = match earlier.histograms.get(k) {
                        Some(e) => v.delta(e),
                        None => v.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Whether this snapshot is a monotone successor of `earlier`:
    /// every earlier counter still exists with a value ≥ its earlier
    /// one, and every earlier histogram is dominated (gauges may move
    /// freely). Two snapshots of one hub, taken in order, always
    /// satisfy this.
    pub fn dominates(&self, earlier: &TelemetrySnapshot) -> bool {
        earlier
            .counters
            .iter()
            .all(|(k, v)| self.counters.get(k).copied().unwrap_or(0) >= *v)
            && earlier
                .histograms
                .iter()
                .all(|(k, h)| self.histograms.get(k).is_some_and(|mine| mine.dominates(h)))
    }

    /// Sum of a counter family selected by prefix (e.g. every
    /// `"module."` counter).
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }

    /// Compact single-line JSON. Hand-rolled: the offline serde
    /// stand-in cannot serialise (see `third_party/README.md`), and the
    /// snapshot schema is small and stable. Schema:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,
    /// "sum":..,"min":..,"max":..,"buckets":[[bound,count],..]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_pairs(&mut out, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\"gauges\":{");
        push_pairs(&mut out, self.gauges.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\"histograms\":{");
        push_pairs(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(bound, n)| format!("[{bound},{n}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                let body = format!(
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                    h.count, h.sum, h.min, h.max, buckets
                );
                (k, body)
            }),
        );
        out.push_str("}}");
        out
    }
}

/// Appends `"key":value` pairs, comma-separated. Keys are instrument
/// names (registered from string literals in this workspace), escaped
/// for the two characters JSON forbids raw.
fn push_pairs<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (key, value) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        for c in key.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        out.push_str("\":");
        out.push_str(&value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryHub;

    fn hub_with_data() -> TelemetryHub {
        let hub = TelemetryHub::new();
        hub.counter("a").add(3);
        hub.gauge("g").set(-2);
        for v in [1u64, 2, 900] {
            hub.histogram("h").record(v);
        }
        hub
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let hub = hub_with_data();
        let before = hub.snapshot();
        hub.counter("a").add(4);
        hub.counter("new").incr();
        hub.histogram("h").record(2);
        let after = hub.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.counters["a"], 4);
        assert_eq!(delta.counters["new"], 1);
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].sum, 2);
        assert_eq!(delta.histograms["h"].buckets, vec![(2, 1)]);
    }

    #[test]
    fn dominance_is_ordered_snapshots() {
        let hub = hub_with_data();
        let before = hub.snapshot();
        hub.counter("a").incr();
        hub.histogram("h").record(5);
        let after = hub.snapshot();
        assert!(after.dominates(&before));
        assert!(!before.dominates(&after), "strict growth is not dominated backwards");
        assert!(after.dominates(&after), "dominance is reflexive");
    }

    #[test]
    fn quantiles_and_mean() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h = {
            let hub = TelemetryHub::new();
            for v in [1u64, 1, 1, 1000] {
                hub.histogram("h").record(v);
            }
            hub.snapshot().histograms["h"].clone()
        };
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 512, "top bucket lower bound");
        assert_eq!(h.mean(), 1003.0 / 4.0);
    }

    #[test]
    fn json_is_parseable_shape() {
        let snap = hub_with_data().snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{\"a\":3}"));
        assert!(json.contains("\"gauges\":{\"g\":-2}"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"buckets\":[[1,1],[2,1],[512,1]]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn counter_sum_by_prefix() {
        let hub = TelemetryHub::new();
        hub.counter("module.privacy.calls").add(2);
        hub.counter("module.assets.calls").add(3);
        hub.counter("epoch.commits").add(9);
        let snap = hub.snapshot();
        assert_eq!(snap.counter_sum("module."), 5);
        assert_eq!(snap.counter_sum("epoch."), 9);
        assert_eq!(snap.counter_sum("nope."), 0);
    }
}
