//! # metaverse-telemetry
//!
//! Platform observability for `metaverse-kit`: the paper's transparency
//! argument (§IV-C) applied to the platform's *own internals*. The same
//! way every governance decision is anchored to the ledger, every module
//! operation should be accountable in numbers — call counts, latencies,
//! breaker events, epoch-commit phase costs — so that "as fast as the
//! hardware allows" is a measured claim, not a hope.
//!
//! Everything here is dependency-free and cheap enough to leave on in
//! production paths:
//!
//! * [`Counter`] — a monotone `u64` (atomic, relaxed ordering).
//! * [`Gauge`] — a signed level that can move both ways.
//! * [`Histogram`] — fixed log₂-scale buckets (no allocation after
//!   registration, no external deps), tracking count/sum/min/max.
//! * [`Span`] — an RAII wall-clock timer recording its elapsed
//!   nanoseconds into a histogram on drop; spans nest freely.
//! * [`TelemetryHub`] — a clone-cheap (one `Arc`) registry handing out
//!   the above by name. A disabled hub hands out no-op instruments, so
//!   instrumented code never branches on "is telemetry on?".
//! * [`TelemetrySnapshot`] — a serialisable, diffable point-in-time view
//!   of every instrument; counters are monotone across snapshots, which
//!   the workspace proptests enforce.
//! * [`names`] — the canonical metric-name registry shared by producers
//!   (platform, gateway) and consumers (experiments, dashboards), so
//!   counter names cannot drift apart between them.
//! * [`trace`] / [`recorder`] — causal tracing: deterministic per-op
//!   [`TraceEvent`] chains recorded into bounded [`FlightRecorder`]
//!   rings, queried through [`TraceQuery`].
//! * [`export`] — dependency-free exporters: Prometheus text exposition
//!   for snapshots, JSONL for trace-event streams.
//! * [`heat`] / [`latency`] / [`slo`] — the ops plane: sliding
//!   tick-window load aggregates with per-shard skew ([`HeatWindow`]),
//!   stage-latency attribution folded from trace events
//!   ([`StageLatencyProfiler`]), and declarative tick-window
//!   objectives with edge-triggered trip events ([`SloEngine`]).
//!
//! ## Example
//!
//! ```
//! use metaverse_telemetry::TelemetryHub;
//!
//! let hub = TelemetryHub::new();
//! hub.counter("ops.vote").incr();
//! {
//!     let _span = hub.span("vote.latency_ns"); // records on drop
//! }
//! let before = hub.snapshot();
//! hub.counter("ops.vote").add(2);
//! let after = hub.snapshot();
//! assert!(after.dominates(&before));
//! assert_eq!(after.delta(&before).counters["ops.vote"], 2);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod heat;
pub mod hub;
pub mod latency;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use heat::{EpochHeatSample, GlobalHeat, HeatReport, HeatWindow, ShardHeat, ShardHeatSample};
pub use hub::TelemetryHub;
pub use latency::{LatencyReport, SlowOp, StageBudget, StageLatencyProfiler, TickHistogram};
pub use metrics::{Counter, Gauge, Histogram};
pub use recorder::{FlightRecorder, RecorderStats};
pub use slo::{SloEngine, SloInput, SloKind, SloObjective, SloSnapshot, SloTransition};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};
pub use span::Span;
pub use trace::{BlockRef, TraceEvent, TraceId, TraceQuery, TraceSpan, TraceStage};
