//! Declarative service-level objectives over tick-window heat.
//!
//! An objective binds a measured signal (admission p99, refusal rate,
//! DP-budget burn) to a threshold; the engine re-evaluates every
//! objective at each epoch barrier against the current heat window and
//! latency report, and emits a [`SloTransition`] whenever an
//! objective's tripped state *changes*. Transitions are what the
//! router turns into trace stages and on-ledger health events —
//! steady-state (still fine / still tripped) stays silent, so the
//! audit trail records edges, not noise.
//!
//! Like the rest of the ops plane: logical ticks, integer milli/micro
//! units, no wall clock — evaluation is a pure function of folded
//! samples, so trip sequences are byte-identical at any shard or
//! worker count.

/// Which signal an objective thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// The p99 of the admitted→routed transition must stay at or below
    /// the threshold, in ticks.
    AdmissionP99MaxTicks,
    /// The window refusal rate must stay at or below the threshold, in
    /// milli (refused per 1000 offered).
    RefusalRateMaxMilli,
    /// The per-epoch DP-budget burn must stay at or below the
    /// threshold, in micro-epsilon.
    DpBurnMaxMicroPerEpoch,
}

impl SloKind {
    /// Stable lowercase label for exports.
    pub fn label(&self) -> &'static str {
        match self {
            SloKind::AdmissionP99MaxTicks => "admission_p99_max_ticks",
            SloKind::RefusalRateMaxMilli => "refusal_rate_max_milli",
            SloKind::DpBurnMaxMicroPerEpoch => "dp_burn_max_micro_per_epoch",
        }
    }
}

/// One declared objective: a named threshold over a [`SloKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloObjective {
    /// Stable objective name (lands in traces and ledger events).
    pub name: &'static str,
    /// Signal thresholded.
    pub kind: SloKind,
    /// Inclusive upper bound in the kind's unit (clamped to ≥ 1 at
    /// evaluation, so a zero threshold cannot divide by zero).
    pub max: u64,
}

/// The measured signals one evaluation reads, produced by the router
/// from the heat window and latency report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloInput {
    /// p99 of the admitted→routed transition, ticks.
    pub admission_p99_ticks: u64,
    /// Window refusal rate, milli.
    pub refusal_rate_milli: u64,
    /// Average DP burn per epoch in the window, micro-epsilon.
    pub dp_burn_micro_per_epoch: u64,
}

/// A tripped-state edge: one objective crossed its threshold (or came
/// back under it) at this evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTransition {
    /// The objective that changed state.
    pub objective: &'static str,
    /// True when the objective just tripped, false when it recovered.
    pub tripped: bool,
    /// The measured value at the edge.
    pub measured: u64,
    /// The objective's threshold.
    pub threshold: u64,
    /// Burn rate at the edge: `measured * 1000 / threshold` (1000 =
    /// exactly at threshold).
    pub burn_milli: u64,
}

/// Per-objective evaluation state.
#[derive(Debug, Clone, Copy, Default)]
struct ObjectiveState {
    tripped: bool,
    trips: u64,
    recoveries: u64,
    last_measured: u64,
    last_burn_milli: u64,
}

/// Evaluates declared objectives against successive [`SloInput`]s and
/// reports state edges.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    objectives: Vec<SloObjective>,
    state: Vec<ObjectiveState>,
    evaluations: u64,
}

impl SloEngine {
    /// Creates an engine over the given objectives (evaluated in the
    /// order declared).
    pub fn new(objectives: Vec<SloObjective>) -> Self {
        let state = vec![ObjectiveState::default(); objectives.len()];
        SloEngine { objectives, state, evaluations: 0 }
    }

    /// The declared objectives.
    pub fn objectives(&self) -> &[SloObjective] {
        &self.objectives
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluates every objective against `input`, returning only the
    /// objectives whose tripped state changed, in declaration order.
    pub fn evaluate(&mut self, input: &SloInput) -> Vec<SloTransition> {
        self.evaluations += 1;
        let mut edges = Vec::new();
        for (obj, state) in self.objectives.iter().zip(self.state.iter_mut()) {
            let measured = match obj.kind {
                SloKind::AdmissionP99MaxTicks => input.admission_p99_ticks,
                SloKind::RefusalRateMaxMilli => input.refusal_rate_milli,
                SloKind::DpBurnMaxMicroPerEpoch => input.dp_burn_micro_per_epoch,
            };
            let threshold = obj.max.max(1);
            let burn_milli = measured.saturating_mul(1000) / threshold;
            let tripped = measured > threshold;
            state.last_measured = measured;
            state.last_burn_milli = burn_milli;
            if tripped != state.tripped {
                state.tripped = tripped;
                if tripped {
                    state.trips += 1;
                } else {
                    state.recoveries += 1;
                }
                edges.push(SloTransition {
                    objective: obj.name,
                    tripped,
                    measured,
                    threshold,
                    burn_milli,
                });
            }
        }
        edges
    }

    /// Point-in-time view of every objective.
    pub fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            evaluations: self.evaluations,
            objectives: self
                .objectives
                .iter()
                .zip(&self.state)
                .map(|(obj, s)| SloObjectiveState {
                    name: obj.name,
                    kind: obj.kind.label(),
                    threshold: obj.max.max(1),
                    measured: s.last_measured,
                    burn_milli: s.last_burn_milli,
                    tripped: s.tripped,
                    trips: s.trips,
                    recoveries: s.recoveries,
                })
                .collect(),
        }
    }
}

/// One objective's row in a [`SloSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloObjectiveState {
    /// Objective name.
    pub name: &'static str,
    /// Kind label.
    pub kind: &'static str,
    /// Effective threshold.
    pub threshold: u64,
    /// Most recently measured value.
    pub measured: u64,
    /// Most recent burn rate, milli.
    pub burn_milli: u64,
    /// Whether the objective is currently tripped.
    pub tripped: bool,
    /// Total trips since engine creation.
    pub trips: u64,
    /// Total recoveries since engine creation.
    pub recoveries: u64,
}

/// Every objective's current state — the "SLO state" a stats query
/// serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSnapshot {
    /// Evaluations performed.
    pub evaluations: u64,
    /// Per-objective rows, in declaration order.
    pub objectives: Vec<SloObjectiveState>,
}

impl SloSnapshot {
    /// Renders the snapshot as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"evaluations\":{},\"objectives\":[", self.evaluations);
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"threshold\":{},\"measured\":{},\"burn_milli\":{},\"tripped\":{},\"trips\":{},\"recoveries\":{}}}",
                o.name, o.kind, o.threshold, o.measured, o.burn_milli, o.tripped, o.trips, o.recoveries
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SloEngine {
        SloEngine::new(vec![
            SloObjective {
                name: "admission_p99",
                kind: SloKind::AdmissionP99MaxTicks,
                max: 8,
            },
            SloObjective {
                name: "refusal_rate",
                kind: SloKind::RefusalRateMaxMilli,
                max: 100,
            },
            SloObjective {
                name: "dp_burn",
                kind: SloKind::DpBurnMaxMicroPerEpoch,
                max: 1000,
            },
        ])
    }

    #[test]
    fn transitions_fire_only_on_edges() {
        let mut e = engine();
        let calm = SloInput { admission_p99_ticks: 4, refusal_rate_milli: 10, ..Default::default() };
        assert!(e.evaluate(&calm).is_empty(), "nothing tripped yet");
        let hot = SloInput { admission_p99_ticks: 40, ..calm };
        let edges = e.evaluate(&hot);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].objective, "admission_p99");
        assert!(edges[0].tripped);
        assert_eq!(edges[0].burn_milli, 5000);
        assert!(e.evaluate(&hot).is_empty(), "still tripped: no edge");
        let edges = e.evaluate(&calm);
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].tripped, "recovery edge");
        let snap = e.snapshot();
        assert_eq!(snap.objectives[0].trips, 1);
        assert_eq!(snap.objectives[0].recoveries, 1);
        assert_eq!(snap.evaluations, 4);
    }

    #[test]
    fn at_threshold_is_not_tripped() {
        let mut e = engine();
        let edges = e.evaluate(&SloInput {
            refusal_rate_milli: 100,
            ..Default::default()
        });
        assert!(edges.is_empty(), "inclusive upper bound");
        let edges = e.evaluate(&SloInput {
            refusal_rate_milli: 101,
            ..Default::default()
        });
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].burn_milli, 1010);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let mut e = SloEngine::new(vec![SloObjective {
            name: "strict",
            kind: SloKind::RefusalRateMaxMilli,
            max: 0,
        }]);
        let edges = e.evaluate(&SloInput { refusal_rate_milli: 5, ..Default::default() });
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].threshold, 1);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let mut e = engine();
        e.evaluate(&SloInput { dp_burn_micro_per_epoch: 2500, ..Default::default() });
        let a = e.snapshot().to_json();
        assert_eq!(a, e.snapshot().to_json());
        assert!(a.contains("\"name\":\"dp_burn\""), "{a}");
        assert!(a.contains("\"tripped\":true"), "{a}");
        assert!(a.contains("\"burn_milli\":2500"), "{a}");
    }
}
