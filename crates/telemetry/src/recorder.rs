//! The flight recorder: a bounded, lock-free ring of trace events.
//!
//! A [`FlightRecorder`] is deliberately *not* shared state: the gateway
//! gives each shard its own recorder (written by at most one worker
//! thread, through `&mut`) plus one router-level recorder, and merges
//! the per-shard streams back in admission-sequence order at the epoch
//! barrier. That keeps the hot path free of locks and atomics — the
//! cost of recording is one branch and one ring write — while the merge
//! discipline keeps the final stream byte-identical whether an epoch
//! ran on one worker thread or N.
//!
//! Like [`TelemetryHub`](crate::TelemetryHub), a recorder has a
//! disabled mode: [`FlightRecorder::disabled`] records nothing, costs
//! one branch per call, and allocates nothing (events themselves are
//! allocation-free by construction — see [`crate::trace`]).

use crate::trace::{TraceEvent, TraceQuery};
use std::collections::VecDeque;

/// Counters describing a recorder's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events ever offered to [`FlightRecorder::record`] while enabled.
    pub recorded: u64,
    /// Events evicted because the ring was full (oldest-first).
    pub dropped: u64,
    /// Events currently held.
    pub len: usize,
    /// Configured capacity (0 when disabled).
    pub capacity: usize,
}

#[derive(Debug)]
struct RecorderInner {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s with oldest-first eviction.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    inner: Option<RecorderInner>,
}

impl FlightRecorder {
    /// An enabled recorder holding at most `capacity` events (a
    /// capacity of 0 is a disabled recorder).
    pub fn new(capacity: usize) -> Self {
        if capacity == 0 {
            return FlightRecorder::disabled();
        }
        FlightRecorder {
            inner: Some(RecorderInner {
                capacity,
                ring: VecDeque::new(),
                recorded: 0,
                dropped: 0,
            }),
        }
    }

    /// A recorder that records nothing: one branch per call, no
    /// allocation, no storage.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether this recorder stores events.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event; when the ring is full the oldest event is
    /// evicted (and counted in [`RecorderStats::dropped`]). A disabled
    /// recorder returns immediately.
    pub fn record(&mut self, event: TraceEvent) {
        let Some(inner) = &mut self.inner else { return };
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
        inner.recorded += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.inner.iter().flat_map(|inner| inner.ring.iter())
    }

    /// Removes and returns every held event, oldest first (the merge
    /// primitive: shard recorders drain into the router recorder).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        match &mut self.inner {
            Some(inner) => inner.ring.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RecorderStats {
        match &self.inner {
            Some(inner) => RecorderStats {
                recorded: inner.recorded,
                dropped: inner.dropped,
                len: inner.ring.len(),
                capacity: inner.capacity,
            },
            None => RecorderStats::default(),
        }
    }

    /// A query view over the held events. Needs `&mut self` once to
    /// make the ring contiguous; queries themselves are read-only.
    pub fn query(&mut self) -> TraceQuery<'_> {
        match &mut self.inner {
            Some(inner) => TraceQuery::new(inner.ring.make_contiguous()),
            None => TraceQuery::new(&[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStage;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent { seq, epoch: seq, tick: seq, stage: TraceStage::Requeued { shard: 0 } }
    }

    #[test]
    fn bounded_ring_evicts_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for seq in 0..5 {
            r.record(ev(seq));
        }
        let held: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(held, vec![2, 3, 4], "oldest evicted first");
        let stats = r.stats();
        assert_eq!(stats.recorded, 5);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.len, 3);
        assert_eq!(stats.capacity, 3);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(ev(0));
        assert_eq!(r.events().count(), 0);
        assert_eq!(r.stats(), RecorderStats::default());
        assert!(r.drain().is_empty());
        assert!(r.query().trace_of(0).is_empty());
        // Capacity 0 is the same thing.
        assert!(!FlightRecorder::new(0).is_enabled());
    }

    #[test]
    fn drain_empties_but_keeps_counters() {
        let mut r = FlightRecorder::new(8);
        r.record(ev(0));
        r.record(ev(1));
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(r.events().count(), 0);
        assert_eq!(r.stats().recorded, 2, "drain is not a reset");
    }

    #[test]
    fn query_reflects_ring_contents_after_wraparound() {
        let mut r = FlightRecorder::new(2);
        for seq in 0..4 {
            r.record(ev(seq));
        }
        let q = r.query();
        assert!(q.trace_of(0).is_empty(), "evicted");
        assert_eq!(q.trace_of(3).len(), 1);
    }
}
