//! Stage-latency attribution: where did the epoch go?
//!
//! The flight recorder already captures *what happened* to every op;
//! this module folds those [`TraceEvent`]s into *how long each stage
//! took* — per-transition log₂ histograms over the op pipeline
//! (admitted → routed → executed → escrowed → settled →
//! committed), replication commit lag, and a `slowest_ops` exemplar
//! table — so "where did the epoch go" is answerable from a live
//! system without rerunning Criterion.
//!
//! All durations are **logical ticks** (event tick deltas), never wall
//! clock: the same seeded run folds to byte-identical reports at any
//! shard or worker count, which the ops-plane determinism gates pin.

use crate::trace::{TraceEvent, TraceStage};
use std::collections::BTreeMap;

/// Exemplar rows kept in the slowest-ops table.
pub const SLOWEST_OPS: usize = 8;

/// A fixed-size log₂ histogram over tick durations: bucket `i ≥ 1`
/// covers `[2^(i-1), 2^i)` and bucket 0 holds exact zeroes. Quantiles
/// return the bucket's inclusive lower bound — coarse, deterministic,
/// allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickHistogram {
    counts: [u64; 65],
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for TickHistogram {
    fn default() -> Self {
        TickHistogram { counts: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl TickHistogram {
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one tick duration.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// The inclusive lower bound of the bucket containing the `q`-th
    /// per-mille value (`q` in 0..=1000), 0 when empty. `quantile(500)`
    /// is the p50, `quantile(990)` the p99.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target value, 1-based, rounded up.
        let rank = (self.count * q.min(1000)).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        self.max
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, *c))
            .collect()
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            self.count,
            self.sum,
            self.max,
            self.quantile(500),
            self.quantile(990)
        )
    }
}

/// One op still in flight: what stage it last reached, and when.
#[derive(Debug, Clone)]
struct OpenOp {
    op: &'static str,
    last_stage: &'static str,
    last_tick: u64,
    first_tick: u64,
    awaiting_settlement: bool,
}

/// One row of the slowest-ops exemplar table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// The op's admission sequence number.
    pub seq: u64,
    /// The op's label (e.g. `"buy"`).
    pub op: &'static str,
    /// Label of the stage that closed the chain.
    pub terminal: &'static str,
    /// Ticks from admission to the terminal stage.
    pub total_ticks: u64,
}

/// Folds flight-recorder events into per-stage latency budgets.
///
/// Feed every op-stream event through [`fold`](Self::fold) (in
/// recording order — the order the router ring yields) and replication
/// events through [`fold_replication`](Self::fold_replication); read
/// the result with [`report`](Self::report). Open ops persist across
/// epochs, so cross-epoch settlements attribute their full wait.
#[derive(Debug, Clone, Default)]
pub struct StageLatencyProfiler {
    open: BTreeMap<u64, OpenOp>,
    transitions: BTreeMap<(&'static str, &'static str), TickHistogram>,
    total: TickHistogram,
    replication_lag: TickHistogram,
    slowest: Vec<SlowOp>,
    closed: u64,
}

impl StageLatencyProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ops currently tracked between admission and their terminal
    /// stage.
    pub fn open_ops(&self) -> usize {
        self.open.len()
    }

    /// Ops whose causal chain has closed.
    pub fn closed_ops(&self) -> u64 {
        self.closed
    }

    /// Folds one op-stream event. Events must arrive in recording
    /// order; replication-stream events belong in
    /// [`fold_replication`](Self::fold_replication) instead.
    pub fn fold(&mut self, e: &TraceEvent) {
        match &e.stage {
            TraceStage::Admitted { op, .. } => {
                self.open.insert(
                    e.seq,
                    OpenOp {
                        op,
                        last_stage: "admitted",
                        last_tick: e.tick,
                        first_tick: e.tick,
                        awaiting_settlement: false,
                    },
                );
            }
            // Admission refusals never opened a chain, and SLO edges
            // borrow an unassigned seq (like refusals): nothing timed.
            TraceStage::RateLimited { .. }
            | TraceStage::Refused { .. }
            | TraceStage::BudgetRefused { .. }
            | TraceStage::SloTripped { .. }
            | TraceStage::SloRecovered { .. } => {}
            stage => {
                let label = stage.label();
                let Some(open) = self.open.get_mut(&e.seq) else {
                    return; // chain head fell out of the ring
                };
                let waited = e.tick.saturating_sub(open.last_tick);
                self.transitions.entry((open.last_stage, label)).or_default().record(waited);
                open.last_stage = label;
                open.last_tick = e.tick;
                if matches!(stage, TraceStage::Escrowed { .. }) {
                    open.awaiting_settlement = true;
                }
                let terminal = match stage {
                    TraceStage::Settled { .. } => true,
                    TraceStage::CommittedInEpoch { .. } => !open.awaiting_settlement,
                    _ => false,
                };
                if terminal {
                    let open = self.open.remove(&e.seq).expect("present above");
                    let total = e.tick.saturating_sub(open.first_tick);
                    self.total.record(total);
                    self.closed += 1;
                    self.slowest.push(SlowOp {
                        seq: e.seq,
                        op: open.op,
                        terminal: label,
                        total_ticks: total,
                    });
                    self.slowest
                        .sort_by_key(|s| (std::cmp::Reverse(s.total_ticks), s.seq));
                    self.slowest.truncate(SLOWEST_OPS);
                }
            }
        }
    }

    /// Folds one replication-stream event: quorum commits contribute
    /// their proposal-to-commit latency to the commit-lag histogram.
    pub fn fold_replication(&mut self, e: &TraceEvent) {
        if let TraceStage::QuorumCommitted { latency_ticks, .. } = e.stage {
            self.replication_lag.record(latency_ticks);
        }
    }

    /// Summarises everything folded so far.
    pub fn report(&self) -> LatencyReport {
        LatencyReport {
            stages: self
                .transitions
                .iter()
                .map(|((from, to), h)| StageBudget {
                    from,
                    to,
                    count: h.count,
                    sum_ticks: h.sum,
                    p50_ticks: h.quantile(500),
                    p99_ticks: h.quantile(990),
                    max_ticks: h.max,
                })
                .collect(),
            total: self.total.clone(),
            replication_lag: self.replication_lag.clone(),
            slowest_ops: self.slowest.clone(),
            open_ops: self.open.len() as u64,
            closed_ops: self.closed,
        }
    }
}

/// One stage transition's budget: how long ops spent between two
/// adjacent pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageBudget {
    /// Stage the op was in.
    pub from: &'static str,
    /// Stage the op moved to.
    pub to: &'static str,
    /// Transitions observed.
    pub count: u64,
    /// Total ticks spent across all observed transitions.
    pub sum_ticks: u64,
    /// Median ticks (bucket lower bound).
    pub p50_ticks: u64,
    /// 99th-percentile ticks (bucket lower bound).
    pub p99_ticks: u64,
    /// Worst observed ticks.
    pub max_ticks: u64,
}

/// The profiler's summary: per-transition budgets (lexicographic by
/// stage pair), the end-to-end distribution, replication commit lag,
/// and the slowest-ops exemplar table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyReport {
    /// Per-transition budgets, ordered by `(from, to)`.
    pub stages: Vec<StageBudget>,
    /// Admission-to-terminal distribution.
    pub total: TickHistogram,
    /// Replication proposal-to-quorum lag distribution.
    pub replication_lag: TickHistogram,
    /// Slowest closed ops, worst first, ties by ascending seq.
    pub slowest_ops: Vec<SlowOp>,
    /// Ops still in flight when the report was taken.
    pub open_ops: u64,
    /// Ops whose chains closed.
    pub closed_ops: u64,
}

impl LatencyReport {
    /// Renders the report as one deterministic JSON object; equal
    /// reports render byte-identically (the determinism gates compare
    /// these strings).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"count\":{},\"sum_ticks\":{},\"p50_ticks\":{},\"p99_ticks\":{},\"max_ticks\":{}}}",
                s.from, s.to, s.count, s.sum_ticks, s.p50_ticks, s.p99_ticks, s.max_ticks
            ));
        }
        out.push_str(&format!(
            "],\"total\":{},\"replication_lag\":{},\"slowest_ops\":[",
            self.total.json(),
            self.replication_lag.json()
        ));
        for (i, s) in self.slowest_ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"op\":\"{}\",\"terminal\":\"{}\",\"total_ticks\":{}}}",
                s.seq, s.op, s.terminal, s.total_ticks
            ));
        }
        out.push_str(&format!(
            "],\"open_ops\":{},\"closed_ops\":{}}}",
            self.open_ops, self.closed_ops
        ));
        out
    }

    /// The p99 of the admitted→routed transition, in ticks — the
    /// "admission latency" an SLO thresholds on (0 when no op has made
    /// that transition yet).
    pub fn admission_p99_ticks(&self) -> u64 {
        self.stages
            .iter()
            .find(|s| s.from == "admitted" && s.to == "routed_to_shard")
            .map_or(0, |s| s.p99_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, tick: u64, stage: TraceStage) -> TraceEvent {
        TraceEvent { seq, epoch: tick / 4, tick, stage }
    }

    #[test]
    fn histogram_buckets_are_log2_and_quantiles_return_lower_bounds() {
        let mut h = TickHistogram::default();
        for v in [0u64, 1, 2, 3, 900] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 906);
        assert_eq!(h.max, 900);
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
        assert_eq!(h.quantile(500), 2, "3rd of 5 values sits in [2,4)");
        assert_eq!(h.quantile(990), 512);
        assert_eq!(TickHistogram::default().quantile(500), 0);
    }

    #[test]
    fn simple_chain_attributes_each_transition() {
        let mut p = StageLatencyProfiler::new();
        p.fold(&ev(0, 0, TraceStage::Admitted { op: "vote", shard: 0 }));
        p.fold(&ev(0, 4, TraceStage::RoutedToShard { shard: 0, waited_ticks: 4 }));
        p.fold(&ev(0, 4, TraceStage::Executed { shard: 0, ok: true }));
        p.fold(&ev(0, 8, TraceStage::CommittedInEpoch { shard: 0, height: 1, block: [0; 32] }));
        assert_eq!(p.open_ops(), 0);
        let r = p.report();
        assert_eq!(r.closed_ops, 1);
        assert_eq!(r.stages.len(), 3);
        let routed = &r.stages[0];
        assert_eq!((routed.from, routed.to), ("admitted", "routed_to_shard"));
        assert_eq!(routed.sum_ticks, 4);
        assert_eq!(r.total.sum, 8);
        assert_eq!(r.slowest_ops[0].op, "vote");
        assert_eq!(r.admission_p99_ticks(), 4);
    }

    #[test]
    fn escrowed_ops_stay_open_until_settled() {
        let mut p = StageLatencyProfiler::new();
        p.fold(&ev(3, 0, TraceStage::Admitted { op: "buy", shard: 0 }));
        p.fold(&ev(3, 4, TraceStage::RoutedToShard { shard: 0, waited_ticks: 4 }));
        p.fold(&ev(3, 4, TraceStage::Escrowed { from_shard: 0, to_shard: 1, price: 9 }));
        p.fold(&ev(3, 4, TraceStage::CommittedInEpoch { shard: 0, height: 1, block: [0; 32] }));
        assert_eq!(p.open_ops(), 1, "escrow keeps the chain open");
        p.fold(&ev(3, 12, TraceStage::Settled { outcome: "applied", requeues: 1 }));
        assert_eq!(p.open_ops(), 0);
        let r = p.report();
        assert_eq!(r.total.sum, 12, "full admission-to-settlement span");
        assert_eq!(r.slowest_ops[0].terminal, "settled");
    }

    #[test]
    fn refusals_and_orphan_events_are_ignored() {
        let mut p = StageLatencyProfiler::new();
        p.fold(&ev(0, 0, TraceStage::RateLimited { op: "vote", retry_in_ticks: 3 }));
        p.fold(&ev(7, 4, TraceStage::Executed { shard: 0, ok: true }));
        let r = p.report();
        assert_eq!(r.closed_ops, 0);
        assert!(r.stages.is_empty());
    }

    #[test]
    fn slowest_table_is_bounded_and_deterministically_ordered() {
        let mut p = StageLatencyProfiler::new();
        for seq in 0..(SLOWEST_OPS as u64 + 4) {
            p.fold(&ev(seq, 0, TraceStage::Admitted { op: "vote", shard: 0 }));
            let end = if seq % 2 == 0 { 20 } else { 4 };
            p.fold(&ev(seq, end, TraceStage::CommittedInEpoch {
                shard: 0,
                height: 1,
                block: [0; 32],
            }));
        }
        let r = p.report();
        assert_eq!(r.slowest_ops.len(), SLOWEST_OPS);
        assert!(r.slowest_ops.windows(2).all(|w| {
            w[0].total_ticks > w[1].total_ticks
                || (w[0].total_ticks == w[1].total_ticks && w[0].seq < w[1].seq)
        }));
        assert_eq!(r.slowest_ops[0].seq, 0, "ties break by ascending seq");
    }

    #[test]
    fn replication_lag_folds_quorum_commits_only() {
        let mut p = StageLatencyProfiler::new();
        p.fold_replication(&ev(1, 4, TraceStage::QuorumCommitted {
            shard: 0,
            height: 1,
            acks: 2,
            latency_ticks: 6,
        }));
        p.fold_replication(&ev(1, 4, TraceStage::BlockProposed {
            shard: 0,
            height: 2,
            term: 0,
            leader: 0,
        }));
        let r = p.report();
        assert_eq!(r.replication_lag.count, 1);
        assert_eq!(r.replication_lag.sum, 6);
    }

    #[test]
    fn report_json_is_deterministic() {
        let mut p = StageLatencyProfiler::new();
        p.fold(&ev(0, 0, TraceStage::Admitted { op: "vote", shard: 0 }));
        p.fold(&ev(0, 4, TraceStage::Executed { shard: 0, ok: true }));
        let a = p.report().to_json();
        let b = p.report().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"stages\":[{\"from\":\"admitted\",\"to\":\"executed\""), "{a}");
    }
}
