//! Causal trace events: what happened to one admitted op, end to end.
//!
//! Metrics (the rest of this crate) answer *how much* and *how fast*;
//! a trace answers *what happened to op N* — the transparency the paper
//! demands for governance decisions (§IV-C), applied to the platform's
//! own request path. Every op admitted by the gateway is identified by
//! its **admission sequence number** ([`TraceId`]) — deterministic by
//! construction, derived from admission order rather than wall clock or
//! RNG — and leaves a chain of typed [`TraceEvent`]s behind as it moves
//! through admission, routing, shard execution, escrow, settlement, and
//! ledger commit.
//!
//! Design constraints, in order:
//!
//! * **allocation-free events** — every [`TraceStage`] field is either
//!   numeric or a `&'static str` label, so recording an event performs
//!   no heap allocation and a disabled recorder costs one branch;
//! * **deterministic bytes** — events carry logical time only (epoch
//!   and tick, never wall clock), so the same seeded run produces
//!   byte-identical traces regardless of worker-thread count;
//! * **navigable provenance** — terminal stages reference the ledger:
//!   [`TraceStage::CommittedInEpoch`] names the sealed chain state
//!   (height + block id) that covers the op's records.

/// Identity of one traced op: its global admission sequence number.
///
/// Assigned by the gateway at admission, in submission order. An offer
/// *refused* at admission never consumes a sequence number; its refusal
/// events borrow the next unassigned seq, recording what was turned
/// away at that point in the admission stream (the op that eventually
/// claims the seq follows in the same trace).
pub type TraceId = u64;

/// A sealed block's identity: its header digest, as raw bytes (rendered
/// as hex by the exporters). Kept as a plain byte array so this crate
/// stays dependency-free and events stay `Copy`-cheap.
pub type BlockRef = [u8; 32];

/// One causal step in an op's life. Timestamps are logical (epoch and
/// tick), never wall clock, so traces are seed-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The op this event belongs to (admission sequence number).
    pub seq: TraceId,
    /// Router epoch when the event was recorded.
    pub epoch: u64,
    /// Logical tick when the event was recorded.
    pub tick: u64,
    /// What happened.
    pub stage: TraceStage,
}

/// The typed stages an op can pass through. Labels are `&'static str`
/// from fixed vocabularies (op labels, refusal causes, settlement
/// outcomes), never formatted strings — recording allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStage {
    /// Admitted into its session's mailbox.
    Admitted {
        /// Op label (e.g. `"buy"`).
        op: &'static str,
        /// Home shard the session pins the op to.
        shard: u32,
    },
    /// Refused at admission by the session's token bucket.
    RateLimited {
        /// Op label of the refused offer.
        op: &'static str,
        /// Ticks until one whole token refills (`u64::MAX`: never).
        retry_in_ticks: u64,
    },
    /// Refused at admission for any non-rate cause (mailbox full,
    /// unknown user, duplicate register, shard breaker open).
    Refused {
        /// Op label of the refused offer.
        op: &'static str,
        /// Stable cause label (see `AdmissionError::label` in the
        /// gateway).
        cause: &'static str,
    },
    /// Drained from its mailbox and routed into a shard's epoch queue.
    RoutedToShard {
        /// Target shard.
        shard: u32,
        /// Ticks the op waited in the mailbox before this epoch.
        waited_ticks: u64,
    },
    /// Target object unresolvable at pre-route (it may be created
    /// later in this very epoch); handled after the worker barrier.
    Deferred {
        /// Op label.
        op: &'static str,
    },
    /// Held for a later epoch (target shard breaker-skipped, or a
    /// settlement entry's target module down).
    Requeued {
        /// Shard the op or entry is waiting on.
        shard: u32,
    },
    /// Executed on its shard (inside the parallel epoch phase).
    Executed {
        /// Executing shard.
        shard: u32,
        /// Whether the platform accepted the op.
        ok: bool,
    },
    /// A cross-shard purchase withdrew the buyer's funds into escrow.
    Escrowed {
        /// Buyer's home shard (refund target).
        from_shard: u32,
        /// Asset's shard (settlement target).
        to_shard: u32,
        /// Escrowed price.
        price: u64,
    },
    /// A settlement entry reached its terminal outcome.
    Settled {
        /// `"applied"`, `"refunded"`, or `"dropped"`.
        outcome: &'static str,
        /// Times the entry was requeued before settling.
        requeues: u32,
    },
    /// The shard's epoch commit sealed chain state covering this op's
    /// ledger records (ops that produce no records still pass through:
    /// the referenced head is the auditable state they executed under).
    CommittedInEpoch {
        /// Committing shard.
        shard: u32,
        /// Chain height after the commit.
        height: u64,
        /// Header digest of the block at that height.
        block: BlockRef,
    },
    /// Replication: the shard's cluster leader proposed a sealed block
    /// to its follower validators. Only emitted on the replication
    /// stream (seq = chain height), never the op stream.
    BlockProposed {
        /// Shard whose cluster is replicating.
        shard: u32,
        /// Chain height of the proposed block.
        height: u64,
        /// Leader's term when proposing.
        term: u64,
        /// Proposing leader's node index within the cluster.
        leader: u32,
    },
    /// Replication: one follower's ack for a proposed block was
    /// delivered to the leader.
    AckReceived {
        /// Shard whose cluster is replicating.
        shard: u32,
        /// Chain height being acked.
        height: u64,
        /// Acking follower's node index.
        node: u32,
        /// Ticks between the proposal and this ack's delivery.
        latency_ticks: u64,
    },
    /// Replication: the proposed block gathered majority acks and is
    /// durably committed across the cluster.
    QuorumCommitted {
        /// Shard whose cluster committed.
        shard: u32,
        /// Committed chain height.
        height: u64,
        /// Acks counted toward quorum (leader included).
        acks: u32,
        /// Ticks from proposal to quorum, failover included.
        latency_ticks: u64,
    },
    /// Replication: the cluster rotated leadership to the next live
    /// node after the previous leader became unreachable.
    LeaderElected {
        /// Shard whose cluster elected.
        shard: u32,
        /// New leader's term.
        term: u64,
        /// New leader's node index.
        leader: u32,
        /// Ticks of election delay charged to the in-flight commit.
        failover_ticks: u64,
    },
    /// Serving layer: a client connection was registered with the net
    /// server. Only emitted on the net stream (seq = connection id,
    /// tick = server sweep), never the op stream.
    ConnAccepted {
        /// The new connection's id.
        conn: u64,
    },
    /// Serving layer: a complete frame was reassembled off a
    /// connection's byte stream (however many reads it took).
    FrameDecoded {
        /// Source connection.
        conn: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// Serving layer: admission backpressure parked a connection — its
    /// head-of-line op was refused by a token bucket or full mailbox
    /// and will be transparently re-offered.
    BackpressureParked {
        /// Parked connection.
        conn: u64,
        /// Server sweep at which offers resume.
        resume_at_tick: u64,
    },
    /// Serving layer: a connection reached its terminal state.
    ConnClosed {
        /// Closed connection.
        conn: u64,
        /// Stable close-cause label (`"finished"`, `"peer_reset"`,
        /// `"mid_frame_disconnect"`, `"oversized_frame"`,
        /// `"admission_stalled"`).
        cause: &'static str,
    },
    /// Governance: a sensor release passed the shard's PET pipeline on
    /// its way into the audit registry.
    PetFiltered {
        /// Executing shard.
        shard: u32,
        /// Samples offered to the pipeline.
        samples_in: u32,
        /// Samples surviving every PET stage.
        samples_out: u32,
        /// Micro-epsilon charged against the global DP budget.
        epsilon_micro: u64,
    },
    /// Governance: the global differential-privacy budget could not
    /// cover the release — the op failed closed and never reached its
    /// shard.
    BudgetRefused {
        /// Op-kind label of the refused release.
        op: &'static str,
        /// Micro-epsilon the release would have charged.
        requested_micro: u64,
        /// Micro-epsilon left in the global budget.
        remaining_micro: u64,
    },
    /// Governance: a liquid-democracy delegation change was applied to
    /// every shard's governance modules at the merge barrier.
    Delegated {
        /// The delegator's home shard.
        shard: u32,
        /// False for a fresh delegation, true for a revocation.
        revoked: bool,
    },
    /// Governance: the punitive escalation ladder moved for a subject —
    /// an upheld report climbed it, or an appeal verdict restored or
    /// confirmed a standing action.
    Escalated {
        /// Executing shard.
        shard: u32,
        /// Stable action label (`"warn"`, `"mute"`, `"temp-ban"`,
        /// `"perm-ban"`, `"restore"`, `"upheld"`).
        action: &'static str,
    },
    /// Ops plane: a service-level objective crossed its threshold at
    /// the epoch barrier. Like refusals, the event borrows the next
    /// unassigned seq — it records *where in the admission stream* the
    /// objective tripped.
    SloTripped {
        /// The tripped objective's name.
        objective: &'static str,
        /// Measured value at the edge (objective's unit).
        measured: u64,
        /// The objective's threshold.
        threshold: u64,
        /// Burn rate at the edge, milli (1000 = at threshold).
        burn_milli: u64,
    },
    /// Ops plane: a previously tripped objective came back under its
    /// threshold.
    SloRecovered {
        /// The recovered objective's name.
        objective: &'static str,
        /// Measured value at the edge (objective's unit).
        measured: u64,
        /// The objective's threshold.
        threshold: u64,
    },
}

impl TraceStage {
    /// Stable lowercase label for exports and queries.
    pub fn label(&self) -> &'static str {
        match self {
            TraceStage::Admitted { .. } => "admitted",
            TraceStage::RateLimited { .. } => "rate_limited",
            TraceStage::Refused { .. } => "refused",
            TraceStage::RoutedToShard { .. } => "routed_to_shard",
            TraceStage::Deferred { .. } => "deferred",
            TraceStage::Requeued { .. } => "requeued",
            TraceStage::Executed { .. } => "executed",
            TraceStage::Escrowed { .. } => "escrowed",
            TraceStage::Settled { .. } => "settled",
            TraceStage::CommittedInEpoch { .. } => "committed_in_epoch",
            TraceStage::BlockProposed { .. } => "block_proposed",
            TraceStage::AckReceived { .. } => "ack_received",
            TraceStage::QuorumCommitted { .. } => "quorum_committed",
            TraceStage::LeaderElected { .. } => "leader_elected",
            TraceStage::ConnAccepted { .. } => "conn_accepted",
            TraceStage::FrameDecoded { .. } => "frame_decoded",
            TraceStage::BackpressureParked { .. } => "backpressure_parked",
            TraceStage::ConnClosed { .. } => "conn_closed",
            TraceStage::PetFiltered { .. } => "pet_filtered",
            TraceStage::BudgetRefused { .. } => "budget_refused",
            TraceStage::Delegated { .. } => "delegated",
            TraceStage::Escalated { .. } => "escalated",
            TraceStage::SloTripped { .. } => "slo_tripped",
            TraceStage::SloRecovered { .. } => "slo_recovered",
        }
    }

    /// Whether this stage records work being turned away: an admission
    /// refusal, a shard execution failure, a settlement entry that
    /// refunded or dropped instead of applying, or a connection that
    /// closed for any reason other than finishing cleanly.
    pub fn is_drop(&self) -> bool {
        match self {
            TraceStage::RateLimited { .. }
            | TraceStage::Refused { .. }
            | TraceStage::BudgetRefused { .. } => true,
            TraceStage::Executed { ok, .. } => !ok,
            TraceStage::Settled { outcome, .. } => *outcome != "applied",
            TraceStage::ConnClosed { cause, .. } => *cause != "finished",
            _ => false,
        }
    }
}

/// A summary row produced by [`TraceQuery::slowest`]: how long one op's
/// causal chain stretched, in epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// The op.
    pub seq: TraceId,
    /// Epoch of the op's first event.
    pub first_epoch: u64,
    /// Epoch of the op's last event.
    pub last_epoch: u64,
    /// Events recorded for the op.
    pub events: usize,
}

impl TraceSpan {
    /// Epochs between the first and last event (0 = settled within one
    /// epoch boundary).
    pub fn span_epochs(&self) -> u64 {
        self.last_epoch - self.first_epoch
    }
}

/// Read-only queries over a recorded event stream. Obtained from
/// `FlightRecorder::query`; every answer is deterministic for a seeded
/// run (ties broken by seq, never by timing).
pub struct TraceQuery<'a> {
    events: &'a [TraceEvent],
}

impl<'a> TraceQuery<'a> {
    /// Wraps an event slice (must already be in recording order).
    pub fn new(events: &'a [TraceEvent]) -> Self {
        TraceQuery { events }
    }

    /// Every recorded event, in recording order.
    pub fn events(&self) -> &'a [TraceEvent] {
        self.events
    }

    /// The complete causal chain of one op, in recording order:
    /// admission through its terminal stage (refusal, settlement, or
    /// ledger commit).
    pub fn trace_of(&self, seq: TraceId) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.seq == seq).collect()
    }

    /// Every event recording work turned away (see
    /// [`TraceStage::is_drop`]), in recording order — the drop/refusal
    /// side of the ledger's audit story.
    pub fn drops(&self) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.stage.is_drop()).collect()
    }

    /// The `n` ops whose causal chains stretched across the most
    /// epochs (admission-to-terminal latency in logical time), longest
    /// first, ties broken by ascending seq.
    pub fn slowest(&self, n: usize) -> Vec<TraceSpan> {
        let mut spans: std::collections::BTreeMap<TraceId, TraceSpan> =
            std::collections::BTreeMap::new();
        for e in self.events {
            spans
                .entry(e.seq)
                .and_modify(|s| {
                    s.first_epoch = s.first_epoch.min(e.epoch);
                    s.last_epoch = s.last_epoch.max(e.epoch);
                    s.events += 1;
                })
                .or_insert(TraceSpan {
                    seq: e.seq,
                    first_epoch: e.epoch,
                    last_epoch: e.epoch,
                    events: 1,
                });
        }
        let mut rows: Vec<TraceSpan> = spans.into_values().collect();
        // BTreeMap iteration is seq-ascending, and the sort is stable,
        // so equal spans keep ascending-seq order.
        rows.sort_by_key(|row| std::cmp::Reverse(row.span_epochs()));
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, epoch: u64, stage: TraceStage) -> TraceEvent {
        TraceEvent { seq, epoch, tick: epoch, stage }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(0, 0, TraceStage::Admitted { op: "register", shard: 1 }),
            ev(0, 0, TraceStage::RoutedToShard { shard: 1, waited_ticks: 0 }),
            ev(0, 0, TraceStage::Executed { shard: 1, ok: true }),
            ev(1, 0, TraceStage::Admitted { op: "buy", shard: 0 }),
            ev(1, 1, TraceStage::Escrowed { from_shard: 0, to_shard: 1, price: 25 }),
            ev(1, 3, TraceStage::Settled { outcome: "applied", requeues: 2 }),
            ev(2, 1, TraceStage::RateLimited { op: "twin_sync", retry_in_ticks: 4 }),
            ev(2, 1, TraceStage::Admitted { op: "vote", shard: 0 }),
            ev(2, 1, TraceStage::Executed { shard: 0, ok: false }),
        ]
    }

    #[test]
    fn trace_of_returns_the_full_chain_in_order() {
        let events = sample();
        let q = TraceQuery::new(&events);
        let chain = q.trace_of(1);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].stage.label(), "admitted");
        assert_eq!(chain[2].stage.label(), "settled");
        assert!(q.trace_of(99).is_empty());
    }

    #[test]
    fn drops_are_refusals_failures_and_non_applied_settlements() {
        let events = sample();
        let q = TraceQuery::new(&events);
        let drops = q.drops();
        assert_eq!(drops.len(), 2, "{drops:?}");
        assert_eq!(drops[0].stage.label(), "rate_limited");
        assert_eq!(drops[1].stage.label(), "executed");
        assert!(TraceStage::Settled { outcome: "refunded", requeues: 0 }.is_drop());
        assert!(!TraceStage::Settled { outcome: "applied", requeues: 0 }.is_drop());
    }

    #[test]
    fn slowest_orders_by_span_then_seq() {
        let events = sample();
        let q = TraceQuery::new(&events);
        let rows = q.slowest(10);
        assert_eq!(rows[0].seq, 1, "seq 1 spans 3 epochs");
        assert_eq!(rows[0].span_epochs(), 3);
        // seqs 0 and 2 both span 0 epochs: ascending-seq tie-break.
        assert_eq!(rows[1].seq, 0);
        assert_eq!(rows[2].seq, 2);
        assert_eq!(q.slowest(1).len(), 1);
    }
}
