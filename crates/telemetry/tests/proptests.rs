//! Property tests: snapshots of one hub are monotone in time, deltas
//! are exact for counters, and histograms never lose an observation.

use metaverse_telemetry::TelemetryHub;
use proptest::prelude::*;

/// One random instrument operation.
#[derive(Debug, Clone)]
enum Op {
    Count(u8, u8),
    Gauge(u8, i16),
    Observe(u8, u32),
    Snapshot,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..50).prop_map(|(k, n)| Op::Count(k, n)),
        (0u8..4, -500i16..500).prop_map(|(k, v)| Op::Gauge(k, v)),
        (0u8..4, 0u32..1_000_000).prop_map(|(k, v)| Op::Observe(k, v)),
        Just(Op::Snapshot),
    ]
}

proptest! {
    /// Every snapshot dominates every earlier one, whatever the op
    /// interleaving, and the final delta against the first snapshot
    /// accounts for every counter increment in between.
    #[test]
    fn snapshots_are_monotone(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let hub = TelemetryHub::new();
        let mut snapshots = vec![hub.snapshot()];
        let mut counted = [0u64; 4];
        let mut observed = [0u64; 4];
        for op in &ops {
            match op {
                Op::Count(k, n) => {
                    hub.counter(&format!("c{k}")).add(u64::from(*n));
                    counted[*k as usize] += u64::from(*n);
                }
                Op::Gauge(k, v) => hub.gauge(&format!("g{k}")).set(i64::from(*v)),
                Op::Observe(k, v) => {
                    hub.histogram(&format!("h{k}")).record(u64::from(*v));
                    observed[*k as usize] += 1;
                }
                Op::Snapshot => snapshots.push(hub.snapshot()),
            }
        }
        snapshots.push(hub.snapshot());
        for pair in snapshots.windows(2) {
            prop_assert!(pair[1].dominates(&pair[0]), "snapshots regressed");
        }
        let last = snapshots.last().unwrap();
        prop_assert!(last.dominates(&snapshots[0]));
        let delta = last.delta(&snapshots[0]);
        for k in 0..4u8 {
            let name = format!("c{k}");
            let want = counted[k as usize];
            prop_assert_eq!(delta.counters.get(&name).copied().unwrap_or(0), want);
            let hname = format!("h{k}");
            let got = delta.histograms.get(&hname).map_or(0, |h| h.count);
            prop_assert_eq!(got, observed[k as usize]);
        }
    }

    /// A histogram's buckets partition its observations: bucket counts
    /// sum to `count`, and min/max/sum agree with the raw stream.
    #[test]
    fn histogram_conserves_observations(
        values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
    ) {
        let hub = TelemetryHub::new();
        let h = hub.histogram("h");
        for v in &values {
            h.record(*v);
        }
        let snap = hub.snapshot().histograms["h"].clone();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().map(|(_, n)| n).sum::<u64>(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        // The quantile sweep is monotone and bracketed by min/max buckets.
        let mut last = 0;
        for i in 0..=10 {
            let q = snap.quantile(i as f64 / 10.0);
            prop_assert!(q >= last, "quantiles must not decrease");
            prop_assert!(q <= snap.max);
            last = q;
        }
    }

    /// JSON serialisation is loss-free for counters: every counter name
    /// and value appears, and braces balance (a cheap well-formedness
    /// proxy that needs no parser).
    #[test]
    fn json_roundtrips_counters(
        raw in proptest::collection::vec(("[a-z]{1,8}", 0u64..1_000_000_000), 0..20),
    ) {
        let pairs: std::collections::BTreeMap<String, u64> = raw.into_iter().collect();
        let hub = TelemetryHub::new();
        for (k, v) in &pairs {
            hub.counter(k).add(*v);
        }
        let json = hub.snapshot().to_json();
        for (k, v) in &pairs {
            prop_assert!(json.contains(&format!("\"{k}\":{v}")));
        }
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
