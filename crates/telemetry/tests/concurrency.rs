//! Concurrency gate for the telemetry instruments.
//!
//! The gateway's parallel epoch phase hammers one shared
//! [`TelemetryHub`] from every worker thread (`incr` on counters,
//! `record` on histograms) with no synchronization beyond the
//! instruments' own atomics. These tests prove that contract: N threads
//! of updates lose nothing, and snapshot totals are exact.

use metaverse_telemetry::TelemetryHub;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_counter_increments_lose_no_counts() {
    let hub = TelemetryHub::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                // Resolving by name concurrently must also converge on
                // one cell, not race a duplicate into the registry.
                let counter = hub.counter("gate.concurrent.ops");
                for _ in 0..PER_THREAD {
                    counter.incr();
                }
            });
        }
    });
    let snap = hub.snapshot();
    assert_eq!(
        snap.counters["gate.concurrent.ops"],
        THREADS as u64 * PER_THREAD,
        "every increment from every thread must survive"
    );
}

#[test]
fn concurrent_histogram_records_keep_exact_totals() {
    let hub = TelemetryHub::new();
    let hub = &hub;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                let histogram = hub.histogram("gate.concurrent.batch_ns");
                for i in 0..PER_THREAD {
                    // Distinct per-thread values so min/max are known.
                    histogram.record(t as u64 * PER_THREAD + i + 1);
                }
            });
        }
    });
    let snap = hub.snapshot();
    let h = &snap.histograms["gate.concurrent.batch_ns"];
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(h.count, n, "every record must be counted");
    assert_eq!(h.sum, n * (n + 1) / 2, "sum of 1..=N must be exact");
    assert_eq!(h.min, 1);
    assert_eq!(h.max, n);
}

#[test]
fn concurrent_mixed_instruments_stay_independent() {
    let hub = TelemetryHub::new();
    let hub = &hub;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                let counter = hub.counter(&format!("gate.shard.{t}.ops"));
                let histogram = hub.histogram(&format!("gate.shard.{t}.ns"));
                for i in 0..PER_THREAD {
                    counter.incr();
                    histogram.record(i + 1);
                }
            });
        }
    });
    let snap = hub.snapshot();
    for t in 0..THREADS {
        assert_eq!(snap.counters[&format!("gate.shard.{t}.ops")], PER_THREAD);
        let h = &snap.histograms[&format!("gate.shard.{t}.ns")];
        assert_eq!(h.count, PER_THREAD);
        assert_eq!(h.sum, PER_THREAD * (PER_THREAD + 1) / 2);
    }
}
