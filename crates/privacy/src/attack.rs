//! Inference attacks against sensor streams.
//!
//! These adversaries give the PET experiments a concrete threat to
//! defeat, matching the paper's warnings:
//!
//! * [`PreferenceInferenceAttack`] — infers the planted binary
//!   preference from gaze dwell times ("gaze data can give away users'
//!   sexual preferences", §II-A, citing Renaud et al.).
//! * [`GaitIdentificationAttack`] — re-identifies a user from their gait
//!   signature against an enrolled library (biometric linkage).

use crate::sensor::{SensorSample, UserProfile};

/// Infers a user's binary preference from gaze samples.
///
/// Decision rule: mean dwell-on-A above the threshold ⇒ "prefers A".
/// This is the Bayes-optimal attack for the synthetic stream when the
/// threshold is 0.5, so PET effectiveness is measured against the
/// strongest reasonable adversary.
#[derive(Debug, Clone, Copy)]
pub struct PreferenceInferenceAttack {
    /// Decision threshold on mean dwell (default 0.5).
    pub threshold: f64,
}

impl Default for PreferenceInferenceAttack {
    fn default() -> Self {
        PreferenceInferenceAttack { threshold: 0.5 }
    }
}

impl PreferenceInferenceAttack {
    /// Predicts whether the stream's user prefers region A.
    ///
    /// Returns `None` on an empty stream (nothing to infer).
    pub fn infer(&self, gaze: &[SensorSample]) -> Option<bool> {
        if gaze.is_empty() {
            return None;
        }
        let mean: f64 =
            gaze.iter().map(|s| s.values.first().copied().unwrap_or(0.5)).sum::<f64>()
                / gaze.len() as f64;
        Some(mean > self.threshold)
    }

    /// Attack accuracy over a set of `(stream, ground_truth)` pairs.
    /// Empty streams count as coin flips (0.5 credit), because the
    /// attacker learns nothing.
    pub fn accuracy(&self, cases: &[(Vec<SensorSample>, bool)]) -> f64 {
        if cases.is_empty() {
            return 0.0;
        }
        let score: f64 = cases
            .iter()
            .map(|(stream, truth)| match self.infer(stream) {
                Some(pred) if pred == *truth => 1.0,
                Some(_) => 0.0,
                None => 0.5,
            })
            .sum();
        score / cases.len() as f64
    }
}

/// Re-identifies users from gait streams against an enrolled library.
///
/// Enrollment stores each user's estimated (frequency, amplitude)
/// signature; identification picks the nearest enrolled signature in
/// normalized L2 distance.
#[derive(Debug, Default)]
pub struct GaitIdentificationAttack {
    library: Vec<(String, f64, f64)>,
}

impl GaitIdentificationAttack {
    /// Creates an attack with an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimates (frequency, amplitude) from a gait stream sampled at
    /// 20 Hz. Frequency comes from zero-crossing counting, amplitude from
    /// the 95th-percentile absolute acceleration.
    pub fn signature(gait: &[SensorSample]) -> Option<(f64, f64)> {
        if gait.len() < 8 {
            return None;
        }
        let accel: Vec<f64> = gait.iter().map(|s| s.values[0]).collect();
        let mut crossings = 0usize;
        for w in accel.windows(2) {
            if (w[0] <= 0.0 && w[1] > 0.0) || (w[0] >= 0.0 && w[1] < 0.0) {
                crossings += 1;
            }
        }
        let duration = gait.len() as f64 * 0.05;
        let frequency = crossings as f64 / (2.0 * duration);
        let mut mags: Vec<f64> = accel.iter().map(|a| a.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let amplitude = mags[(mags.len() as f64 * 0.95) as usize];
        Some((frequency, amplitude))
    }

    /// Enrolls a user from a clean reference stream.
    pub fn enroll(&mut self, user: &UserProfile, reference: &[SensorSample]) {
        if let Some((f, a)) = Self::signature(reference) {
            self.library.push((user.name.clone(), f, a));
        }
    }

    /// Number of enrolled identities.
    pub fn enrolled(&self) -> usize {
        self.library.len()
    }

    /// Identifies the user behind `gait`, returning the closest enrolled
    /// name, or `None` when the library is empty or the stream too short.
    pub fn identify(&self, gait: &[SensorSample]) -> Option<&str> {
        let (f, a) = Self::signature(gait)?;
        self.library
            .iter()
            .min_by(|x, y| {
                let dx = Self::distance(f, a, x.1, x.2);
                let dy = Self::distance(f, a, y.1, y.2);
                dx.partial_cmp(&dy).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(name, _, _)| name.as_str())
    }

    fn distance(f1: f64, a1: f64, f2: f64, a2: f64) -> f64 {
        // Normalize by typical ranges: frequency 1.4–2.2 Hz, amplitude
        // 0.8–1.4.
        let df = (f1 - f2) / 0.8;
        let da = (a1 - a2) / 0.6;
        (df * df + da * da).sqrt()
    }

    /// Top-1 identification accuracy over `(stream, true_name)` pairs.
    pub fn accuracy(&self, cases: &[(Vec<SensorSample>, String)]) -> f64 {
        if cases.is_empty() {
            return 0.0;
        }
        let hits = cases
            .iter()
            .filter(|(stream, truth)| self.identify(stream) == Some(truth.as_str()))
            .count();
        hits as f64 / cases.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pets::PetPipeline;
    use crate::sensor::GazeProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn users(n: usize, r: &mut StdRng) -> Vec<UserProfile> {
        (0..n).map(|i| UserProfile::random(format!("u{i}"), r)).collect()
    }

    #[test]
    fn preference_attack_beats_chance_on_raw_gaze() {
        let mut r = rng();
        let cases: Vec<(Vec<SensorSample>, bool)> = users(40, &mut r)
            .into_iter()
            .map(|u| {
                let stream = u.gaze_stream(100, &mut r);
                (stream, u.gaze.prefers_a)
            })
            .collect();
        let acc = PreferenceInferenceAttack::default().accuracy(&cases);
        assert!(acc > 0.9, "raw gaze should be highly identifying: {acc}");
    }

    #[test]
    fn strong_pets_push_attack_toward_chance() {
        let mut r = rng();
        let pipe = PetPipeline::new().noise(3.0).aggregate(50);
        let cases: Vec<(Vec<SensorSample>, bool)> = users(60, &mut r)
            .into_iter()
            .map(|u| {
                let mut stream = u.gaze_stream(100, &mut r);
                pipe.apply(&mut stream, &mut r).unwrap();
                (stream, u.gaze.prefers_a)
            })
            .collect();
        let acc = PreferenceInferenceAttack::default().accuracy(&cases);
        assert!(acc < 0.75, "heavy PETs should degrade the attack: {acc}");
    }

    #[test]
    fn empty_stream_uninformative() {
        let attack = PreferenceInferenceAttack::default();
        assert_eq!(attack.infer(&[]), None);
        assert_eq!(attack.accuracy(&[(vec![], true)]), 0.5);
    }

    #[test]
    fn weak_bias_user_hard_to_classify() {
        let mut r = rng();
        let mut u = UserProfile::random("weak", &mut r);
        u.gaze = GazeProfile { prefers_a: true, bias_strength: 0.5 };
        // Bias 0.5 is literally uninformative; accuracy over many trials
        // should hover near 0.5.
        let cases: Vec<(Vec<SensorSample>, bool)> =
            (0..100).map(|_| (u.gaze_stream(20, &mut r), true)).collect();
        let acc = PreferenceInferenceAttack::default().accuracy(&cases);
        assert!((0.3..0.7).contains(&acc), "uninformative stream: {acc}");
    }

    #[test]
    fn gait_reidentification_works_on_raw_streams() {
        let mut r = rng();
        let population = users(10, &mut r);
        let mut attack = GaitIdentificationAttack::new();
        for u in &population {
            let reference = u.gait_stream(300, &mut r);
            attack.enroll(u, &reference);
        }
        assert_eq!(attack.enrolled(), 10);
        let cases: Vec<(Vec<SensorSample>, String)> = population
            .iter()
            .map(|u| (u.gait_stream(300, &mut r), u.name.clone()))
            .collect();
        let acc = attack.accuracy(&cases);
        assert!(acc > 0.7, "gait re-identification accuracy: {acc}");
    }

    #[test]
    fn gait_attack_degrades_under_pets() {
        let mut r = rng();
        let population = users(10, &mut r);
        let mut attack = GaitIdentificationAttack::new();
        for u in &population {
            attack.enroll(u, &u.gait_stream(300, &mut r));
        }
        let pipe = PetPipeline::new().noise(1.5).subsample(4);
        let raw_cases: Vec<(Vec<SensorSample>, String)> = population
            .iter()
            .map(|u| (u.gait_stream(300, &mut r), u.name.clone()))
            .collect();
        let pet_cases: Vec<(Vec<SensorSample>, String)> = population
            .iter()
            .map(|u| {
                let mut s = u.gait_stream(300, &mut r);
                pipe.apply(&mut s, &mut r).unwrap();
                (s, u.name.clone())
            })
            .collect();
        assert!(attack.accuracy(&pet_cases) < attack.accuracy(&raw_cases));
    }

    #[test]
    fn short_stream_yields_no_signature() {
        assert!(GaitIdentificationAttack::signature(&[]).is_none());
        let mut r = rng();
        let u = UserProfile::random("u", &mut r);
        let short = u.gait_stream(4, &mut r);
        assert!(GaitIdentificationAttack::signature(&short).is_none());
    }

    #[test]
    fn identify_with_empty_library_is_none() {
        let mut r = rng();
        let attack = GaitIdentificationAttack::new();
        let u = UserProfile::random("u", &mut r);
        assert!(attack.identify(&u.gait_stream(100, &mut r)).is_none());
    }
}
