//! Bystander protection for spatial scans.
//!
//! §II-A: XR sensors "can collect information that might be sensible to
//! users **and bystanders** that are in the coverage zone of the
//! monitoring" — people who never consented to anything. This module
//! scrubs spatial scans on-device before they are shared: points flagged
//! as belonging to people are removed or melted into coarse occupancy
//! cells, and the leakage metric quantifies how much bystander geometry
//! survives.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sensor::SensorSample;

/// How bystander points are treated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScrubPolicy {
    /// Keep the scan as captured (the status-quo baseline).
    None,
    /// Drop every person-point entirely (safe, loses occupancy info).
    Remove,
    /// Replace person-points with the centre of a coarse cell of the
    /// given size — keeps "someone is here" for collision safety while
    /// destroying body geometry.
    Coarsen {
        /// Cell size in metres.
        cell: f64,
    },
}

/// Result of scrubbing a scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Policy applied.
    pub policy: String,
    /// Points in the input scan.
    pub input_points: usize,
    /// Points in the output scan.
    pub output_points: usize,
    /// Person-points remaining at full precision (the leak).
    pub precise_person_points: usize,
}

/// Scrubs a spatial scan (samples from
/// [`crate::sensor::spatial_scan`]: channels `[x, y, is_person]`).
pub fn scrub_scan(scan: &[SensorSample], policy: ScrubPolicy) -> (Vec<SensorSample>, ScrubReport) {
    let input_points = scan.len();
    let mut out = Vec::with_capacity(scan.len());
    let mut precise = 0usize;

    for sample in scan {
        let is_person = sample.values.get(2).copied().unwrap_or(0.0) > 0.5;
        if !is_person {
            out.push(sample.clone());
            continue;
        }
        match policy {
            ScrubPolicy::None => {
                precise += 1;
                out.push(sample.clone());
            }
            ScrubPolicy::Remove => {}
            ScrubPolicy::Coarsen { cell } => {
                let cell = cell.max(1e-6);
                let mut coarse = sample.clone();
                coarse.values[0] = (sample.values[0] / cell).floor() * cell + cell / 2.0;
                coarse.values[1] = (sample.values[1] / cell).floor() * cell + cell / 2.0;
                out.push(coarse);
            }
        }
    }

    let report = ScrubReport {
        policy: match policy {
            ScrubPolicy::None => "none".into(),
            ScrubPolicy::Remove => "remove".into(),
            ScrubPolicy::Coarsen { cell } => format!("coarsen({cell})"),
        },
        input_points,
        output_points: out.len(),
        precise_person_points: precise,
    };
    (out, report)
}

/// A bystander re-identification proxy: estimates each person-blob's
/// centroid from the scan and reports the mean localisation error an
/// observer would achieve against the true centres. Lower error = more
/// leakage.
pub fn bystander_localization_error(
    scan: &[SensorSample],
    true_centres: &[(f64, f64)],
) -> Option<f64> {
    let person_points: Vec<(f64, f64)> = scan
        .iter()
        .filter(|s| s.values.get(2).copied().unwrap_or(0.0) > 0.5)
        .map(|s| (s.values[0], s.values[1]))
        .collect();
    if person_points.is_empty() || true_centres.is_empty() {
        return None;
    }
    // Assign each point to its nearest true centre, then measure the
    // centroid error per centre.
    let mut sums = vec![(0.0f64, 0.0f64, 0usize); true_centres.len()];
    for (x, y) in &person_points {
        let (best, _) = true_centres
            .iter()
            .enumerate()
            .map(|(i, (cx, cy))| (i, (x - cx).powi(2) + (y - cy).powi(2)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap();
        sums[best].0 += x;
        sums[best].1 += y;
        sums[best].2 += 1;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, (sx, sy, n)) in sums.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        let (cx, cy) = true_centres[i];
        let (ex, ey) = (sx / *n as f64 - cx, sy / *n as f64 - cy);
        total += (ex * ex + ey * ey).sqrt();
        counted += 1;
    }
    if counted == 0 {
        None
    } else {
        Some(total / counted as f64)
    }
}

/// Generates a scan with known bystander centres, for experiments:
/// returns `(scan, true_centres)`.
pub fn scan_with_known_bystanders<R: Rng + ?Sized>(
    width: f64,
    depth: f64,
    bystanders: usize,
    points: usize,
    rng: &mut R,
) -> (Vec<SensorSample>, Vec<(f64, f64)>) {
    use metaverse_ledger::audit::SensorClass;
    let centres: Vec<(f64, f64)> = (0..bystanders)
        .map(|_| (rng.gen_range(1.0..width - 1.0), rng.gen_range(1.0..depth - 1.0)))
        .collect();
    let scan = (0..points)
        .map(|i| {
            let (x, y, person) = if !centres.is_empty() && rng.gen_bool(0.3) {
                let (cx, cy) = centres[rng.gen_range(0..centres.len())];
                (
                    (cx + rng.gen_range(-0.3..0.3)).clamp(0.0, width),
                    (cy + rng.gen_range(-0.3..0.3)).clamp(0.0, depth),
                    1.0,
                )
            } else {
                (rng.gen_range(0.0..width), rng.gen_range(0.0..depth), 0.0)
            };
            SensorSample {
                sensor: SensorClass::SpatialScan,
                values: vec![x, y, person],
                tick: i as u64,
            }
        })
        .collect();
    (scan, centres)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scan() -> (Vec<SensorSample>, Vec<(f64, f64)>) {
        let mut rng = StdRng::seed_from_u64(23);
        scan_with_known_bystanders(8.0, 6.0, 2, 600, &mut rng)
    }

    #[test]
    fn none_policy_leaks_everything() {
        let (s, _) = scan();
        let (out, report) = scrub_scan(&s, ScrubPolicy::None);
        assert_eq!(out.len(), s.len());
        assert!(report.precise_person_points > 50);
    }

    #[test]
    fn remove_policy_drops_all_person_points() {
        let (s, _) = scan();
        let (out, report) = scrub_scan(&s, ScrubPolicy::Remove);
        assert_eq!(report.precise_person_points, 0);
        assert!(out.iter().all(|p| p.values[2] < 0.5));
        assert!(report.output_points < report.input_points);
    }

    #[test]
    fn coarsen_keeps_occupancy_destroys_geometry() {
        let (s, centres) = scan();
        let (out, report) = scrub_scan(&s, ScrubPolicy::Coarsen { cell: 2.0 });
        assert_eq!(report.output_points, report.input_points, "points retained");
        assert_eq!(report.precise_person_points, 0);
        // All person points snap to cell centres.
        for p in out.iter().filter(|p| p.values[2] > 0.5) {
            let snapped = ((p.values[0] - 1.0) / 2.0).fract().abs();
            assert!(snapped < 1e-9, "x {} not on a cell centre", p.values[0]);
        }
        // Localisation error grows versus the raw scan.
        let raw_err = bystander_localization_error(&s, &centres).unwrap();
        let coarse_err = bystander_localization_error(&out, &centres).unwrap();
        assert!(raw_err < 0.15, "raw centroids are accurate: {raw_err}");
        assert!(coarse_err > raw_err, "coarse {coarse_err} vs raw {raw_err}");
    }

    #[test]
    fn localization_error_edge_cases() {
        let (s, _) = scan();
        assert!(bystander_localization_error(&s, &[]).is_none());
        let (empty, _) = scrub_scan(&s, ScrubPolicy::Remove);
        assert!(bystander_localization_error(&empty, &[(1.0, 1.0)]).is_none());
    }

    #[test]
    fn no_bystanders_nothing_to_scrub() {
        let mut rng = StdRng::seed_from_u64(5);
        let (s, centres) = scan_with_known_bystanders(5.0, 5.0, 0, 100, &mut rng);
        assert!(centres.is_empty());
        let (out, report) = scrub_scan(&s, ScrubPolicy::Remove);
        assert_eq!(out.len(), s.len());
        assert_eq!(report.precise_person_points, 0);
    }
}
