//! Error types for the privacy crate.

/// Errors returned by privacy operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrivacyError {
    /// The differential-privacy budget is exhausted.
    BudgetExhausted {
        /// Epsilon requested by the query.
        requested: f64,
        /// Epsilon remaining in the budget.
        remaining: f64,
    },
    /// A PET was configured with an invalid parameter.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The firewall blocked the flow.
    FlowBlocked {
        /// The sensor whose data was blocked.
        sensor: String,
        /// The collector that requested it.
        collector: String,
    },
}

impl std::fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrivacyError::BudgetExhausted { requested, remaining } => {
                write!(f, "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}")
            }
            PrivacyError::InvalidParameter { name, value } => {
                write!(f, "invalid PET parameter {name}={value}")
            }
            PrivacyError::FlowBlocked { sensor, collector } => {
                write!(f, "firewall blocked {sensor} flow to {collector}")
            }
        }
    }
}

impl std::error::Error for PrivacyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_epsilon() {
        let e = PrivacyError::BudgetExhausted { requested: 1.0, remaining: 0.25 };
        assert!(e.to_string().contains("0.25"));
    }
}
