//! The on-device data-flow firewall.
//!
//! Implements §II-D's device-side controls:
//!
//! > "XR devices that collect sensible data should provide granular
//! > control (switches) to manage the input data flows from sensors and
//! > provide visual cues (e.g., LED in the device) when personal data is
//! > collected or transmitted."
//!
//! Every attempted flow is evaluated against per-sensor switches and
//! per-(sensor, purpose) rules; permitted flows emit a
//! [`DataCollectionEvent`] for the ledger's audit registry and a
//! [`CueEvent`] for the device's indicator.

use std::collections::{BTreeMap, HashMap};

use metaverse_ledger::audit::{DataCollectionEvent, LawfulBasis, SensorClass};
use serde::{Deserialize, Serialize};

use crate::error::PrivacyError;
use crate::sensor::SensorSample;

/// The outcome of a flow request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirewallDecision {
    /// Flow permitted as-is.
    Allow,
    /// Flow permitted only because a PET pipeline will obfuscate it.
    AllowObfuscated,
    /// Flow denied.
    Deny,
}

/// A per-(sensor, purpose) rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowRule {
    /// Always allow.
    Allow,
    /// Allow only through a PET pipeline.
    RequireObfuscation,
    /// Never allow.
    Deny,
}

/// A visual-cue event (the "LED" of §II-D).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CueEvent {
    /// The sensor that transmitted.
    pub sensor: SensorClass,
    /// The receiving collector.
    pub collector: String,
    /// Logical time.
    pub tick: u64,
}

/// The firewall itself: switches, rules, cue log, and audit export.
///
/// ```
/// use metaverse_privacy::firewall::{DataFlowFirewall, FirewallDecision, FlowRule};
/// use metaverse_ledger::audit::{LawfulBasis, SensorClass};
///
/// let mut fw = DataFlowFirewall::deny_by_default("alice");
/// fw.set_switch(SensorClass::HeadMovement, true);
/// fw.set_rule(SensorClass::HeadMovement, "rendering", FlowRule::Allow);
/// let d = fw.request_flow(
///     SensorClass::HeadMovement, "render-service", "rendering",
///     LawfulBasis::Contract, 128, 0,
/// );
/// assert_eq!(d, FirewallDecision::Allow);
/// assert_eq!(fw.drain_audit_events().len(), 1);
/// ```
#[derive(Debug)]
pub struct DataFlowFirewall {
    /// The user this device belongs to.
    subject: String,
    /// Per-sensor master switches.
    switches: BTreeMap<SensorClass, bool>,
    /// Per-(sensor, purpose) rules.
    rules: HashMap<(SensorClass, String), FlowRule>,
    /// Default when no rule matches.
    default_rule: FlowRule,
    cue_log: Vec<CueEvent>,
    audit_events: Vec<DataCollectionEvent>,
    denied_flows: u64,
    allowed_flows: u64,
}

impl DataFlowFirewall {
    /// A firewall that denies everything until explicitly opened — the
    /// stance privacy advocates recommend for biometric sensors.
    pub fn deny_by_default(subject: impl Into<String>) -> Self {
        let mut switches = BTreeMap::new();
        for s in SensorClass::ALL {
            switches.insert(s, false);
        }
        DataFlowFirewall {
            subject: subject.into(),
            switches,
            rules: HashMap::new(),
            default_rule: FlowRule::Deny,
            cue_log: Vec::new(),
            audit_events: Vec::new(),
            denied_flows: 0,
            allowed_flows: 0,
        }
    }

    /// A permissive firewall (everything on, default allow) — the status
    /// quo the paper criticises; used as the experimental baseline.
    pub fn allow_by_default(subject: impl Into<String>) -> Self {
        let mut fw = Self::deny_by_default(subject);
        for s in SensorClass::ALL {
            fw.switches.insert(s, true);
        }
        fw.default_rule = FlowRule::Allow;
        fw
    }

    /// Sets a sensor's master switch.
    pub fn set_switch(&mut self, sensor: SensorClass, on: bool) {
        self.switches.insert(sensor, on);
    }

    /// Reads a sensor's master switch.
    pub fn switch(&self, sensor: SensorClass) -> bool {
        self.switches.get(&sensor).copied().unwrap_or(false)
    }

    /// Sets the rule for a (sensor, purpose) pair.
    pub fn set_rule(&mut self, sensor: SensorClass, purpose: &str, rule: FlowRule) {
        self.rules.insert((sensor, purpose.to_string()), rule);
    }

    /// Evaluates and records a flow request of `bytes` bytes.
    pub fn request_flow(
        &mut self,
        sensor: SensorClass,
        collector: &str,
        purpose: &str,
        basis: LawfulBasis,
        bytes: u64,
        tick: u64,
    ) -> FirewallDecision {
        if !self.switch(sensor) {
            self.denied_flows += 1;
            return FirewallDecision::Deny;
        }
        let rule = self
            .rules
            .get(&(sensor, purpose.to_string()))
            .copied()
            .unwrap_or(self.default_rule);
        let decision = match rule {
            FlowRule::Allow => FirewallDecision::Allow,
            FlowRule::RequireObfuscation => FirewallDecision::AllowObfuscated,
            FlowRule::Deny => FirewallDecision::Deny,
        };
        if decision == FirewallDecision::Deny {
            self.denied_flows += 1;
            return decision;
        }
        self.allowed_flows += 1;
        self.cue_log.push(CueEvent { sensor, collector: collector.to_string(), tick });
        self.audit_events.push(DataCollectionEvent {
            collector: collector.to_string(),
            subject: self.subject.clone(),
            sensor,
            purpose: purpose.to_string(),
            basis,
            tick,
            bytes,
        });
        decision
    }

    /// Ships a sample batch through the firewall: returns the samples on
    /// allow, an error on deny. (Obfuscation is applied by the caller's
    /// PET pipeline when the decision requires it.)
    pub fn ship<'a>(
        &mut self,
        samples: &'a [SensorSample],
        sensor: SensorClass,
        collector: &str,
        purpose: &str,
        basis: LawfulBasis,
        tick: u64,
    ) -> Result<(&'a [SensorSample], FirewallDecision), PrivacyError> {
        let bytes = (samples.len() * 16) as u64;
        match self.request_flow(sensor, collector, purpose, basis, bytes, tick) {
            FirewallDecision::Deny => Err(PrivacyError::FlowBlocked {
                sensor: format!("{sensor:?}"),
                collector: collector.to_string(),
            }),
            d => Ok((samples, d)),
        }
    }

    /// Visual-cue history (the LED blink log).
    pub fn cue_log(&self) -> &[CueEvent] {
        &self.cue_log
    }

    /// Takes the audit events accumulated since the last drain. The
    /// platform registers these with the ledger's [`metaverse_ledger::audit::AuditRegistry`].
    pub fn drain_audit_events(&mut self) -> Vec<DataCollectionEvent> {
        std::mem::take(&mut self.audit_events)
    }

    /// `(allowed, denied)` flow counters.
    pub fn flow_counts(&self) -> (u64, u64) {
        (self.allowed_flows, self.denied_flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_by_default_blocks_everything() {
        let mut fw = DataFlowFirewall::deny_by_default("alice");
        for sensor in SensorClass::ALL {
            let d = fw.request_flow(sensor, "c", "p", LawfulBasis::Consent, 10, 0);
            assert_eq!(d, FirewallDecision::Deny);
        }
        assert_eq!(fw.flow_counts(), (0, 8));
        assert!(fw.cue_log().is_empty());
        assert!(fw.drain_audit_events().is_empty());
    }

    #[test]
    fn switch_plus_rule_opens_flow() {
        let mut fw = DataFlowFirewall::deny_by_default("alice");
        fw.set_switch(SensorClass::Gaze, true);
        // Switch on but default rule still denies.
        assert_eq!(
            fw.request_flow(SensorClass::Gaze, "ads", "ads", LawfulBasis::Consent, 10, 0),
            FirewallDecision::Deny
        );
        fw.set_rule(SensorClass::Gaze, "foveation", FlowRule::RequireObfuscation);
        assert_eq!(
            fw.request_flow(SensorClass::Gaze, "render", "foveation", LawfulBasis::Contract, 10, 1),
            FirewallDecision::AllowObfuscated
        );
    }

    #[test]
    fn cues_and_audit_only_on_allowed_flows() {
        let mut fw = DataFlowFirewall::allow_by_default("alice");
        fw.request_flow(SensorClass::Audio, "chat", "voice", LawfulBasis::Consent, 64, 3);
        fw.set_switch(SensorClass::Gaze, false);
        fw.request_flow(SensorClass::Gaze, "ads", "ads", LawfulBasis::None, 64, 4);
        assert_eq!(fw.cue_log().len(), 1);
        assert_eq!(fw.cue_log()[0].tick, 3);
        let audit = fw.drain_audit_events();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].subject, "alice");
        assert_eq!(audit[0].collector, "chat");
    }

    #[test]
    fn ship_errors_on_deny() {
        let mut fw = DataFlowFirewall::deny_by_default("alice");
        let samples = vec![SensorSample {
            sensor: SensorClass::Gaze,
            values: vec![0.5],
            tick: 0,
        }];
        let err = fw
            .ship(&samples, SensorClass::Gaze, "cloud", "analytics", LawfulBasis::Consent, 0)
            .unwrap_err();
        assert!(matches!(err, PrivacyError::FlowBlocked { .. }));

        fw.set_switch(SensorClass::Gaze, true);
        fw.set_rule(SensorClass::Gaze, "analytics", FlowRule::Allow);
        let (shipped, decision) = fw
            .ship(&samples, SensorClass::Gaze, "cloud", "analytics", LawfulBasis::Consent, 1)
            .unwrap();
        assert_eq!(shipped.len(), 1);
        assert_eq!(decision, FirewallDecision::Allow);
    }

    #[test]
    fn per_purpose_granularity() {
        let mut fw = DataFlowFirewall::deny_by_default("alice");
        fw.set_switch(SensorClass::HeartRate, true);
        fw.set_rule(SensorClass::HeartRate, "fitness", FlowRule::Allow);
        fw.set_rule(SensorClass::HeartRate, "ads", FlowRule::Deny);
        assert_eq!(
            fw.request_flow(SensorClass::HeartRate, "app", "fitness", LawfulBasis::Consent, 8, 0),
            FirewallDecision::Allow
        );
        assert_eq!(
            fw.request_flow(SensorClass::HeartRate, "app", "ads", LawfulBasis::Consent, 8, 0),
            FirewallDecision::Deny
        );
    }

    #[test]
    fn audit_bytes_scale_with_batch() {
        let mut fw = DataFlowFirewall::allow_by_default("alice");
        let samples: Vec<SensorSample> = (0..10)
            .map(|i| SensorSample { sensor: SensorClass::Gait, values: vec![0.0], tick: i })
            .collect();
        fw.ship(&samples, SensorClass::Gait, "c", "p", LawfulBasis::Consent, 0).unwrap();
        let audit = fw.drain_audit_events();
        assert_eq!(audit[0].bytes, 160);
    }
}
