//! Synthetic biometric sensor streams with planted ground truth.
//!
//! Substitutes for the XR hardware the paper assumes. Each generator
//! plants a *latent attribute* in its stream so inference attacks have a
//! ground truth to be scored against:
//!
//! * gaze — dwell-time bias toward one of two screen regions encodes a
//!   binary preference (the paper's Renaud et al. citation);
//! * gait — a per-user (frequency, amplitude, phase) signature enables
//!   re-identification;
//! * heart rate — baseline plus arousal spikes correlated with content.

use metaverse_ledger::audit::SensorClass;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One sensor reading: a small vector of channel values at a tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSample {
    /// The sensor that produced the reading.
    pub sensor: SensorClass,
    /// Channel values (semantics depend on the sensor).
    pub values: Vec<f64>,
    /// Logical time of the reading.
    pub tick: u64,
}

/// Latent gaze attributes of a user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GazeProfile {
    /// Ground-truth binary preference: `true` = prefers region A.
    pub prefers_a: bool,
    /// Strength of the dwell bias, in `[0, 1]` (0.5 = undetectable).
    pub bias_strength: f64,
}

/// The full latent profile of a simulated user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User account name.
    pub name: String,
    /// Gaze attributes.
    pub gaze: GazeProfile,
    /// Gait signature: stride frequency (Hz).
    pub gait_frequency: f64,
    /// Gait signature: stride amplitude.
    pub gait_amplitude: f64,
    /// Resting heart rate (bpm).
    pub resting_hr: f64,
}

impl UserProfile {
    /// Samples a random user profile.
    pub fn random<R: Rng + ?Sized>(name: impl Into<String>, rng: &mut R) -> Self {
        UserProfile {
            name: name.into(),
            gaze: GazeProfile {
                prefers_a: rng.gen_bool(0.5),
                // Subtle dwell bias: the signal is real but not blatant,
                // as in the Renaud et al. measurements the paper cites.
                bias_strength: rng.gen_range(0.55..0.75),
            },
            gait_frequency: rng.gen_range(1.4..2.2),
            gait_amplitude: rng.gen_range(0.8..1.4),
            resting_hr: rng.gen_range(55.0..85.0),
        }
    }

    /// Generates `n` gaze samples. Channel 0 is the fraction of the frame
    /// spent dwelling on region A (vs B), in `[0, 1]`, plus sensor noise.
    pub fn gaze_stream<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<SensorSample> {
        let bias = if self.gaze.prefers_a {
            self.gaze.bias_strength
        } else {
            1.0 - self.gaze.bias_strength
        };
        (0..n)
            .map(|tick| {
                let noise: f64 = rng.gen_range(-0.15..0.15);
                let dwell_a = (bias + noise).clamp(0.0, 1.0);
                SensorSample {
                    sensor: SensorClass::Gaze,
                    values: vec![dwell_a],
                    tick: tick as u64,
                }
            })
            .collect()
    }

    /// Generates `n` gait samples: channel 0 is vertical acceleration of
    /// a sinusoidal stride, channel 1 the instantaneous stride phase.
    pub fn gait_stream<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<SensorSample> {
        let dt = 0.05; // 20 Hz sampling
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let phase = 2.0 * std::f64::consts::PI * self.gait_frequency * t;
                let accel =
                    self.gait_amplitude * phase.sin() + rng.gen_range(-0.05..0.05);
                SensorSample {
                    sensor: SensorClass::Gait,
                    values: vec![accel, phase % (2.0 * std::f64::consts::PI)],
                    tick: i as u64,
                }
            })
            .collect()
    }

    /// Generates `n` heart-rate samples with arousal spikes at the given
    /// ticks (content exposure events).
    pub fn heart_rate_stream<R: Rng + ?Sized>(
        &self,
        n: usize,
        arousal_ticks: &[u64],
        rng: &mut R,
    ) -> Vec<SensorSample> {
        (0..n)
            .map(|i| {
                let tick = i as u64;
                let spike: f64 = arousal_ticks
                    .iter()
                    .map(|&a| {
                        let d = tick.abs_diff(a) as f64;
                        18.0 * (-d / 4.0).exp()
                    })
                    .sum();
                let hr = self.resting_hr + spike + rng.gen_range(-2.0..2.0);
                SensorSample { sensor: SensorClass::HeartRate, values: vec![hr], tick }
            })
            .collect()
    }
}

/// Generates a spatial scan of a rectangular room: a point cloud with a
/// few "bystander" blobs — the data §II-A warns can capture people who
/// never consented.
pub fn spatial_scan<R: Rng + ?Sized>(
    width: f64,
    depth: f64,
    bystanders: usize,
    points: usize,
    rng: &mut R,
) -> Vec<SensorSample> {
    let blob_centres: Vec<(f64, f64)> = (0..bystanders)
        .map(|_| (rng.gen_range(0.0..width), rng.gen_range(0.0..depth)))
        .collect();
    (0..points)
        .map(|i| {
            // 30% of points belong to bystander blobs when present.
            let (x, y, is_person) = if !blob_centres.is_empty() && rng.gen_bool(0.3) {
                let (cx, cy) = blob_centres[rng.gen_range(0..blob_centres.len())];
                (
                    (cx + rng.gen_range(-0.3..0.3)).clamp(0.0, width),
                    (cy + rng.gen_range(-0.3..0.3)).clamp(0.0, depth),
                    1.0,
                )
            } else {
                (rng.gen_range(0.0..width), rng.gen_range(0.0..depth), 0.0)
            };
            SensorSample {
                sensor: SensorClass::SpatialScan,
                values: vec![x, y, is_person],
                tick: i as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn gaze_stream_encodes_preference() {
        let mut r = rng();
        let mut a_user = UserProfile::random("a", &mut r);
        a_user.gaze = GazeProfile { prefers_a: true, bias_strength: 0.8 };
        let mut b_user = a_user.clone();
        b_user.gaze.prefers_a = false;

        let mean = |samples: &[SensorSample]| {
            samples.iter().map(|s| s.values[0]).sum::<f64>() / samples.len() as f64
        };
        let ma = mean(&a_user.gaze_stream(200, &mut r));
        let mb = mean(&b_user.gaze_stream(200, &mut r));
        assert!(ma > 0.65, "A-preferring dwell {ma}");
        assert!(mb < 0.35, "B-preferring dwell {mb}");
    }

    #[test]
    fn gaze_values_bounded() {
        let mut r = rng();
        let u = UserProfile::random("u", &mut r);
        for s in u.gaze_stream(500, &mut r) {
            assert!((0.0..=1.0).contains(&s.values[0]));
            assert_eq!(s.sensor, SensorClass::Gaze);
        }
    }

    #[test]
    fn gait_stream_periodic_with_user_frequency() {
        let mut r = rng();
        let mut u = UserProfile::random("u", &mut r);
        u.gait_frequency = 2.0;
        u.gait_amplitude = 1.0;
        let stream = u.gait_stream(400, &mut r);
        // Peak amplitude should be close to the configured amplitude.
        let max = stream.iter().map(|s| s.values[0].abs()).fold(0.0f64, f64::max);
        assert!((0.9..=1.1).contains(&max), "max accel {max}");
    }

    #[test]
    fn heart_rate_spikes_at_arousal() {
        let mut r = rng();
        let u = UserProfile::random("u", &mut r);
        let stream = u.heart_rate_stream(60, &[30], &mut r);
        let at_spike = stream[30].values[0];
        let baseline = stream[5].values[0];
        assert!(at_spike > baseline + 10.0, "spike {at_spike} vs baseline {baseline}");
    }

    #[test]
    fn spatial_scan_contains_bystanders() {
        let mut r = rng();
        let scan = spatial_scan(5.0, 4.0, 2, 500, &mut r);
        let person_points = scan.iter().filter(|s| s.values[2] > 0.5).count();
        assert!(person_points > 50, "bystander points: {person_points}");
        for s in &scan {
            assert!((0.0..=5.0).contains(&s.values[0]));
            assert!((0.0..=4.0).contains(&s.values[1]));
        }
    }

    #[test]
    fn spatial_scan_no_bystanders() {
        let mut r = rng();
        let scan = spatial_scan(5.0, 4.0, 0, 200, &mut r);
        assert!(scan.iter().all(|s| s.values[2] == 0.0));
    }

    #[test]
    fn random_profiles_differ() {
        let mut r = rng();
        let a = UserProfile::random("a", &mut r);
        let b = UserProfile::random("b", &mut r);
        assert!(a.gait_frequency != b.gait_frequency || a.resting_hr != b.resting_hr);
    }
}
