//! Privacy-enhancing technologies (PETs) and pipelines.
//!
//! Each PET is a transform over a sensor stream, applied on the user's
//! device *before* data leaves it (Figure 2's "securing the input").
//! PETs compose into an ordered [`PetPipeline`]; composition order is a
//! design choice DESIGN.md flags for ablation (E1).

use rand::Rng;

use crate::error::PrivacyError;
use crate::sensor::SensorSample;

/// A privacy-enhancing transform over sensor samples.
pub trait Pet: std::fmt::Debug {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Transforms a stream in place.
    fn apply<R: Rng + ?Sized>(
        &self,
        samples: &mut Vec<SensorSample>,
        rng: &mut R,
    ) -> Result<(), PrivacyError>;
}

/// Adds zero-mean Laplace noise of the given scale to every channel.
#[derive(Debug, Clone, Copy)]
pub struct NoiseInjection {
    /// Laplace scale parameter `b` (variance `2b²`).
    pub scale: f64,
}

/// Samples Laplace(0, b) noise using inverse-CDF sampling.
fn laplace<R: Rng + ?Sized>(b: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

impl Pet for NoiseInjection {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn apply<R: Rng + ?Sized>(
        &self,
        samples: &mut Vec<SensorSample>,
        rng: &mut R,
    ) -> Result<(), PrivacyError> {
        if self.scale < 0.0 || !self.scale.is_finite() {
            return Err(PrivacyError::InvalidParameter { name: "scale", value: self.scale });
        }
        for s in samples.iter_mut() {
            for v in &mut s.values {
                *v += laplace(self.scale, rng);
            }
        }
        Ok(())
    }
}

/// Quantises every channel to a fixed step (coarsening resolution).
#[derive(Debug, Clone, Copy)]
pub struct Quantization {
    /// Quantisation step; values are rounded to multiples of it.
    pub step: f64,
}

impl Pet for Quantization {
    fn name(&self) -> &'static str {
        "quantize"
    }

    fn apply<R: Rng + ?Sized>(
        &self,
        samples: &mut Vec<SensorSample>,
        _rng: &mut R,
    ) -> Result<(), PrivacyError> {
        if self.step <= 0.0 || !self.step.is_finite() {
            return Err(PrivacyError::InvalidParameter { name: "step", value: self.step });
        }
        for s in samples.iter_mut() {
            for v in &mut s.values {
                *v = (*v / self.step).round() * self.step;
            }
        }
        Ok(())
    }
}

/// Keeps only every `keep_one_in`-th sample (temporal subsampling).
#[derive(Debug, Clone, Copy)]
pub struct Subsampling {
    /// Retention period: 1 keeps everything, 4 keeps every 4th sample.
    pub keep_one_in: usize,
}

impl Pet for Subsampling {
    fn name(&self) -> &'static str {
        "subsample"
    }

    fn apply<R: Rng + ?Sized>(
        &self,
        samples: &mut Vec<SensorSample>,
        _rng: &mut R,
    ) -> Result<(), PrivacyError> {
        if self.keep_one_in == 0 {
            return Err(PrivacyError::InvalidParameter { name: "keep_one_in", value: 0.0 });
        }
        let k = self.keep_one_in;
        let mut i = 0;
        samples.retain(|_| {
            let keep = i % k == 0;
            i += 1;
            keep
        });
        Ok(())
    }
}

/// Replaces each window of `window` samples with their channel-wise mean
/// (temporal aggregation — individual fixations disappear).
#[derive(Debug, Clone, Copy)]
pub struct Aggregation {
    /// Window length in samples.
    pub window: usize,
}

impl Pet for Aggregation {
    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn apply<R: Rng + ?Sized>(
        &self,
        samples: &mut Vec<SensorSample>,
        _rng: &mut R,
    ) -> Result<(), PrivacyError> {
        if self.window == 0 {
            return Err(PrivacyError::InvalidParameter { name: "window", value: 0.0 });
        }
        if samples.is_empty() {
            return Ok(());
        }
        let mut out = Vec::with_capacity(samples.len() / self.window + 1);
        for chunk in samples.chunks(self.window) {
            let channels = chunk[0].values.len();
            let mut mean = vec![0.0; channels];
            for s in chunk {
                for (m, v) in mean.iter_mut().zip(&s.values) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= chunk.len() as f64;
            }
            out.push(SensorSample {
                sensor: chunk[0].sensor,
                values: mean,
                tick: chunk[0].tick,
            });
        }
        *samples = out;
        Ok(())
    }
}

/// Tracks a differential-privacy epsilon budget across queries.
///
/// The budget enforces the paper's demand that data sharing be *bounded*:
/// once spent, further releases are refused rather than silently leaking.
#[derive(Debug, Clone, Copy)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates a budget with `total` epsilon.
    pub fn new(total: f64) -> Self {
        PrivacyBudget { total: total.max(0.0), spent: 0.0 }
    }

    /// Remaining epsilon.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Epsilon consumed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Attempts to spend `epsilon`; fails when the budget cannot cover it.
    ///
    /// A spend must be a finite, non-negative epsilon: NaN compares
    /// false against every bound (so it used to slip past the
    /// exhaustion check and poison `spent` forever), and a negative
    /// epsilon would silently *refund* budget. Both are rejected as
    /// typed parameter errors before any accounting happens.
    pub fn spend(&mut self, epsilon: f64) -> Result<(), PrivacyError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(PrivacyError::InvalidParameter { name: "epsilon", value: epsilon });
        }
        if epsilon > self.remaining() + 1e-12 {
            return Err(PrivacyError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        Ok(())
    }
}

/// The Laplace mechanism: releases each channel with noise calibrated to
/// `sensitivity / epsilon`, debiting a [`PrivacyBudget`].
#[derive(Debug)]
pub struct DifferentialPrivacy {
    /// Epsilon charged per release (whole-stream release).
    pub epsilon: f64,
    /// L1 sensitivity of the released values.
    pub sensitivity: f64,
}

impl DifferentialPrivacy {
    /// Applies the mechanism, spending from `budget`.
    pub fn release<R: Rng + ?Sized>(
        &self,
        samples: &mut [SensorSample],
        budget: &mut PrivacyBudget,
        rng: &mut R,
    ) -> Result<(), PrivacyError> {
        if self.epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter { name: "epsilon", value: self.epsilon });
        }
        budget.spend(self.epsilon)?;
        let scale = self.sensitivity / self.epsilon;
        for s in samples.iter_mut() {
            for v in &mut s.values {
                *v += laplace(scale, rng);
            }
        }
        Ok(())
    }
}

/// An ordered composition of PETs applied on-device before sharing.
#[derive(Debug, Default)]
pub struct PetPipeline {
    stages: Vec<Stage>,
}

#[derive(Debug)]
enum Stage {
    Noise(NoiseInjection),
    Quantize(Quantization),
    Subsample(Subsampling),
    Aggregate(Aggregation),
}

impl PetPipeline {
    /// An empty (pass-through) pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a noise stage.
    pub fn noise(mut self, scale: f64) -> Self {
        self.stages.push(Stage::Noise(NoiseInjection { scale }));
        self
    }

    /// Appends a quantisation stage.
    pub fn quantize(mut self, step: f64) -> Self {
        self.stages.push(Stage::Quantize(Quantization { step }));
        self
    }

    /// Appends a subsampling stage.
    pub fn subsample(mut self, keep_one_in: usize) -> Self {
        self.stages.push(Stage::Subsample(Subsampling { keep_one_in }));
        self
    }

    /// Appends an aggregation stage.
    pub fn aggregate(mut self, window: usize) -> Self {
        self.stages.push(Stage::Aggregate(Aggregation { window }));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline is pass-through.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names in order, for reports.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Noise(p) => p.name(),
                Stage::Quantize(p) => p.name(),
                Stage::Subsample(p) => p.name(),
                Stage::Aggregate(p) => p.name(),
            })
            .collect()
    }

    /// Applies every stage in order.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        samples: &mut Vec<SensorSample>,
        rng: &mut R,
    ) -> Result<(), PrivacyError> {
        for stage in &self.stages {
            match stage {
                Stage::Noise(p) => p.apply(samples, rng)?,
                Stage::Quantize(p) => p.apply(samples, rng)?,
                Stage::Subsample(p) => p.apply(samples, rng)?,
                Stage::Aggregate(p) => p.apply(samples, rng)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_ledger::audit::SensorClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn stream(n: usize) -> Vec<SensorSample> {
        (0..n)
            .map(|i| SensorSample {
                sensor: SensorClass::Gaze,
                values: vec![0.7, 0.2],
                tick: i as u64,
            })
            .collect()
    }

    #[test]
    fn laplace_noise_zero_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| laplace(0.5, &mut r)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_perturbs_values() {
        let mut r = rng();
        let mut s = stream(100);
        NoiseInjection { scale: 0.1 }.apply(&mut s, &mut r).unwrap();
        assert!(s.iter().any(|x| (x.values[0] - 0.7).abs() > 1e-9));
        assert_eq!(s.len(), 100, "noise keeps every sample");
    }

    #[test]
    fn zero_scale_noise_is_identity() {
        let mut r = rng();
        let mut s = stream(10);
        NoiseInjection { scale: 0.0 }.apply(&mut s, &mut r).unwrap();
        assert!(s.iter().all(|x| x.values == vec![0.7, 0.2]));
    }

    #[test]
    fn negative_noise_scale_rejected() {
        let mut r = rng();
        let mut s = stream(1);
        assert!(NoiseInjection { scale: -1.0 }.apply(&mut s, &mut r).is_err());
    }

    #[test]
    fn quantization_rounds_to_step() {
        let mut r = rng();
        let mut s = stream(5);
        Quantization { step: 0.5 }.apply(&mut s, &mut r).unwrap();
        assert!(s.iter().all(|x| x.values[0] == 0.5 && x.values[1] == 0.0));
        assert!(Quantization { step: 0.0 }.apply(&mut stream(1), &mut r).is_err());
    }

    #[test]
    fn subsampling_thins_stream() {
        let mut r = rng();
        let mut s = stream(10);
        Subsampling { keep_one_in: 3 }.apply(&mut s, &mut r).unwrap();
        assert_eq!(s.len(), 4); // ticks 0,3,6,9
        assert_eq!(s[1].tick, 3);
        assert!(Subsampling { keep_one_in: 0 }.apply(&mut stream(1), &mut r).is_err());
    }

    #[test]
    fn aggregation_means_windows() {
        let mut r = rng();
        let mut s: Vec<SensorSample> = (0..4)
            .map(|i| SensorSample {
                sensor: SensorClass::Gaze,
                values: vec![i as f64],
                tick: i as u64,
            })
            .collect();
        Aggregation { window: 2 }.apply(&mut s, &mut r).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].values[0], 0.5);
        assert_eq!(s[1].values[0], 2.5);
    }

    #[test]
    fn aggregation_empty_ok() {
        let mut r = rng();
        let mut s: Vec<SensorSample> = Vec::new();
        Aggregation { window: 4 }.apply(&mut s, &mut r).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn budget_enforced() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend(0.6).unwrap();
        assert!((b.remaining() - 0.4).abs() < 1e-12);
        let err = b.spend(0.5).unwrap_err();
        assert!(matches!(err, PrivacyError::BudgetExhausted { .. }));
        b.spend(0.4).unwrap();
        assert!(b.remaining() < 1e-12);
    }

    #[test]
    fn dp_release_spends_budget_and_noises() {
        let mut r = rng();
        let mut b = PrivacyBudget::new(2.0);
        let mut s = stream(50);
        let dp = DifferentialPrivacy { epsilon: 1.0, sensitivity: 1.0 };
        dp.release(&mut s, &mut b, &mut r).unwrap();
        assert!((b.spent() - 1.0).abs() < 1e-12);
        assert!(s.iter().any(|x| (x.values[0] - 0.7).abs() > 1e-9));
        dp.release(&mut s, &mut b, &mut r).unwrap();
        assert!(dp.release(&mut s, &mut b, &mut r).is_err(), "third release over budget");
    }

    #[test]
    fn spend_rejects_nan_and_negative_epsilon() {
        let mut b = PrivacyBudget::new(1.0);
        for bad in [f64::NAN, -0.25, f64::NEG_INFINITY, f64::INFINITY] {
            let err = b.spend(bad).unwrap_err();
            assert!(
                matches!(err, PrivacyError::InvalidParameter { name: "epsilon", .. }),
                "epsilon {bad} must be a typed parameter error, got {err:?}"
            );
        }
        // Accounting is untouched by the rejected spends: the full
        // budget is still spendable and `spent` never went NaN.
        assert_eq!(b.spent(), 0.0);
        b.spend(1.0).unwrap();
        assert!((b.spent() - 1.0).abs() < 1e-12);
        assert!(b.spend(0.5).is_err(), "budget exhausted after the one valid spend");
    }

    #[test]
    fn dp_release_rejects_nan_epsilon_before_spending() {
        let mut r = rng();
        let mut b = PrivacyBudget::new(1.0);
        let dp = DifferentialPrivacy { epsilon: f64::NAN, sensitivity: 1.0 };
        let err = dp.release(&mut stream(1), &mut b, &mut r).unwrap_err();
        assert!(matches!(err, PrivacyError::InvalidParameter { name: "epsilon", .. }));
        assert_eq!(b.spent(), 0.0, "a rejected release must not touch the budget");
    }

    #[test]
    fn dp_rejects_nonpositive_epsilon() {
        let mut r = rng();
        let mut b = PrivacyBudget::new(1.0);
        let dp = DifferentialPrivacy { epsilon: 0.0, sensitivity: 1.0 };
        assert!(dp.release(&mut stream(1), &mut b, &mut r).is_err());
    }

    #[test]
    fn pipeline_composes_in_order() {
        let mut r = rng();
        let mut s = stream(12);
        let pipe = PetPipeline::new().noise(0.05).quantize(0.25).subsample(2);
        assert_eq!(pipe.stage_names(), vec!["noise", "quantize", "subsample"]);
        pipe.apply(&mut s, &mut r).unwrap();
        assert_eq!(s.len(), 6);
        // After quantisation every value is a multiple of 0.25.
        for x in &s {
            for v in &x.values {
                let q = v / 0.25;
                assert!((q - q.round()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut r = rng();
        let mut s = stream(5);
        let before = s.clone();
        PetPipeline::new().apply(&mut s, &mut r).unwrap();
        assert_eq!(s, before);
    }
}
