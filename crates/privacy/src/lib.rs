//! # metaverse-privacy
//!
//! Sensory-level privacy for `metaverse-kit`, implementing §II-A/§II-D of
//! the paper and the data-centric protection pipeline of its Figure 2
//! (after De Guzman et al.):
//!
//! > "This fine-control of collected data can be managed by
//! > privacy-enhancing technologies (PETs) that obfuscate any sensible
//! > data from the sensors before being shared with cloud services."
//!
//! The XR hardware the paper assumes (HMD gaze/gait/heart-rate sensors)
//! is hardware-gated, so this crate substitutes **synthetic biometric
//! streams with planted ground truth**: gaze streams carry a latent
//! user preference, gait streams carry an identifying signature. That
//! lets experiments measure exactly what the paper warns about — "gaze
//! data can give away users' sexual preferences" — as an attacker
//! accuracy number, with and without PETs.
//!
//! Components:
//!
//! * [`sensor`] — synthetic gaze / gait / heart-rate / spatial streams.
//! * [`pets`] — privacy-enhancing transforms (noise, quantisation,
//!   subsampling, aggregation, differential-privacy with budget), and
//!   ordered [`pets::PetPipeline`] composition.
//! * [`firewall`] — per-sensor granular switches, purpose rules, visual
//!   cues, and audit-event emission (§II-D's device-side controls).
//! * [`attack`] — inference adversaries: preference inference from gaze,
//!   re-identification from gait.
//! * [`metrics`] — leakage and utility metrics for the E1 trade-off.
//! * [`bystander`] — spatial-scan scrubbing protecting people in the
//!   sensor's coverage zone who never consented (§II-A).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod bystander;
pub mod error;
pub mod firewall;
pub mod metrics;
pub mod pets;
pub mod sensor;

pub use attack::{GaitIdentificationAttack, PreferenceInferenceAttack};
pub use bystander::{scrub_scan, ScrubPolicy, ScrubReport};
pub use error::PrivacyError;
pub use firewall::{CueEvent, DataFlowFirewall, FirewallDecision, FlowRule};
pub use metrics::{attack_advantage, utility_from_distortion, TradeoffPoint};
pub use pets::{Pet, PetPipeline, PrivacyBudget};
pub use sensor::{GazeProfile, SensorSample, UserProfile};
