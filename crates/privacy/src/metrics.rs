//! Leakage and utility metrics for the privacy–utility trade-off (E1).

use serde::{Deserialize, Serialize};

use crate::sensor::SensorSample;

/// One point on the privacy–utility curve — a row in the E1 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// PET configuration label.
    pub pet: String,
    /// Attack accuracy under this PET (0.5 = chance for binary).
    pub attack_accuracy: f64,
    /// Attacker advantage over random guessing, in `[0, 1]`.
    pub attack_advantage: f64,
    /// Application utility retained, in `[0, 1]`.
    pub utility: f64,
}

/// Attacker advantage over chance for a binary attribute:
/// `max(0, 2·accuracy − 1)`.
pub fn attack_advantage(accuracy: f64) -> f64 {
    (2.0 * accuracy - 1.0).max(0.0)
}

/// Mean squared distortion between an original and a transformed stream,
/// aligned by tick (samples dropped by subsampling count at full
/// per-sample distortion `cap`).
pub fn stream_distortion(original: &[SensorSample], transformed: &[SensorSample], cap: f64) -> f64 {
    if original.is_empty() {
        return 0.0;
    }
    use std::collections::HashMap;
    let by_tick: HashMap<u64, &SensorSample> =
        transformed.iter().map(|s| (s.tick, s)).collect();
    let mut total = 0.0;
    for o in original {
        match by_tick.get(&o.tick) {
            Some(t) => {
                let channels = o.values.len().min(t.values.len()).max(1);
                let mse: f64 = o
                    .values
                    .iter()
                    .zip(&t.values)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / channels as f64;
                total += mse.min(cap);
            }
            None => total += cap,
        }
    }
    total / original.len() as f64
}

/// Converts distortion into a utility figure in `[0, 1]`:
/// `1 − distortion / cap` (a fully destroyed stream has utility 0).
pub fn utility_from_distortion(distortion: f64, cap: f64) -> f64 {
    if cap <= 0.0 {
        return 0.0;
    }
    (1.0 - distortion / cap).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_ledger::audit::SensorClass;

    fn sample(tick: u64, v: f64) -> SensorSample {
        SensorSample { sensor: SensorClass::Gaze, values: vec![v], tick }
    }

    #[test]
    fn advantage_maps_accuracy() {
        assert_eq!(attack_advantage(0.5), 0.0);
        assert_eq!(attack_advantage(1.0), 1.0);
        assert!((attack_advantage(0.75) - 0.5).abs() < 1e-12);
        assert_eq!(attack_advantage(0.3), 0.0, "below-chance clamps to 0");
    }

    #[test]
    fn identity_stream_zero_distortion_full_utility() {
        let s = vec![sample(0, 0.5), sample(1, 0.7)];
        let d = stream_distortion(&s, &s, 1.0);
        assert_eq!(d, 0.0);
        assert_eq!(utility_from_distortion(d, 1.0), 1.0);
    }

    #[test]
    fn perturbed_stream_distortion() {
        let original = vec![sample(0, 0.5)];
        let noisy = vec![sample(0, 0.7)];
        let d = stream_distortion(&original, &noisy, 1.0);
        assert!((d - 0.04).abs() < 1e-12);
    }

    #[test]
    fn dropped_samples_cost_cap() {
        let original = vec![sample(0, 0.5), sample(1, 0.5)];
        let thinned = vec![sample(0, 0.5)];
        let d = stream_distortion(&original, &thinned, 0.25);
        assert!((d - 0.125).abs() < 1e-12, "one dropped of two at cap 0.25");
    }

    #[test]
    fn distortion_capped_per_sample() {
        let original = vec![sample(0, 0.0)];
        let wild = vec![sample(0, 100.0)];
        let d = stream_distortion(&original, &wild, 1.0);
        assert_eq!(d, 1.0);
        assert_eq!(utility_from_distortion(d, 1.0), 0.0);
    }

    #[test]
    fn empty_original_zero() {
        assert_eq!(stream_distortion(&[], &[], 1.0), 0.0);
    }

    #[test]
    fn utility_clamped() {
        assert_eq!(utility_from_distortion(2.0, 1.0), 0.0);
        assert_eq!(utility_from_distortion(-0.5, 1.0), 1.0);
        assert_eq!(utility_from_distortion(0.5, 0.0), 0.0);
    }
}
