//! Property-based tests for PET and firewall invariants.

use metaverse_ledger::audit::{LawfulBasis, SensorClass};
use metaverse_privacy::firewall::{DataFlowFirewall, FlowRule};
use metaverse_privacy::metrics::{stream_distortion, utility_from_distortion};
use metaverse_privacy::pets::{PetPipeline, PrivacyBudget};
use metaverse_privacy::sensor::SensorSample;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn stream(values: &[f64]) -> Vec<SensorSample> {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| SensorSample {
            sensor: SensorClass::Gaze,
            values: vec![*v],
            tick: i as u64,
        })
        .collect()
}

proptest! {
    /// Quantisation is idempotent: applying it twice equals once.
    #[test]
    fn quantization_idempotent(
        values in proptest::collection::vec(-10.0f64..10.0, 1..50),
        step in 0.01f64..2.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pipe = PetPipeline::new().quantize(step);
        let mut once = stream(&values);
        pipe.apply(&mut once, &mut rng).unwrap();
        let mut twice = once.clone();
        pipe.apply(&mut twice, &mut rng).unwrap();
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a.values[0] - b.values[0]).abs() < 1e-9);
        }
    }

    /// Subsampling keeps exactly ceil(n/k) samples and preserves order.
    #[test]
    fn subsampling_count_exact(
        n in 1usize..200,
        k in 1usize..10,
    ) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut s = stream(&values);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        PetPipeline::new().subsample(k).apply(&mut s, &mut rng).unwrap();
        prop_assert_eq!(s.len(), n.div_ceil(k));
        for w in s.windows(2) {
            prop_assert!(w[0].tick < w[1].tick, "order preserved");
        }
    }

    /// Aggregation output length is ceil(n/window) and every output
    /// value lies within the min..max of its window.
    #[test]
    fn aggregation_means_within_range(
        values in proptest::collection::vec(-5.0f64..5.0, 1..100),
        window in 1usize..20,
    ) {
        let mut s = stream(&values);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        PetPipeline::new().aggregate(window).apply(&mut s, &mut rng).unwrap();
        prop_assert_eq!(s.len(), values.len().div_ceil(window));
        for (i, out) in s.iter().enumerate() {
            let chunk = &values[i * window..((i + 1) * window).min(values.len())];
            let lo = chunk.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = chunk.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(out.values[0] >= lo - 1e-9 && out.values[0] <= hi + 1e-9);
        }
    }

    /// Distortion is zero iff the streams match; utility inverts it
    /// monotonically.
    #[test]
    fn distortion_and_utility_consistent(
        values in proptest::collection::vec(0.0f64..1.0, 1..50),
        shift in 0.0f64..0.4,
    ) {
        let original = stream(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let transformed = stream(&shifted);
        let d = stream_distortion(&original, &transformed, 0.25);
        prop_assert!(d >= 0.0);
        if shift == 0.0 {
            prop_assert!(d < 1e-12);
        }
        let u = utility_from_distortion(d, 0.25);
        prop_assert!((0.0..=1.0).contains(&u));
        // Bigger shift → no less distortion.
        let shifted2: Vec<f64> = values.iter().map(|v| v + shift * 2.0).collect();
        let d2 = stream_distortion(&original, &stream(&shifted2), 0.25);
        prop_assert!(d2 >= d - 1e-12);
    }

    /// Privacy budget accounting: total spend never exceeds the budget,
    /// and spend() + remaining() == total.
    #[test]
    fn budget_accounting_exact(
        total in 0.1f64..10.0,
        requests in proptest::collection::vec(0.01f64..3.0, 1..30),
    ) {
        let mut budget = PrivacyBudget::new(total);
        for eps in requests {
            let before = budget.spent();
            match budget.spend(eps) {
                Ok(()) => prop_assert!(budget.spent() - before - eps < 1e-9),
                Err(_) => prop_assert!(budget.spent() - before < 1e-12, "failed spend is free"),
            }
            prop_assert!(budget.spent() <= total + 1e-9);
            prop_assert!((budget.spent() + budget.remaining() - total).abs() < 1e-9);
        }
    }

    /// Firewall: a sensor whose switch is off never allows a flow, for
    /// any rule configuration; counters always balance.
    #[test]
    fn firewall_switch_dominates(
        rules in proptest::collection::vec((0usize..8, 0u8..3), 0..20),
        flows in proptest::collection::vec(0usize..8, 1..40),
    ) {
        let mut fw = DataFlowFirewall::deny_by_default("prop");
        // Sensor 0 stays off; all others on.
        for s in &SensorClass::ALL[1..] {
            fw.set_switch(*s, true);
        }
        for (sensor, rule) in rules {
            let rule = match rule {
                0 => FlowRule::Allow,
                1 => FlowRule::RequireObfuscation,
                _ => FlowRule::Deny,
            };
            fw.set_rule(SensorClass::ALL[sensor], "p", rule);
        }
        let mut attempts = 0u64;
        for sensor in flows {
            attempts += 1;
            let decision = fw.request_flow(
                SensorClass::ALL[sensor],
                "c",
                "p",
                LawfulBasis::Consent,
                8,
                0,
            );
            if sensor == 0 {
                prop_assert_eq!(decision, metaverse_privacy::firewall::FirewallDecision::Deny);
            }
        }
        let (allowed, denied) = fw.flow_counts();
        prop_assert_eq!(allowed + denied, attempts);
        prop_assert_eq!(fw.cue_log().len() as u64, allowed, "one cue per allowed flow");
        prop_assert_eq!(fw.drain_audit_events().len() as u64, allowed);
    }
}
