//! Platform-level replication wiring: the replicated commit layer is a
//! pure overlay — installing it (and faulting it within the f = 1
//! tolerance) changes nothing about the chain, the audits, or the
//! platform's deterministic schedule, while every sealed block lands on
//! a quorum of validator logs.

use metaverse_core::platform::MetaversePlatform;
use metaverse_replication::ReplicationConfig;
use metaverse_resilience::{FaultKind, FaultPlan};

/// A small workload that seals blocks across several epochs, returning
/// the audit fingerprint the runs are compared by.
fn drive(platform: &mut MetaversePlatform) -> String {
    for u in 0..6 {
        platform.register_user(&format!("user-{u}")).unwrap();
    }
    let mut fingerprint = String::new();
    for epoch in 0..4 {
        let content = format!("px-{epoch}");
        let _ = platform
            .mint_asset("user-0", &format!("meta://epoch/{epoch}"), content.as_bytes(), 0.5)
            .unwrap();
        platform.advance_ticks(5);
        let sealed = platform.commit_epoch().unwrap();
        assert!(sealed > 0, "every epoch seals");
        let head = platform.chain().head().header.digest();
        fingerprint.push_str(&format!("{epoch}:{sealed}:{head:?}\n"));
    }
    platform.chain().verify_integrity().unwrap();
    fingerprint
}

fn faulted_plan() -> FaultPlan {
    // Crash the initial leader mid-run, partition a follower later:
    // never more than one node unreachable at once (f = 1 at N = 3).
    // Commits land at ticks 5/10/15/20: the crash window [6, 11) covers
    // the second commit, the partition window [14, 18) the third.
    FaultPlan::new()
        .schedule(6, 5, FaultKind::ValidatorCrash { validator: "s0-v0".into() })
        .schedule(14, 4, FaultKind::ValidatorPartition { validator: "s0-v1".into() })
}

#[test]
fn replication_on_or_faulted_audits_byte_identically_to_off() {
    let mut plain = MetaversePlatform::builder().build();
    let baseline = drive(&mut plain);

    let mut replicated = MetaversePlatform::builder()
        .replication(ReplicationConfig::default())
        .build();
    assert_eq!(drive(&mut replicated), baseline, "replication perturbed the chain");

    let mut faulted = MetaversePlatform::builder()
        .replication(ReplicationConfig::default())
        .build();
    faulted.install_validator_fault_plan(faulted_plan());
    assert_eq!(drive(&mut faulted), baseline, "validator faults perturbed the chain");

    // The faulted run did real replication work: commits survived a
    // leader failover, and the fault windows cost acks.
    let stats = faulted.replication_stats().unwrap();
    assert_eq!(stats.blocks_proposed, stats.blocks_committed, "every block reached quorum");
    assert!(stats.blocks_committed >= 4);
    assert!(stats.leader_elections >= 1, "the leader crash forced an election");
    assert!(stats.acks_lost >= 1);
    assert!(stats.catch_ups >= 1, "recovered validators caught up");

    // Every replicated log is consistent with the cluster leader's.
    let cluster = faulted.replication().unwrap();
    assert!(cluster.reachable_logs_consistent(u64::MAX - 1));
    // And the replication counters are on the platform's own hub.
    let snapshot = faulted.telemetry_snapshot();
    assert_eq!(snapshot.counters["replication.blocks.committed"], stats.blocks_committed);
    assert_eq!(snapshot.counters["replication.leader.elections"], stats.leader_elections);
    // The replication-off platform exposes no replication instruments.
    assert!(!plain.telemetry_snapshot().counters.contains_key("replication.blocks.committed"));
}

#[test]
fn replication_trace_stream_drains_from_the_platform() {
    let mut platform = MetaversePlatform::builder()
        .replication(ReplicationConfig::default())
        .build();
    assert!(platform.drain_replication_events().is_empty(), "tracing off by default");
    let mut cluster =
        metaverse_replication::ReplicationCluster::new(0, ReplicationConfig::default());
    cluster.enable_tracing(1 << 10);
    platform.install_replication(cluster);
    drive(&mut platform);
    let events = platform.drain_replication_events();
    assert!(!events.is_empty());
    assert!(events.iter().any(|e| e.stage.label() == "quorum_committed"));
    assert!(events.iter().all(|e| e.epoch == 0), "epoch stamping is the gateway's job");
    assert!(platform.drain_replication_events().is_empty(), "drain empties the ring");
}
