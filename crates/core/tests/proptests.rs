//! Property-based tests for policy, ethics, and resilience invariants.

use metaverse_core::ethics::{EthicsAuditor, EthicsLayer, EthicsSnapshot};
use metaverse_core::module::{ModuleDescriptor, ModuleKind, ModuleRegistry};
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::policy::{ComplianceReport, Jurisdiction, PolicyEngine, PolicyRequirements};
use metaverse_ledger::audit::{AuditRegistry, DataCollectionEvent, LawfulBasis, SensorClass};
use metaverse_ledger::chain::ChainConfig;
use metaverse_ledger::tx::TxPayload;
use metaverse_resilience::FaultPlan;
use proptest::prelude::*;

fn arb_basis() -> impl Strategy<Value = LawfulBasis> {
    prop_oneof![
        Just(LawfulBasis::Consent),
        Just(LawfulBasis::Contract),
        Just(LawfulBasis::LegitimateInterest),
        Just(LawfulBasis::VitalInterest),
        Just(LawfulBasis::None),
    ]
}

fn arb_sensor() -> impl Strategy<Value = SensorClass> {
    (0usize..SensorClass::ALL.len()).prop_map(|i| SensorClass::ALL[i])
}

fn registry_from(events: Vec<(u8, SensorClass, LawfulBasis, u64)>) -> AuditRegistry {
    let mut reg = AuditRegistry::new();
    for (collector, sensor, basis, bytes) in events {
        reg.record(DataCollectionEvent {
            collector: format!("c{}", collector % 5),
            subject: "subject".into(),
            sensor,
            purpose: "p".into(),
            basis,
            tick: 0,
            bytes: bytes % 10_000 + 1,
        });
    }
    reg
}

proptest! {
    /// Monotonicity of regulation strictness: for any workload, GDPR
    /// produces at least as many findings as CCPA, and CCPA at least as
    /// many as permissive (their rule sets are supersets).
    #[test]
    fn stricter_jurisdictions_find_no_less(
        events in proptest::collection::vec(
            (any::<u8>(), arb_sensor(), arb_basis(), any::<u64>()),
            0..60,
        ),
    ) {
        let audit = registry_from(events);
        let count = |j: Jurisdiction| PolicyEngine::new(j).evaluate(&audit, &[]).findings.len();
        let gdpr = count(Jurisdiction::gdpr());
        let ccpa = count(Jurisdiction::ccpa());
        let permissive = count(Jurisdiction::permissive());
        prop_assert!(gdpr >= ccpa, "gdpr {gdpr} >= ccpa {ccpa}");
        prop_assert!(ccpa >= permissive);
        prop_assert_eq!(permissive, 0);
    }

    /// Compliance is exactly "no findings", and the report always
    /// examines every event.
    #[test]
    fn compliance_iff_no_findings(
        events in proptest::collection::vec(
            (any::<u8>(), arb_sensor(), arb_basis(), any::<u64>()),
            0..40,
        ),
    ) {
        let n = events.len();
        let audit = registry_from(events);
        let report: ComplianceReport =
            PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&audit, &[]);
        prop_assert_eq!(report.compliant, report.findings.is_empty());
        prop_assert_eq!(report.events_examined, n);
    }

    /// The ethics hierarchy is strictly layered: whatever the snapshot,
    /// `satisfied_up_to` is consistent with the per-layer scores.
    #[test]
    fn ethics_hierarchy_layering(
        privacy_on in any::<bool>(),
        pets in any::<bool>(),
        reputation in any::<bool>(),
        avatars in any::<bool>(),
        accessibility in any::<bool>(),
        communities in 0usize..5,
    ) {
        let mut modules = ModuleRegistry::new();
        for kind in ModuleKind::ALL {
            modules.install(ModuleDescriptor::open(kind, "impl"));
        }
        let compliance =
            PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&AuditRegistry::new(), &[]);
        let snapshot = EthicsSnapshot {
            modules: &modules,
            compliance: &compliance,
            privacy_defaults_on: privacy_on,
            pets_available: pets,
            reputation_live: reputation,
            avatar_freedom: avatars,
            accessibility_features: accessibility,
            community_count: communities,
        };
        let audit = EthicsAuditor::new().audit(&snapshot);
        let full = |layer: usize| audit.scores[layer].1 == audit.scores[layer].2;
        let expected = if !full(0) {
            None
        } else if !full(1) {
            Some(EthicsLayer::HumanRights)
        } else if !full(2) {
            Some(EthicsLayer::HumanEffort)
        } else {
            Some(EthicsLayer::HumanExperience)
        };
        prop_assert_eq!(audit.satisfied_up_to, expected);
        // Findings count equals failed checks.
        let failed: usize =
            audit.scores.iter().map(|(_, p, t)| t - p).sum();
        prop_assert_eq!(audit.findings.len(), failed);
    }

    /// A jurisdiction with all checks disabled never finds anything,
    /// whatever the workload or DP spend.
    #[test]
    fn disabled_requirements_find_nothing(
        events in proptest::collection::vec(
            (any::<u8>(), arb_sensor(), arb_basis(), any::<u64>()),
            0..40,
        ),
        spend in proptest::collection::vec((any::<u8>(), 0.0f64..100.0), 0..5),
    ) {
        let audit = registry_from(events);
        let lax = Jurisdiction {
            name: "lax".into(),
            requirements: PolicyRequirements {
                biometric_requires_consent: false,
                lawful_basis_required: false,
                max_collection_hhi: 1.0,
                right_of_access: false,
                visual_cues_required: false,
                max_dp_epsilon: f64::INFINITY,
                monopoly_min_events: usize::MAX,
            },
        };
        let spend: Vec<(String, f64)> =
            spend.into_iter().map(|(u, e)| (format!("u{u}"), e)).collect();
        let report = PolicyEngine::new(lax).evaluate(&audit, &spend);
        prop_assert!(report.compliant);
    }

    /// Transparency of degradation: the circuit breaker never opens
    /// without a matching health-transition record reaching the ledger.
    /// For any fault plan and any operation schedule, after the final
    /// commit the number of on-chain `HealthTransition`-to-failed
    /// records over module slots equals the number of breaker opens.
    #[test]
    fn breaker_never_opens_without_ledger_record(
        seed in any::<u64>(),
        fault_count in 0usize..6,
        ops in proptest::collection::vec((any::<u8>(), 1u64..15), 0..40),
    ) {
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .build();
        for u in ["alice", "bob", "carol", "mallory"] {
            p.register_user(u).unwrap();
        }
        p.install_fault_plan(FaultPlan::random(
            seed,
            500,
            fault_count,
            &["moderation", "privacy", "reputation", "decision-making", "assets"],
            &[], // no rogue validators: commits must always land
        ));
        for (i, (op, advance)) in ops.iter().enumerate() {
            let raters = ["alice", "bob", "carol"];
            let rater = raters[i % raters.len()];
            match op % 4 {
                0 => { let _ = p.report(rater, "mallory"); }
                1 => { let _ = p.endorse(rater, raters[(i + 1) % raters.len()]); }
                2 => { let _ = p.configure_flow(
                    rater, SensorClass::Gaze, "render-svc", "unreviewed"); }
                _ => { let _ = p.propose("root", rater, "p"); }
            }
            p.advance_ticks(*advance);
        }
        p.commit_epoch().unwrap();
        p.verify_ledger().unwrap();

        let failed_records = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(
                &t.payload,
                TxPayload::HealthTransition { module, to, .. }
                    if to == "failed" && module != "ledger"
            ))
            .count() as u64;
        prop_assert_eq!(
            p.resilience_stats().breaker_opens,
            failed_records,
            "every breaker open must be auditable on-chain"
        );
    }
}
