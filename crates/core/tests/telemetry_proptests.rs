//! Property-based tests for the platform's telemetry contract.
//!
//! Two invariants, both checked under injected faults, since the fault
//! fabric exercises every guard branch (refused, zombie, replay):
//!
//! * **snapshot monotonicity** — counters and histogram totals never
//!   decrease between any two snapshots taken in order, no matter what
//!   the platform was doing in between;
//! * **span nesting** — wall-clock spans opened around and inside
//!   platform operations can close in any order without panicking, and
//!   every opened span records exactly one observation.

use metaverse_core::platform::MetaversePlatform;
use metaverse_ledger::chain::ChainConfig;
use metaverse_resilience::FaultPlan;
use proptest::prelude::*;

const CITIZENS: [&str; 4] = ["alice", "bob", "carol", "mallory"];
const FAULT_MODULES: [&str; 4] = ["moderation", "privacy", "decision-making", "assets"];

fn build(seed: u64, faults: usize) -> MetaversePlatform {
    let mut p = MetaversePlatform::builder()
        .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
        .validators(["validator-0"])
        .fault_plan(FaultPlan::random(seed, 500, faults, &FAULT_MODULES, &[]))
        .build();
    for u in CITIZENS {
        p.register_user(u).expect("fresh platform accepts every user");
    }
    p
}

/// Applies one scripted operation; outcomes are irrelevant to the
/// telemetry contract, so errors are deliberately discarded.
fn apply(p: &mut MetaversePlatform, op: u8, a: u8, b: u8) {
    let rater = CITIZENS[a as usize % CITIZENS.len()];
    let subject = CITIZENS[b as usize % CITIZENS.len()];
    match op % 7 {
        0 => {
            let _ = p.report(rater, subject);
        }
        1 => {
            let _ = p.endorse(rater, subject);
        }
        2 => {
            if let Ok(id) = p.propose("root", rater, "prop") {
                let _ = p.vote("root", subject, id, b.is_multiple_of(2));
            }
        }
        3 => {
            let _ = p.configure_flow(
                rater,
                metaverse_ledger::audit::SensorClass::Gaze,
                "render-svc",
                "foveation",
            );
        }
        4 => {
            if let Ok(id) = p.mint_asset(rater, &format!("meta://{a}/{b}"), b"px", 0.8) {
                let _ = p.list_asset(rater, id, 50);
            }
        }
        5 => p.advance_ticks(u64::from(b % 7) + 1),
        _ => {
            let _ = p.commit_epoch();
        }
    }
}

proptest! {
    /// Every snapshot dominates every earlier one, under any op
    /// sequence and any fault plan.
    #[test]
    fn snapshots_are_monotone_under_faults(
        seed in any::<u64>(),
        faults in 0usize..8,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..60),
    ) {
        let mut p = build(seed, faults);
        let first = p.telemetry_snapshot();
        let mut prev = first.clone();
        for (op, a, b) in ops {
            apply(&mut p, op, a, b);
            let snap = p.telemetry_snapshot();
            prop_assert!(snap.dominates(&prev), "snapshot regressed after op {op}");
            prev = snap;
        }
        prop_assert!(prev.dominates(&first));
        // The moderation ledgers always balance: every deferred report
        // is either replayed already or still queued.
        let stats = p.resilience_stats();
        prop_assert_eq!(
            stats.deferred_reports,
            stats.replayed_reports + p.held_report_count() as u64,
        );
        // And after a final commit with a healthy module set, nothing
        // stays queued forever (the E2 bugfix: the epoch boundary
        // drains backlogs stranded by a reopened breaker).
        p.advance_ticks(600); // past the 500-tick fault horizon + cooldown
        let _ = p.commit_epoch();
        prop_assert_eq!(p.held_report_count(), 0);
        let stats = p.resilience_stats();
        prop_assert_eq!(stats.deferred_reports, stats.replayed_reports);
    }

    /// Spans nest and close in arbitrary order without panicking, and
    /// each records exactly one observation.
    #[test]
    fn spans_nest_under_faults(
        seed in any::<u64>(),
        faults in 0usize..8,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let mut p = build(seed, faults);
        let outer_hist = p.telemetry().histogram("prop.outer");
        let inner_hist = p.telemetry().histogram("prop.inner");
        let mut opened = 0u64;
        for (op, a, b) in ops {
            let outer = outer_hist.start_span();
            let inner = inner_hist.start_span();
            opened += 1;
            // The platform op runs inside both spans and opens its own
            // per-module latency spans underneath.
            apply(&mut p, op, a, b);
            if a.is_multiple_of(2) {
                // Well-nested close: inner first.
                prop_assert!(inner.finish().is_some());
                prop_assert!(outer.finish().is_some());
            } else {
                // Inverted close order: outer first, inner by drop.
                prop_assert!(outer.finish().is_some());
                drop(inner);
            }
        }
        let snap = p.telemetry_snapshot();
        prop_assert_eq!(snap.histograms["prop.outer"].count, opened);
        prop_assert_eq!(snap.histograms["prop.inner"].count, opened);
    }
}
