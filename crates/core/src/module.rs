//! Interchangeable platform modules and their registry.
//!
//! Figure 3 of the paper draws the metaverse as a set of modules —
//! decision-making, reputation, privacy, moderation — "where each module
//! is interchangeable", each involving a set of stakeholders, and all of
//! them transparent to platform members. [`ModuleRegistry`] is that
//! picture as a data structure: it tracks which concrete module fills
//! each slot, who is involved in it, and records every swap for the
//! ledger.

use metaverse_ledger::tx::TxPayload;
use metaverse_ledger::Tick;
use metaverse_resilience::HealthState;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The module slots of the Figure-3 architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModuleKind {
    /// DAO-based decision making.
    DecisionMaking,
    /// Sensory/behavioural privacy protection.
    Privacy,
    /// The reputation system.
    Reputation,
    /// Content and behaviour moderation.
    Moderation,
    /// Asset creation and trading.
    Assets,
    /// Physical safety mitigations.
    Safety,
    /// Trust / misinformation control.
    Trust,
    /// Local-regulation adaptation.
    Policy,
}

impl ModuleKind {
    /// All slots, in canonical order.
    pub const ALL: [ModuleKind; 8] = [
        ModuleKind::DecisionMaking,
        ModuleKind::Privacy,
        ModuleKind::Reputation,
        ModuleKind::Moderation,
        ModuleKind::Assets,
        ModuleKind::Safety,
        ModuleKind::Trust,
        ModuleKind::Policy,
    ];

    /// Stable slot label, used by fault plans and ledger health records.
    pub fn label(&self) -> &'static str {
        match self {
            ModuleKind::DecisionMaking => "decision-making",
            ModuleKind::Privacy => "privacy",
            ModuleKind::Reputation => "reputation",
            ModuleKind::Moderation => "moderation",
            ModuleKind::Assets => "assets",
            ModuleKind::Safety => "safety",
            ModuleKind::Trust => "trust",
            ModuleKind::Policy => "policy",
        }
    }

    /// Inverse of [`ModuleKind::label`].
    pub fn from_label(label: &str) -> Option<ModuleKind> {
        ModuleKind::ALL.iter().copied().find(|k| k.label() == label)
    }
}

/// Stakeholder groups the paper requires in the design process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stakeholder {
    /// Platform developers.
    Developers,
    /// External regulators.
    Regulators,
    /// Platform members.
    Users,
    /// Content creators.
    ContentCreators,
}

/// Description of a concrete module filling a slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleDescriptor {
    /// The slot this module fills.
    pub kind: ModuleKind,
    /// Implementation name ("dao:quadratic", "pets:dp-pipeline", …).
    pub name: String,
    /// Version string.
    pub version: String,
    /// Stakeholders involved in this module's decisions.
    pub stakeholders: Vec<Stakeholder>,
    /// Whether the module's algorithm is published and explained
    /// ("transparent and understandable to any platform member").
    pub transparent: bool,
    /// Whether an auditing system can inspect the module's decisions.
    pub auditable: bool,
}

impl ModuleDescriptor {
    /// Convenience constructor with all stakeholders, transparent and
    /// auditable — the paper's recommended default.
    pub fn open(kind: ModuleKind, name: impl Into<String>) -> Self {
        ModuleDescriptor {
            kind,
            name: name.into(),
            version: "1".into(),
            stakeholders: vec![
                Stakeholder::Developers,
                Stakeholder::Regulators,
                Stakeholder::Users,
                Stakeholder::ContentCreators,
            ],
            transparent: true,
            auditable: true,
        }
    }

    /// Whether a stakeholder group participates in this module.
    pub fn involves(&self, s: Stakeholder) -> bool {
        self.stakeholders.contains(&s)
    }
}

/// The registry of installed modules, one per slot.
#[derive(Debug, Default)]
pub struct ModuleRegistry {
    slots: BTreeMap<ModuleKind, ModuleDescriptor>,
    health: BTreeMap<ModuleKind, HealthState>,
    pending_records: Vec<TxPayload>,
}

impl ModuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or swaps) a module, recording the change.
    pub fn install(&mut self, descriptor: ModuleDescriptor) -> Option<ModuleDescriptor> {
        self.pending_records.push(TxPayload::Note {
            text: format!(
                "module-swap:{:?}:{}@{}",
                descriptor.kind, descriptor.name, descriptor.version
            ),
        });
        self.slots.insert(descriptor.kind, descriptor)
    }

    /// The module currently filling a slot.
    pub fn installed(&self, kind: ModuleKind) -> Option<&ModuleDescriptor> {
        self.slots.get(&kind)
    }

    /// Slots that have no module installed.
    pub fn vacant_slots(&self) -> Vec<ModuleKind> {
        ModuleKind::ALL
            .iter()
            .copied()
            .filter(|k| !self.slots.contains_key(k))
            .collect()
    }

    /// Number of installed modules.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over installed modules in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &ModuleDescriptor> {
        self.slots.values()
    }

    /// Modules that are *not* transparent — audit findings.
    pub fn opaque_modules(&self) -> Vec<&ModuleDescriptor> {
        self.slots.values().filter(|m| !m.transparent).collect()
    }

    /// Whether every installed module involves the given stakeholder.
    pub fn all_involve(&self, s: Stakeholder) -> bool {
        !self.slots.is_empty() && self.slots.values().all(|m| m.involves(s))
    }

    /// Current health of a slot (slots start healthy).
    pub fn health(&self, kind: ModuleKind) -> HealthState {
        self.health.get(&kind).copied().unwrap_or_default()
    }

    /// Moves a slot to a new health state, recording the transition for
    /// the ledger. Returns `false` (and records nothing) when the slot
    /// is already in that state — every on-chain record is a real
    /// transition.
    pub fn set_health(
        &mut self,
        kind: ModuleKind,
        to: HealthState,
        reason: &str,
        tick: Tick,
    ) -> bool {
        let from = self.health(kind);
        if from == to {
            return false;
        }
        self.health.insert(kind, to);
        self.pending_records.push(TxPayload::HealthTransition {
            module: kind.label().to_string(),
            from: from.label().to_string(),
            to: to.label().to_string(),
            reason: reason.to_string(),
            tick,
        });
        true
    }

    /// Records a health transition for a platform component outside the
    /// eight Figure-3 slots (e.g. the ledger's validator set). Always
    /// records; the caller owns the component's state.
    pub fn record_component_health(
        &mut self,
        component: &str,
        from: HealthState,
        to: HealthState,
        reason: &str,
        tick: Tick,
    ) {
        self.pending_records.push(TxPayload::HealthTransition {
            module: component.to_string(),
            from: from.label().to_string(),
            to: to.label().to_string(),
            reason: reason.to_string(),
            tick,
        });
    }

    /// Slots currently not healthy, with their states.
    pub fn unhealthy_slots(&self) -> Vec<(ModuleKind, HealthState)> {
        self.health
            .iter()
            .filter(|(_, h)| **h != HealthState::Healthy)
            .map(|(k, h)| (*k, *h))
            .collect()
    }

    /// Takes the swap records accumulated since the last drain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_swap() {
        let mut reg = ModuleRegistry::new();
        assert!(reg.install(ModuleDescriptor::open(ModuleKind::Privacy, "pets:v1")).is_none());
        let old = reg
            .install(ModuleDescriptor::open(ModuleKind::Privacy, "pets:v2"))
            .expect("swap returns the old module");
        assert_eq!(old.name, "pets:v1");
        assert_eq!(reg.installed(ModuleKind::Privacy).unwrap().name, "pets:v2");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn vacancy_tracking() {
        let mut reg = ModuleRegistry::new();
        assert_eq!(reg.vacant_slots().len(), 8);
        reg.install(ModuleDescriptor::open(ModuleKind::Reputation, "rep"));
        assert_eq!(reg.vacant_slots().len(), 7);
        assert!(!reg.vacant_slots().contains(&ModuleKind::Reputation));
    }

    #[test]
    fn transparency_findings() {
        let mut reg = ModuleRegistry::new();
        let mut opaque = ModuleDescriptor::open(ModuleKind::Moderation, "blackbox-ai");
        opaque.transparent = false;
        reg.install(opaque);
        reg.install(ModuleDescriptor::open(ModuleKind::Privacy, "pets"));
        assert_eq!(reg.opaque_modules().len(), 1);
        assert_eq!(reg.opaque_modules()[0].name, "blackbox-ai");
    }

    #[test]
    fn stakeholder_involvement() {
        let mut reg = ModuleRegistry::new();
        reg.install(ModuleDescriptor::open(ModuleKind::Privacy, "pets"));
        assert!(reg.all_involve(Stakeholder::Users));
        let mut devs_only = ModuleDescriptor::open(ModuleKind::Assets, "market");
        devs_only.stakeholders = vec![Stakeholder::Developers];
        reg.install(devs_only);
        assert!(!reg.all_involve(Stakeholder::Users));
        assert!(reg.all_involve(Stakeholder::Developers));
    }

    #[test]
    fn empty_registry_involves_nobody() {
        let reg = ModuleRegistry::new();
        assert!(!reg.all_involve(Stakeholder::Users));
    }

    #[test]
    fn labels_round_trip() {
        for kind in ModuleKind::ALL {
            assert_eq!(ModuleKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ModuleKind::from_label("ledger"), None);
    }

    #[test]
    fn health_transitions_recorded_and_deduped() {
        let mut reg = ModuleRegistry::new();
        assert_eq!(reg.health(ModuleKind::Moderation), HealthState::Healthy);
        assert!(reg.set_health(ModuleKind::Moderation, HealthState::Failed, "breaker-open", 10));
        assert!(!reg.set_health(ModuleKind::Moderation, HealthState::Failed, "again", 11));
        assert!(reg.set_health(ModuleKind::Moderation, HealthState::Degraded, "half-open", 40));
        assert_eq!(reg.unhealthy_slots(), vec![(ModuleKind::Moderation, HealthState::Degraded)]);
        let records = reg.drain_ledger_records();
        assert_eq!(records.len(), 2, "no record for the no-op transition");
        assert!(matches!(
            &records[0],
            TxPayload::HealthTransition { module, from, to, tick, .. }
                if module == "moderation" && from == "healthy" && to == "failed" && *tick == 10
        ));
    }

    #[test]
    fn component_health_bypasses_slot_state() {
        let mut reg = ModuleRegistry::new();
        reg.record_component_health(
            "ledger",
            HealthState::Healthy,
            HealthState::Degraded,
            "rogue-validator",
            5,
        );
        let records = reg.drain_ledger_records();
        assert!(matches!(
            &records[0],
            TxPayload::HealthTransition { module, .. } if module == "ledger"
        ));
    }

    #[test]
    fn swap_records_exported() {
        let mut reg = ModuleRegistry::new();
        reg.install(ModuleDescriptor::open(ModuleKind::Privacy, "a"));
        reg.install(ModuleDescriptor::open(ModuleKind::Privacy, "b"));
        assert_eq!(reg.drain_ledger_records().len(), 2);
        assert!(reg.drain_ledger_records().is_empty());
    }
}
