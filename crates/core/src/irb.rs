//! The institutional-review-board (IRB) process for data collection.
//!
//! §II-D: "all the players involved in creating and managing the
//! metaverse should adopt some form of institutional review board (IRB)
//! model in their organisms." Here that becomes a concrete gate: before
//! a collector may request a (sensor, purpose) data flow, the purpose
//! must pass review — either by the board directly or by a governance
//! vote the board convenes. Unreviewed purposes are rejected at the
//! firewall-policy level, and every decision is exported to the ledger.

use metaverse_ledger::audit::SensorClass;
use metaverse_ledger::tx::TxPayload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A review request for a new collection purpose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewRequest {
    /// Who wants to collect.
    pub collector: String,
    /// Sensor class involved.
    pub sensor: SensorClass,
    /// Declared purpose.
    pub purpose: String,
    /// Scientific / product justification presented to the board.
    pub justification: String,
}

/// Board decision on a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReviewDecision {
    /// Approved as requested.
    Approved,
    /// Approved only with mandatory obfuscation (PET pipeline).
    ApprovedWithObfuscation,
    /// Rejected.
    Rejected,
}

/// The review board: approved purposes registry plus decision rules.
///
/// The default rule set encodes the Future-of-Privacy-Forum guidance the
/// paper cites: biometric collection is never approved without
/// obfuscation unless it is safety-critical.
#[derive(Debug, Default)]
pub struct ReviewBoard {
    decisions: HashMap<(String, String), ReviewDecision>,
    pending_records: Vec<TxPayload>,
}

impl ReviewBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(collector: &str, purpose: &str) -> (String, String) {
        (collector.to_string(), purpose.to_string())
    }

    /// Applies the board's default rule set to a request and records the
    /// decision. A platform can instead route the request to a DAO vote
    /// and call [`ReviewBoard::record_decision`] with the outcome.
    pub fn review(&mut self, request: &ReviewRequest) -> ReviewDecision {
        let safety_critical = request.purpose.contains("safety")
            || request.purpose.contains("collision");
        let decision = if request.sensor.is_biometric() && !safety_critical {
            // Biometric data for convenience/analytics: only through
            // PETs.
            if request.purpose.contains("ads") || request.purpose.contains("profiling") {
                ReviewDecision::Rejected
            } else {
                ReviewDecision::ApprovedWithObfuscation
            }
        } else {
            ReviewDecision::Approved
        };
        self.record_decision(request, decision);
        decision
    }

    /// Records an externally decided outcome (e.g. from a DAO vote).
    pub fn record_decision(&mut self, request: &ReviewRequest, decision: ReviewDecision) {
        self.decisions
            .insert(Self::key(&request.collector, &request.purpose), decision);
        self.pending_records.push(TxPayload::Note {
            text: format!(
                "irb:{:?}:{}:{}:{:?}",
                request.sensor, request.collector, request.purpose, decision
            ),
        });
    }

    /// The standing decision for a (collector, purpose), if reviewed.
    pub fn standing(&self, collector: &str, purpose: &str) -> Option<ReviewDecision> {
        self.decisions.get(&Self::key(collector, purpose)).copied()
    }

    /// Whether a flow under this (collector, purpose) may be configured
    /// at all.
    pub fn permits(&self, collector: &str, purpose: &str) -> bool {
        matches!(
            self.standing(collector, purpose),
            Some(ReviewDecision::Approved) | Some(ReviewDecision::ApprovedWithObfuscation)
        )
    }

    /// Number of reviewed purposes.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when nothing has been reviewed.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Takes the ledger records accumulated since the last drain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(sensor: SensorClass, purpose: &str) -> ReviewRequest {
        ReviewRequest {
            collector: "app".into(),
            sensor,
            purpose: purpose.into(),
            justification: "test".into(),
        }
    }

    #[test]
    fn non_biometric_approved() {
        let mut board = ReviewBoard::new();
        let d = board.review(&request(SensorClass::Audio, "voice-chat"));
        assert_eq!(d, ReviewDecision::Approved);
        assert!(board.permits("app", "voice-chat"));
    }

    #[test]
    fn biometric_needs_obfuscation() {
        let mut board = ReviewBoard::new();
        let d = board.review(&request(SensorClass::Gaze, "foveated-rendering"));
        assert_eq!(d, ReviewDecision::ApprovedWithObfuscation);
        assert!(board.permits("app", "foveated-rendering"));
    }

    #[test]
    fn biometric_ads_rejected() {
        let mut board = ReviewBoard::new();
        let d = board.review(&request(SensorClass::Gaze, "ads-profiling"));
        assert_eq!(d, ReviewDecision::Rejected);
        assert!(!board.permits("app", "ads-profiling"));
    }

    #[test]
    fn safety_critical_biometric_approved() {
        let mut board = ReviewBoard::new();
        let d = board.review(&request(SensorClass::Gait, "collision-safety"));
        assert_eq!(d, ReviewDecision::Approved);
    }

    #[test]
    fn unreviewed_purpose_not_permitted() {
        let board = ReviewBoard::new();
        assert!(!board.permits("app", "anything"));
        assert!(board.standing("app", "anything").is_none());
        assert!(board.is_empty());
    }

    #[test]
    fn external_decision_recorded_and_exported() {
        let mut board = ReviewBoard::new();
        let req = request(SensorClass::HeartRate, "wellness-research");
        board.record_decision(&req, ReviewDecision::Approved);
        assert!(board.permits("app", "wellness-research"));
        let records = board.drain_ledger_records();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            &records[0],
            TxPayload::Note { text } if text.contains("wellness-research")
        ));
        assert!(board.drain_ledger_records().is_empty());
    }

    #[test]
    fn re_review_overrides() {
        let mut board = ReviewBoard::new();
        let req = request(SensorClass::Audio, "voice-chat");
        board.review(&req);
        board.record_decision(&req, ReviewDecision::Rejected); // DAO overruled
        assert!(!board.permits("app", "voice-chat"));
        assert_eq!(board.len(), 1, "same key, overridden");
    }
}
