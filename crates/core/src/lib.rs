//! # metaverse-core
//!
//! The paper's primary contribution: a **modular-based framework for an
//! ethical design of the metaverse** (Figure 3, §IV-C).
//!
//! > "A modular-based metaverse architecture will allow adapting to the
//! > specifications and requirements of such a worldwide platform.
//! > Therefore, our preliminary approach aims to involve every necessary
//! > member (developers, regulators, users, content creators) in the
//! > design and implementation of the metaverse. […] We can see these
//! > modules as a federated approach. These modules can take independent
//! > decisions such as the reaction to misbehaviour, but are still
//! > connected to other decision modules, resources, and policies."
//!
//! This crate composes every substrate in the workspace behind one
//! façade and adds the three genuinely novel pieces of the paper:
//!
//! * [`module`] — interchangeable, stakeholder-annotated platform
//!   modules and their registry.
//! * [`policy`] — jurisdiction profiles (GDPR, CCPA, permissive) and a
//!   compliance engine over the ledger's audit registry, enabling the
//!   "modules will swap accordingly" adaptation of §III-E (E12).
//! * [`ethics`] — the 'Ethical Hierarchy of Needs' auditor: human
//!   rights → human effort → human experience, scored over a platform
//!   configuration (E14).
//! * [`resilience`] — graceful degradation: per-slot circuit breakers,
//!   fail-closed fallbacks (deny-by-default privacy, queue-and-hold
//!   moderation) and ledger-recorded module health (E19).
//! * [`platform`] — [`platform::MetaversePlatform`]: chain, governance,
//!   reputation, assets, moderation, and audit wired together, with
//!   every subsystem's actions recorded on the ledger for transparency.
//!
//! ## Quickstart
//!
//! ```
//! use metaverse_core::platform::MetaversePlatform;
//!
//! let mut platform = MetaversePlatform::builder().build();
//! platform.register_user("alice").unwrap();
//! platform.register_user("bob").unwrap();
//! let id = platform
//!     .propose("privacy", "alice", "Enable privacy bubbles by default")
//!     .unwrap();
//! platform.vote("privacy", "alice", id, true).unwrap();
//! platform.vote("privacy", "bob", id, true).unwrap();
//! platform.advance_ticks(200);
//! let (accepted, _tally) = platform.close_proposal("privacy", id).unwrap();
//! assert!(accepted);
//! platform.commit_epoch().unwrap(); // everything lands on the ledger
//! assert!(platform.chain().height() > 0);
//! // Every step above was also metered: per-module call counts and
//! // latencies, epoch phase timings, op counters.
//! let snapshot = platform.telemetry_snapshot();
//! assert_eq!(snapshot.counters["ops.vote"], 2);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod ethics;
pub mod irb;
pub mod module;
pub mod platform;
pub mod policy;
pub mod resilience;

pub use builder::PlatformBuilder;
pub use error::CoreError;
pub use ethics::{EthicsAudit, EthicsAuditor, EthicsLayer};
pub use irb::{ReviewBoard, ReviewDecision, ReviewRequest};
pub use module::{ModuleDescriptor, ModuleKind, ModuleRegistry, Stakeholder};
pub use platform::{MetaversePlatform, PlatformConfig};
pub use policy::{ComplianceReport, Jurisdiction, PolicyEngine, PolicyRequirements};
pub use resilience::{HeldReport, ResilienceConfig, ResilienceFabric, ResilienceStats};
