//! The platform façade: every subsystem wired together.
//!
//! [`MetaversePlatform`] owns one instance of each substrate — ledger,
//! modular governance, reputation, assets, audit, moderation, world —
//! and implements the paper's transparency requirement by draining every
//! subsystem's pending records onto the chain at each
//! [`MetaversePlatform::commit_epoch`]. Examples and integration tests
//! drive the whole system through this type.

use std::collections::BTreeMap;

use metaverse_assets::market::{AdmissionPolicy, Marketplace};
use metaverse_assets::nft::NftId;
use metaverse_assets::registry::NftRegistry;
use metaverse_dao::dao::DaoConfig;
use metaverse_dao::federation::ModularGovernance;
use metaverse_dao::proposal::{ProposalId, ProposalStatus};
use metaverse_dao::voting::{Choice, Tally};
use metaverse_ledger::audit::{AuditRegistry, DataCollectionEvent, LawfulBasis, SensorClass};
use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::crypto::sha256::Digest;
use metaverse_ledger::tx::{Transaction, TxPayload};
use metaverse_moderation::actions::{AppealVerdict, EscalationLadder, ModAction};
use metaverse_privacy::error::PrivacyError;
use metaverse_privacy::firewall::DataFlowFirewall;
use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use metaverse_replication::{ReplicationCluster, ReplicationStats};
use metaverse_resilience::breaker::BreakerTransition;
use metaverse_resilience::{FaultInjector, FaultPlan, HealthState, RetryOutcome};
use metaverse_telemetry::{
    names, Counter, Gauge, Histogram, TelemetryHub, TelemetrySnapshot, TraceEvent,
};
use metaverse_world::geometry::Vec2;
use metaverse_world::world::{World, WorldConfig};

use crate::error::CoreError;
use crate::ethics::{EthicsAudit, EthicsAuditor, EthicsSnapshot};
use crate::irb::{ReviewBoard, ReviewDecision, ReviewRequest};
use crate::module::{ModuleDescriptor, ModuleKind, ModuleRegistry};
use crate::policy::{ComplianceReport, Jurisdiction, PolicyEngine};
use crate::resilience::{
    health_for, Availability, HeldReport, ResilienceConfig, ResilienceFabric, ResilienceStats,
};

/// Platform construction parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Governance scopes installed at start.
    pub scopes: Vec<String>,
    /// DAO configuration for every scope.
    pub dao_config: DaoConfig,
    /// Chain validators.
    pub validators: Vec<String>,
    /// Ledger configuration.
    pub chain_config: ChainConfig,
    /// Active jurisdiction.
    pub jurisdiction: Jurisdiction,
    /// Whether new users get deny-by-default sensor firewalls.
    pub privacy_defaults_on: bool,
    /// Marketplace admission policy.
    pub market_policy: AdmissionPolicy,
    /// Reputation engine configuration.
    pub reputation_config: EngineConfig,
    /// Graceful-degradation tuning (see [`crate::resilience`]).
    pub resilience: ResilienceConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            scopes: vec![
                "privacy".into(),
                "moderation".into(),
                "assets".into(),
                "root".into(),
            ],
            dao_config: DaoConfig::default(),
            validators: vec!["validator-0".into(), "validator-1".into()],
            chain_config: ChainConfig { key_tree_depth: 8, ..ChainConfig::default() },
            jurisdiction: Jurisdiction::gdpr(),
            privacy_defaults_on: true,
            market_policy: AdmissionPolicy::ReputationGated { min_points: 35.0 },
            reputation_config: EngineConfig::default(),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Platform operations with a dedicated invocation counter
/// (`ops.<name>` in snapshots). Pre-registered so the hot path never
/// touches the hub's registry lock.
const OP_NAMES: [&str; 17] = [
    "register_user",
    "propose",
    "vote",
    "vote_quadratic",
    "delegate",
    "close_proposal",
    "endorse",
    "report",
    "appeal",
    "remote_rating",
    "mint_asset",
    "list_asset",
    "buy_asset",
    "withdraw",
    "configure_flow",
    "sensor_event",
    "commit_epoch",
];

/// Per-slot instruments: every [`MetaversePlatform::guard`] consult
/// counts a call, refusals and zombie passes are tallied separately,
/// and each guarded operation times itself into the latency histogram.
#[derive(Debug)]
struct SlotMetrics {
    calls: Counter,
    refused: Counter,
    zombie: Counter,
    latency: Histogram,
}

/// Every instrument the platform records into, registered once at
/// construction. With a disabled hub each handle is a no-op and the
/// whole struct costs nothing at runtime.
#[derive(Debug)]
struct PlatformMetrics {
    hub: TelemetryHub,
    slots: BTreeMap<ModuleKind, SlotMetrics>,
    ops: BTreeMap<&'static str, Counter>,
    epoch_collect: Histogram,
    epoch_merkle: Histogram,
    epoch_sign: Histogram,
    epoch_append: Histogram,
    commits: Counter,
    aborts: Counter,
    blocks_sealed: Counter,
    txs_submitted: Counter,
    chain_height: Gauge,
    reports_deferred: Counter,
    reports_replayed: Counter,
    reports_held: Gauge,
    escape_governance: Counter,
    escape_reputation: Counter,
    escape_irb: Counter,
    users: Gauge,
    tick: Gauge,
    /// Registered only when a replication cluster is installed, so
    /// replication-off platforms expose byte-identical snapshots to
    /// builds that predate replication.
    repl: Option<ReplicationMetrics>,
}

/// Replication-cluster instruments; see [`names::replication`].
#[derive(Debug)]
struct ReplicationMetrics {
    proposed: Counter,
    committed: Counter,
    acks_delivered: Counter,
    acks_lost: Counter,
    elections: Counter,
    catch_ups: Counter,
    commit_latency: Histogram,
    failover: Histogram,
}

impl ReplicationMetrics {
    fn new(hub: &TelemetryHub) -> Self {
        ReplicationMetrics {
            proposed: hub.counter(names::replication::BLOCKS_PROPOSED),
            committed: hub.counter(names::replication::BLOCKS_COMMITTED),
            acks_delivered: hub.counter(names::replication::ACKS_DELIVERED),
            acks_lost: hub.counter(names::replication::ACKS_LOST),
            elections: hub.counter(names::replication::LEADER_ELECTIONS),
            catch_ups: hub.counter(names::replication::CATCH_UPS),
            commit_latency: hub.histogram(names::replication::COMMIT_LATENCY_TICKS),
            failover: hub.histogram(names::replication::FAILOVER_TICKS),
        }
    }
}

impl PlatformMetrics {
    fn new(hub: TelemetryHub) -> Self {
        let mut slots = BTreeMap::new();
        for kind in ModuleKind::ALL {
            let label = kind.label();
            slots.insert(
                kind,
                SlotMetrics {
                    calls: hub.counter(&names::module_calls(label)),
                    refused: hub.counter(&names::module_refused(label)),
                    zombie: hub.counter(&names::module_zombie(label)),
                    latency: hub.histogram(&names::module_latency(label)),
                },
            );
        }
        let mut ops = BTreeMap::new();
        for name in OP_NAMES {
            ops.insert(name, hub.counter(&names::op(name)));
        }
        PlatformMetrics {
            slots,
            ops,
            epoch_collect: hub.histogram(names::EPOCH_COLLECT_NS),
            epoch_merkle: hub.histogram(names::EPOCH_MERKLE_NS),
            epoch_sign: hub.histogram(names::EPOCH_SIGN_NS),
            epoch_append: hub.histogram(names::EPOCH_APPEND_NS),
            commits: hub.counter(names::EPOCH_COMMITS),
            aborts: hub.counter(names::EPOCH_ABORTS),
            blocks_sealed: hub.counter(names::EPOCH_BLOCKS_SEALED),
            txs_submitted: hub.counter(names::EPOCH_TXS_SUBMITTED),
            chain_height: hub.gauge(names::EPOCH_CHAIN_HEIGHT),
            reports_deferred: hub.counter(names::MODERATION_REPORTS_DEFERRED),
            reports_replayed: hub.counter(names::MODERATION_REPORTS_REPLAYED),
            reports_held: hub.gauge(names::MODERATION_REPORTS_HELD),
            escape_governance: hub.counter(names::ESCAPE_GOVERNANCE),
            escape_reputation: hub.counter(names::ESCAPE_REPUTATION),
            escape_irb: hub.counter(names::ESCAPE_IRB),
            users: hub.gauge(names::PLATFORM_USERS),
            tick: hub.gauge(names::PLATFORM_TICK),
            repl: None,
            hub,
        }
    }

    fn slot(&self, kind: ModuleKind) -> &SlotMetrics {
        self.slots.get(&kind).expect("every slot pre-registered")
    }

    fn op(&self, name: &'static str) -> &Counter {
        self.ops.get(name).expect("every op pre-registered")
    }
}

/// The composed metaverse platform. See the crate-level example.
#[derive(Debug)]
pub struct MetaversePlatform {
    config: PlatformConfig,
    chain: Chain,
    governance: ModularGovernance,
    reputation: ReputationEngine,
    assets: NftRegistry,
    market: Marketplace,
    audit: AuditRegistry,
    policy: PolicyEngine,
    modules: ModuleRegistry,
    ladder: EscalationLadder,
    irb: ReviewBoard,
    world: World,
    firewalls: BTreeMap<String, DataFlowFirewall>,
    dp_spend: BTreeMap<String, f64>,
    resilience: ResilienceFabric,
    metrics: PlatformMetrics,
    /// Quorum-commit replication of sealed blocks across simulated
    /// validator nodes; `None` runs the chain as a single instance
    /// (the pre-replication behaviour, byte for byte).
    replication: Option<ReplicationCluster>,
    /// `(height, header digest)` of every block sealed by the most
    /// recent successful [`MetaversePlatform::commit_epoch`]; empty
    /// until the first sealing commit. Tracing layers read this to tie
    /// an epoch's ops to the chain state that covers them.
    last_sealed: Vec<(u64, Digest)>,
    /// Cached count of successful [`MetaversePlatform::register_user`]
    /// calls, so admission checks never scan user storage.
    user_count: usize,
    tick: u64,
}

// Compile-time contract for the gateway's parallel epoch phase: a whole
// platform shard moves onto a scoped worker thread each epoch, so every
// piece of interior state must stay `Send` (no `Rc`, no `RefCell`, no
// thread-local handles). If a future module breaks this, the build
// fails here instead of deep inside the gateway's thread spawn.
const _: () = {
    const fn require_send<T: Send>() {}
    require_send::<MetaversePlatform>();
};

impl MetaversePlatform {
    /// Entry point of the fluent construction surface — see
    /// [`PlatformBuilder`](crate::builder::PlatformBuilder).
    pub fn builder() -> crate::builder::PlatformBuilder {
        crate::builder::PlatformBuilder::new()
    }

    /// Builds a platform with the paper's recommended open modules
    /// installed in every slot and telemetry enabled.
    ///
    /// Deprecated: prefer [`MetaversePlatform::builder`], which names
    /// each knob and exposes the telemetry and fault-plan switches.
    /// This constructor remains as a thin shim over the same assembly
    /// path so existing callers keep compiling (with a warning).
    #[deprecated(note = "use MetaversePlatform::builder()")]
    pub fn new(config: PlatformConfig) -> Self {
        Self::assemble(config, TelemetryHub::new())
    }

    /// Shared assembly path behind both [`MetaversePlatform::new`] and
    /// the builder.
    pub(crate) fn assemble(config: PlatformConfig, hub: TelemetryHub) -> Self {
        let validator_refs: Vec<&str> =
            config.validators.iter().map(String::as_str).collect();
        let chain = Chain::poa(&validator_refs, config.chain_config.clone());

        let mut governance = ModularGovernance::new();
        for scope in &config.scopes {
            governance.register_module(scope, config.dao_config.clone());
        }

        let mut modules = ModuleRegistry::new();
        for kind in ModuleKind::ALL {
            modules.install(ModuleDescriptor::open(kind, default_module_name(kind)));
        }

        MetaversePlatform {
            policy: PolicyEngine::new(config.jurisdiction.clone()),
            market: Marketplace::new(config.market_policy.clone()),
            reputation: ReputationEngine::new(config.reputation_config.clone()),
            chain,
            governance,
            assets: NftRegistry::new(),
            audit: AuditRegistry::new(),
            modules,
            ladder: EscalationLadder::new(),
            irb: ReviewBoard::new(),
            world: World::new(WorldConfig::default()),
            firewalls: BTreeMap::new(),
            dp_spend: BTreeMap::new(),
            resilience: ResilienceFabric::new(config.resilience.clone()),
            metrics: PlatformMetrics::new(hub),
            replication: None,
            last_sealed: Vec::new(),
            user_count: 0,
            tick: 0,
            config,
        }
    }

    // ---- telemetry --------------------------------------------------------

    /// The platform's telemetry hub. Handles are cheap to clone, so
    /// other subsystems (e.g. a twins
    /// [`SyncChannel`](metaverse_twins::sync::SyncChannel)) can attach
    /// their own instruments to the same hub and show up in the same
    /// snapshot.
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.metrics.hub
    }

    /// A point-in-time, serialisable snapshot of every platform metric.
    /// Snapshots are diffable ([`TelemetrySnapshot::delta`]) and
    /// monotone ([`TelemetrySnapshot::dominates`] holds between any two
    /// snapshots taken in order).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.metrics.hub.snapshot()
    }

    // ---- users ------------------------------------------------------------

    /// Registers a user: reputation account, governance membership in
    /// every scope, and a sensor firewall with the configured default
    /// stance.
    pub fn register_user(&mut self, name: &str) -> Result<(), CoreError> {
        self.metrics.op("register_user").incr();
        self.reputation.register(name, self.tick)?;
        self.user_count += 1;
        self.metrics.users.set(self.user_count as i64);
        self.governance.join_all(name)?;
        let firewall = if self.config.privacy_defaults_on {
            DataFlowFirewall::deny_by_default(name)
        } else {
            DataFlowFirewall::allow_by_default(name)
        };
        self.firewalls.insert(name.to_string(), firewall);
        Ok(())
    }

    /// Number of registered users. O(1): the count is cached at
    /// registration rather than recounted from user storage, so per-op
    /// admission checks (the gateway performs one per submitted op) cost
    /// a field read. Accounts removed through the reputation escape
    /// hatch (attack models) are intentionally not reflected here — the
    /// cache counts platform registrations.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Mutable access to a user's sensor firewall (granular switches).
    pub fn firewall_mut(&mut self, user: &str) -> Option<&mut DataFlowFirewall> {
        self.firewalls.get_mut(user)
    }

    /// Spawns the user's avatar into the shared world.
    pub fn enter_world(&mut self, user: &str, handle: &str, position: Vec2) -> Result<u64, CoreError> {
        Ok(self.world.spawn(handle, user, position)?)
    }

    /// The shared world (interactions, bubbles, events).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Immutable world access.
    pub fn world(&self) -> &World {
        &self.world
    }

    // ---- resilience ---------------------------------------------------

    /// Installs a deterministic fault schedule. Subsequent module
    /// operations and epoch commits consult it; with an empty plan
    /// (the default) nothing ever fails.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.resilience.install_plan(plan);
    }

    /// The active fault injector (read access for experiments).
    pub fn fault_injector(&self) -> &FaultInjector {
        self.resilience.injector()
    }

    /// Counters of the degradation machinery (E19 reads these).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience.stats()
    }

    /// Current health of a module slot.
    pub fn module_health(&self, kind: ModuleKind) -> HealthState {
        self.modules.health(kind)
    }

    /// Moderation reports queued while the moderation slot was down.
    pub fn held_report_count(&self) -> usize {
        self.resilience.held_report_count()
    }

    /// Gate for one operation against a module slot. Consults the fault
    /// injector and (in resilient mode) the slot's circuit breaker;
    /// mirrors every breaker transition into the registry's health map,
    /// which records it for the ledger.
    fn guard(&mut self, kind: ModuleKind) -> Availability {
        self.metrics.slot(kind).calls.incr();
        let tick = self.tick;
        let down = self.resilience.module_down(tick, kind);
        if !self.resilience.enabled() {
            if down {
                self.resilience.stats.zombie_ops += 1;
                self.metrics.slot(kind).zombie.incr();
                return Availability::Zombie;
            }
            return Availability::Ok;
        }
        if !self.resilience.breaker_allows(kind, tick) {
            // Open breaker: fail fast without poking the module.
            self.resilience.stats.fallback_denials += 1;
            self.metrics.slot(kind).refused.incr();
            return Availability::Refused;
        }
        let transitions = self.resilience.observe(kind, !down, tick);
        self.mirror_transitions(kind, &transitions);
        if down {
            self.resilience.stats.fallback_denials += 1;
            self.metrics.slot(kind).refused.incr();
            Availability::Refused
        } else {
            Availability::Ok
        }
    }

    /// Applies breaker transitions to the slot's recorded health.
    fn mirror_transitions(&mut self, kind: ModuleKind, transitions: &[BreakerTransition]) {
        for t in transitions {
            let reason = format!("breaker-{}", t.to.label());
            self.metrics.hub.incr(&names::breaker_transition(kind.label(), t.to.label()));
            self.modules.set_health(kind, health_for(t.to), &reason, t.at);
        }
    }

    /// Fail-closed refusal error for a slot.
    fn unavailable(kind: ModuleKind) -> CoreError {
        CoreError::ModuleUnavailable { module: kind.label().to_string() }
    }

    /// Replays reports held during a moderation outage through the
    /// (recovered) ladder. Reputation penalties are best-effort on
    /// replay — the rate limiter may refuse stale raters — but every
    /// adjudication reaches the ladder and therefore the ledger.
    fn replay_held_reports(&mut self) {
        let held = std::mem::take(&mut self.resilience.held_reports);
        for report in held {
            let _ = self.reputation.report(&report.rater, &report.subject, self.tick);
            self.ladder.punish(&report.subject, "dao:moderation(replayed)");
            self.resilience.stats.replayed_reports += 1;
            self.metrics.reports_replayed.incr();
        }
        self.metrics.reports_held.set(self.resilience.held_report_count() as i64);
    }

    // ---- governance ---------------------------------------------------

    /// Opens a proposal in a governance scope.
    pub fn propose(
        &mut self,
        scope: &str,
        proposer: &str,
        title: &str,
    ) -> Result<ProposalId, CoreError> {
        self.metrics.op("propose").incr();
        let _span = self.metrics.slot(ModuleKind::DecisionMaking).latency.start_span();
        if self.guard(ModuleKind::DecisionMaking) == Availability::Refused {
            return Err(Self::unavailable(ModuleKind::DecisionMaking));
        }
        Ok(self.governance.propose(scope, proposer, title, self.tick)?)
    }

    /// Casts a yes/no vote. With resilience on, a faulted
    /// decision-making module refuses the ballot (the voter can retry);
    /// with resilience off the faulted module swallows it — the ballot
    /// is silently lost, the naive failure mode E19 measures.
    pub fn vote(
        &mut self,
        scope: &str,
        voter: &str,
        id: ProposalId,
        support: bool,
    ) -> Result<(), CoreError> {
        self.metrics.op("vote").incr();
        let _span = self.metrics.slot(ModuleKind::DecisionMaking).latency.start_span();
        match self.guard(ModuleKind::DecisionMaking) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::DecisionMaking)),
            Availability::Zombie => return Ok(()), // ballot silently lost
            Availability::Ok => {}
        }
        let choice = if support { Choice::Yes } else { Choice::No };
        Ok(self.governance.vote(scope, voter, id, choice, self.tick)?)
    }

    /// Closes a proposal; returns `(accepted, tally)`.
    pub fn close_proposal(
        &mut self,
        scope: &str,
        id: ProposalId,
    ) -> Result<(bool, Tally), CoreError> {
        self.metrics.op("close_proposal").incr();
        let _span = self.metrics.slot(ModuleKind::DecisionMaking).latency.start_span();
        if self.guard(ModuleKind::DecisionMaking) == Availability::Refused {
            return Err(Self::unavailable(ModuleKind::DecisionMaking));
        }
        let (status, tally) = self.governance.close(scope, id, self.tick)?;
        Ok((status == ProposalStatus::Accepted, tally))
    }

    /// Casts a credit-budgeted quadratic vote: `votes` ballots cost
    /// `votes²` voice credits from the voter's balance in the scope's
    /// module. Same availability semantics as [`MetaversePlatform::vote`]:
    /// a refused module bounces the ballot (typed error), a zombie one
    /// silently loses it.
    pub fn vote_quadratic(
        &mut self,
        scope: &str,
        voter: &str,
        id: ProposalId,
        support: bool,
        votes: u64,
    ) -> Result<(), CoreError> {
        self.metrics.op("vote_quadratic").incr();
        let _span = self.metrics.slot(ModuleKind::DecisionMaking).latency.start_span();
        match self.guard(ModuleKind::DecisionMaking) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::DecisionMaking)),
            Availability::Zombie => return Ok(()), // ballot silently lost
            Availability::Ok => {}
        }
        let choice = if support { Choice::Yes } else { Choice::No };
        Ok(self.governance.vote_quadratic(scope, voter, id, choice, votes, self.tick)?)
    }

    /// Sets (or with `None`, revokes) a member's liquid-democracy
    /// delegate across *every* governance scope. All-or-nothing: the
    /// delegation is validated everywhere before any scope is mutated,
    /// so platform delegation state never ends up half-applied.
    pub fn set_delegation(&mut self, from: &str, to: Option<&str>) -> Result<(), CoreError> {
        self.metrics.op("delegate").incr();
        let _span = self.metrics.slot(ModuleKind::DecisionMaking).latency.start_span();
        match self.guard(ModuleKind::DecisionMaking) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::DecisionMaking)),
            Availability::Zombie => return Ok(()), // delegation silently lost
            Availability::Ok => {}
        }
        Ok(self.governance.set_delegate_all(from, to)?)
    }

    /// Runs a closure with mutable access to the modular governance
    /// fabric (scoped DAOs), recording the escape as
    /// `escape.governance` so audits can see how often callers step
    /// around the instrumented surface.
    pub fn with_governance<R>(&mut self, f: impl FnOnce(&mut ModularGovernance) -> R) -> R {
        self.metrics.escape_governance.incr();
        f(&mut self.governance)
    }

    /// The modular governance fabric (scoped DAOs). Escape hatch —
    /// prefer [`MetaversePlatform::with_governance`]; both record the
    /// same `escape.governance` event.
    pub fn governance_mut(&mut self) -> &mut ModularGovernance {
        self.metrics.escape_governance.incr();
        &mut self.governance
    }

    // ---- reputation & moderation ---------------------------------------

    /// One user endorses another.
    pub fn endorse(&mut self, rater: &str, subject: &str) -> Result<i64, CoreError> {
        self.metrics.op("endorse").incr();
        let _span = self.metrics.slot(ModuleKind::Reputation).latency.start_span();
        match self.guard(ModuleKind::Reputation) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::Reputation)),
            Availability::Zombie => return Ok(0), // endorsement silently lost
            Availability::Ok => {}
        }
        Ok(self.reputation.endorse(rater, subject, self.tick)?)
    }

    /// One user reports another; an upheld report also climbs the
    /// punitive escalation ladder.
    ///
    /// With resilience on, a faulted moderation module **queues and
    /// holds**: the report returns [`ModAction::Deferred`] and is
    /// replayed through the ladder once the module recovers, so no
    /// adjudication is lost. With resilience off, the faulted module
    /// answers anyway — a flat warning that never climbs the ladder and
    /// never reaches the ledger.
    pub fn report(&mut self, rater: &str, subject: &str) -> Result<ModAction, CoreError> {
        self.metrics.op("report").incr();
        let _span = self.metrics.slot(ModuleKind::Moderation).latency.start_span();
        match self.guard(ModuleKind::Moderation) {
            Availability::Refused => {
                self.resilience.held_reports.push(HeldReport {
                    rater: rater.to_string(),
                    subject: subject.to_string(),
                    queued_at: self.tick,
                });
                self.resilience.stats.deferred_reports += 1;
                self.metrics.reports_deferred.incr();
                self.metrics.reports_held.set(self.resilience.held_report_count() as i64);
                return Ok(ModAction::Deferred);
            }
            Availability::Zombie => {
                self.reputation.report(rater, subject, self.tick)?;
                return Ok(ModAction::Warn); // never recorded, never escalates
            }
            Availability::Ok => {}
        }
        self.replay_held_reports();
        self.reputation.report(rater, subject, self.tick)?;
        Ok(self.ladder.punish(subject, "dao:moderation"))
    }

    /// A user appeals their standing moderation action. Merit is decided
    /// from reputation standing (non-negative points = deserving); the
    /// escalation ladder adjudicates and, on a granted appeal, clears
    /// the offender's history with a ledger-recorded restoration.
    ///
    /// Availability mirrors [`MetaversePlatform::report`]: a refused
    /// moderation module bounces the appeal (typed error, the appellant
    /// can retry), a zombie one answers with an upheld warning that
    /// never reaches the ladder or the ledger.
    pub fn appeal_moderation(&mut self, subject: &str) -> Result<AppealVerdict, CoreError> {
        self.metrics.op("appeal").incr();
        let _span = self.metrics.slot(ModuleKind::Moderation).latency.start_span();
        match self.guard(ModuleKind::Moderation) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::Moderation)),
            Availability::Zombie => return Ok(AppealVerdict::Upheld(ModAction::Warn)),
            Availability::Ok => {}
        }
        let deserving =
            self.reputation.score(subject).map(|s| s.points() >= 0.0).unwrap_or(false);
        Ok(self.ladder.appeal(subject, "dao:appeals", deserving))
    }

    /// Applies a rating whose rater lives on *another* platform shard —
    /// the receive half of a cross-shard settlement (the gateway's
    /// inter-shard queue calls this on the subject's home shard).
    ///
    /// The remote rater has no account here, so the rating is applied as
    /// a system delta at the engine's configured base magnitude (the
    /// rater's trust weight is a shard-local notion). A negative rating
    /// also climbs the punitive escalation ladder, exactly like a local
    /// [`MetaversePlatform::report`]. Guarded by the same module slots
    /// as the local paths: a down reputation/moderation module refuses
    /// the settlement (typed error — the gateway requeues it), keeping
    /// fail-closed semantics end to end.
    pub fn apply_remote_rating(&mut self, subject: &str, positive: bool) -> Result<i64, CoreError> {
        self.metrics.op("remote_rating").incr();
        let kind = if positive { ModuleKind::Reputation } else { ModuleKind::Moderation };
        let _span = self.metrics.slot(kind).latency.start_span();
        match self.guard(kind) {
            Availability::Refused => return Err(Self::unavailable(kind)),
            Availability::Zombie => return Ok(0), // settlement silently lost
            Availability::Ok => {}
        }
        let config = self.reputation.config();
        let (delta, reason) = if positive {
            (config.endorse_base_millis, "gateway:remote-endorse")
        } else {
            (-config.report_base_millis, "gateway:remote-report")
        };
        let applied = self.reputation.system_delta(subject, delta, reason, self.tick)?;
        if !positive {
            self.replay_held_reports();
            self.ladder.punish(subject, "gateway:cross-shard");
        }
        Ok(applied)
    }

    /// Current reputation of a user, in points.
    pub fn reputation_points(&self, user: &str) -> Result<f64, CoreError> {
        Ok(self.reputation.score(user)?.points())
    }

    /// Upheld offenses on the punitive escalation ladder.
    pub fn ladder_offenses(&self, subject: &str) -> u32 {
        self.ladder.offenses(subject)
    }

    /// Runs a closure with mutable access to the reputation engine,
    /// recording the escape as `escape.reputation`.
    pub fn with_reputation<R>(&mut self, f: impl FnOnce(&mut ReputationEngine) -> R) -> R {
        self.metrics.escape_reputation.incr();
        f(&mut self.reputation)
    }

    /// The reputation engine. Escape hatch — prefer
    /// [`MetaversePlatform::with_reputation`]; both record the same
    /// `escape.reputation` event.
    pub fn reputation_mut(&mut self) -> &mut ReputationEngine {
        self.metrics.escape_reputation.incr();
        &mut self.reputation
    }

    // ---- assets ---------------------------------------------------------

    /// Mints an NFT for a creator.
    pub fn mint_asset(
        &mut self,
        creator: &str,
        uri: &str,
        content: &[u8],
        quality: f64,
    ) -> Result<NftId, CoreError> {
        self.metrics.op("mint_asset").incr();
        let _span = self.metrics.slot(ModuleKind::Assets).latency.start_span();
        if self.guard(ModuleKind::Assets) == Availability::Refused {
            return Err(Self::unavailable(ModuleKind::Assets));
        }
        Ok(self.assets.mint(creator, uri, content, quality, self.tick)?)
    }

    /// Lists an asset for sale (subject to the market admission policy,
    /// consulting the reputation engine). With resilience off, a faulted
    /// assets module fails *open*: the listing is admitted without the
    /// reputation gate.
    pub fn list_asset(&mut self, seller: &str, asset: NftId, price: u64) -> Result<(), CoreError> {
        self.metrics.op("list_asset").incr();
        let _span = self.metrics.slot(ModuleKind::Assets).latency.start_span();
        let reputation = match self.guard(ModuleKind::Assets) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::Assets)),
            Availability::Zombie => None, // gate bypassed
            Availability::Ok => Some(&self.reputation),
        };
        Ok(self.market.list(&self.assets, reputation, seller, asset, price, self.tick)?)
    }

    /// Buys a listed asset.
    pub fn buy_asset(&mut self, buyer: &str, asset: NftId) -> Result<(), CoreError> {
        self.metrics.op("buy_asset").incr();
        let _span = self.metrics.slot(ModuleKind::Assets).latency.start_span();
        if self.guard(ModuleKind::Assets) == Availability::Refused {
            return Err(Self::unavailable(ModuleKind::Assets));
        }
        self.market.buy(&mut self.assets, buyer, asset, self.tick)?;
        Ok(())
    }

    /// Funds a wallet.
    pub fn deposit(&mut self, account: &str, amount: u64) {
        self.market.deposit(account, amount);
    }

    /// Debits a wallet — the send half of a cross-shard funds movement.
    /// Settlement layers pair this with a [`MetaversePlatform::deposit`]
    /// on the receiving shard, which conserves total supply.
    pub fn withdraw(&mut self, account: &str, amount: u64) -> Result<(), CoreError> {
        self.metrics.op("withdraw").incr();
        Ok(self.market.withdraw(account, amount)?)
    }

    /// The asset registry.
    pub fn assets(&self) -> &NftRegistry {
        &self.assets
    }

    /// The marketplace.
    pub fn market(&self) -> &Marketplace {
        &self.market
    }

    // ---- privacy & audit -------------------------------------------------

    /// Submits a new collection purpose to the institutional review
    /// board (§II-D). The board's decision is recorded on the ledger at
    /// the next commit.
    pub fn review_collection_purpose(&mut self, request: &ReviewRequest) -> ReviewDecision {
        self.irb.review(request)
    }

    /// Opens a (sensor, purpose) flow on a user's firewall, but only if
    /// the purpose has passed IRB review; the rule honours the board's
    /// obfuscation requirement. This is the paper's "mix of technical
    /// solutions and policies" in one call.
    /// With resilience on, a faulted privacy module refuses the call
    /// outright — no rule is installed, so the firewall's deny-by-default
    /// stance stands (fail-closed). With resilience off, the faulted
    /// module fails *open*: the flow is allowed without consulting the
    /// IRB at all.
    pub fn configure_flow(
        &mut self,
        user: &str,
        sensor: metaverse_ledger::audit::SensorClass,
        collector: &str,
        purpose: &str,
    ) -> Result<metaverse_privacy::firewall::FlowRule, CoreError> {
        use metaverse_privacy::firewall::FlowRule;
        self.metrics.op("configure_flow").incr();
        let _span = self.metrics.slot(ModuleKind::Privacy).latency.start_span();
        let availability = self.guard(ModuleKind::Privacy);
        if availability == Availability::Refused {
            return Err(Self::unavailable(ModuleKind::Privacy));
        }
        let rule = if availability == Availability::Zombie {
            FlowRule::Allow // IRB bypassed: the naive fail-open mode
        } else {
            match self.irb.standing(collector, purpose) {
                Some(ReviewDecision::Approved) => FlowRule::Allow,
                Some(ReviewDecision::ApprovedWithObfuscation) => FlowRule::RequireObfuscation,
                Some(ReviewDecision::Rejected) | None => {
                    return Err(CoreError::Platform(format!(
                        "purpose {purpose:?} by {collector:?} has no IRB approval"
                    )));
                }
            }
        };
        let firewall = self
            .firewalls
            .get_mut(user)
            .ok_or_else(|| CoreError::Platform(format!("unknown user {user:?}")))?;
        firewall.set_switch(sensor, true);
        firewall.set_rule(sensor, purpose, rule);
        Ok(rule)
    }

    /// Runs a closure with mutable access to the review board,
    /// recording the escape as `escape.irb`.
    pub fn with_irb<R>(&mut self, f: impl FnOnce(&mut ReviewBoard) -> R) -> R {
        self.metrics.escape_irb.incr();
        f(&mut self.irb)
    }

    /// The review board (for DAO-routed decisions). Escape hatch —
    /// prefer [`MetaversePlatform::with_irb`]; both record the same
    /// `escape.irb` event.
    pub fn irb_mut(&mut self) -> &mut ReviewBoard {
        self.metrics.escape_irb.incr();
        &mut self.irb
    }

    /// Registers a data-collection event directly (subsystems without a
    /// per-user firewall use this).
    pub fn record_collection(&mut self, event: DataCollectionEvent) {
        self.audit.record(event);
    }

    /// Records differential-privacy spend for a subject.
    pub fn record_dp_spend(&mut self, subject: &str, epsilon: f64) {
        *self.dp_spend.entry(subject.to_string()).or_insert(0.0) += epsilon;
    }

    /// Ingests one PET-filtered sensor release for `subject`: validates
    /// the epsilon charge, records the collection in the audit registry,
    /// and debits differential-privacy spend. Guarded by the privacy
    /// module slot — a refused module fails closed (typed error, the
    /// release never lands), a zombie one lets the release through
    /// untracked (the naive fail-open mode E19 measures).
    pub fn ingest_sensor(
        &mut self,
        subject: &str,
        sensor: SensorClass,
        epsilon: f64,
        bytes: u64,
    ) -> Result<(), CoreError> {
        self.metrics.op("sensor_event").incr();
        let _span = self.metrics.slot(ModuleKind::Privacy).latency.start_span();
        match self.guard(ModuleKind::Privacy) {
            Availability::Refused => return Err(Self::unavailable(ModuleKind::Privacy)),
            Availability::Zombie => return Ok(()), // release lands untracked
            Availability::Ok => {}
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(CoreError::Privacy(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
            }));
        }
        self.audit.record(DataCollectionEvent {
            collector: "gateway:pet".into(),
            subject: subject.to_string(),
            sensor,
            purpose: "sensor-stream".into(),
            basis: LawfulBasis::Consent,
            tick: self.tick,
            bytes,
        });
        self.record_dp_spend(subject, epsilon);
        Ok(())
    }

    /// The audit registry (who collected what).
    pub fn audit(&self) -> &AuditRegistry {
        &self.audit
    }

    /// Evaluates compliance under the active jurisdiction.
    pub fn compliance_report(&self) -> ComplianceReport {
        let spend: Vec<(String, f64)> =
            self.dp_spend.iter().map(|(k, v)| (k.clone(), *v)).collect();
        self.policy.evaluate(&self.audit, &spend)
    }

    /// Swaps the jurisdiction module (§III-E "the modules will swap
    /// accordingly"), recording the swap.
    pub fn set_jurisdiction(&mut self, jurisdiction: Jurisdiction) {
        let mut descriptor =
            ModuleDescriptor::open(ModuleKind::Policy, format!("policy:{}", jurisdiction.name));
        descriptor.version = "swap".into();
        self.modules.install(descriptor);
        self.policy.set_jurisdiction(jurisdiction);
    }

    /// The active jurisdiction name.
    pub fn jurisdiction_name(&self) -> &str {
        &self.policy.jurisdiction().name
    }

    /// The module registry.
    pub fn modules(&self) -> &ModuleRegistry {
        &self.modules
    }

    /// Records a health transition for a platform component the caller
    /// owns (e.g. the gateway's SLO engine tripping an objective). The
    /// transition lands on this platform's ledger as a
    /// `HealthTransition` record at the next epoch commit — same audit
    /// path as the built-in module-health events.
    pub fn record_component_health(
        &mut self,
        component: &str,
        from: HealthState,
        to: HealthState,
        reason: &str,
    ) {
        self.modules.record_component_health(component, from, to, reason, self.tick);
    }

    /// Installs/swaps a module descriptor.
    pub fn install_module(&mut self, descriptor: ModuleDescriptor) {
        self.modules.install(descriptor);
    }

    /// Opens a constitutional proposal to swap a module. The swap is
    /// *not* applied until [`MetaversePlatform::close_module_swap`]
    /// confirms acceptance — code changes go through governance, the
    /// Figure-3 requirement that "changes in the metaverse will also
    /// involve code […] implementations".
    pub fn propose_module_swap(
        &mut self,
        proposer: &str,
        descriptor: ModuleDescriptor,
    ) -> Result<(ProposalId, ModuleDescriptor), CoreError> {
        let title = format!(
            "module-swap {:?} -> {}@{}",
            descriptor.kind, descriptor.name, descriptor.version
        );
        let id = self.governance.propose("root", proposer, &title, self.tick)?;
        Ok((id, descriptor))
    }

    /// Closes a module-swap proposal; applies the swap only when the
    /// vote accepted it. Returns whether the swap was applied.
    pub fn close_module_swap(
        &mut self,
        id: ProposalId,
        descriptor: ModuleDescriptor,
    ) -> Result<bool, CoreError> {
        let (status, _tally) = self.governance.close("root", id, self.tick)?;
        if status == ProposalStatus::Accepted {
            self.modules.install(descriptor);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    // ---- ethics ----------------------------------------------------------

    /// Runs the Ethical-Hierarchy-of-Needs audit over the current state.
    pub fn ethics_audit(&self) -> EthicsAudit {
        let compliance = self.compliance_report();
        let snapshot = EthicsSnapshot {
            modules: &self.modules,
            compliance: &compliance,
            privacy_defaults_on: self.config.privacy_defaults_on,
            pets_available: true, // the privacy crate ships with the platform
            reputation_live: !self.reputation.is_empty(),
            avatar_freedom: true,
            accessibility_features: true,
            community_count: self.config.scopes.len(),
        };
        EthicsAuditor::new().audit(&snapshot)
    }

    // ---- time & ledger -----------------------------------------------------

    /// Current platform tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances logical time.
    pub fn advance_ticks(&mut self, n: u64) {
        self.tick += n;
        self.metrics.tick.set(self.tick as i64);
        self.chain.advance(n);
        self.world.advance(n);
    }

    /// Drains every subsystem's pending records onto the chain and seals
    /// blocks — the transparency commit. Also collects firewall audit
    /// events into the audit registry, and starts a new reputation
    /// rate-limit epoch. Returns the number of blocks sealed.
    ///
    /// When a rogue-validator fault is active, the naive platform
    /// aborts the commit outright ([`CoreError::EpochAborted`]); the
    /// resilient platform waits the misbehaviour out with the
    /// configured retry policy, advancing logical time between attempts
    /// and recording the ledger's degraded health on-chain.
    pub fn commit_epoch(&mut self) -> Result<usize, CoreError> {
        self.metrics.op("commit_epoch").incr();
        // A recovered moderation slot can still owe the ladder reports
        // held while its breaker was open — when the breaker reopened
        // mid-replay, no later successful report() remains to trigger
        // the drain. The epoch boundary is the backstop: replay before
        // collecting so the adjudications land in this commit.
        if self.resilience.held_report_count() > 0
            && self.guard(ModuleKind::Moderation) == Availability::Ok
        {
            self.replay_held_reports();
        }

        let collect_span = self.metrics.epoch_collect.start_span();
        let mut submitted: u64 = 0;
        // Firewall audit events feed the audit registry and the ledger.
        let mut events = Vec::new();
        for firewall in self.firewalls.values_mut() {
            events.extend(firewall.drain_audit_events());
        }
        for event in events {
            self.audit.record(event.clone());
            self.chain.submit(Transaction::new(
                event.collector.clone(),
                TxPayload::DataCollection(event),
            ))?;
            submitted += 1;
        }

        let mut payloads = Vec::new();
        payloads.extend(self.governance.drain_ledger_records());
        payloads.extend(self.reputation.drain_ledger_records());
        payloads.extend(self.assets.drain_ledger_records());
        payloads.extend(self.ladder.drain_ledger_records());
        payloads.extend(self.modules.drain_ledger_records());
        payloads.extend(self.irb.drain_ledger_records());
        for payload in payloads {
            self.chain.submit(Transaction::new("platform", payload))?;
            submitted += 1;
        }
        self.metrics.txs_submitted.add(submitted);

        self.reputation.begin_epoch();
        collect_span.finish();
        if self.chain.mempool_len() == 0 {
            return Ok(0);
        }
        if let Err(err) = self.await_honest_validators() {
            self.metrics.aborts.incr();
            return Err(err);
        }
        let (sealed, profiles) = self.chain.seal_all_profiled()?;
        self.last_sealed.clear();
        for profile in &profiles {
            self.metrics.epoch_merkle.record(profile.merkle_ns);
            self.metrics.epoch_sign.record(profile.sign_ns);
            self.metrics.epoch_append.record(profile.append_ns);
            self.last_sealed.push((profile.height, profile.block));
        }
        self.metrics.commits.incr();
        self.metrics.blocks_sealed.add(sealed as u64);
        self.metrics.chain_height.set(self.chain.height() as i64);
        self.replicate_sealed()?;
        Ok(sealed)
    }

    /// Replicates every block sealed by this commit across the shard's
    /// validator cluster (a no-op without one). Replication is purely
    /// observational — the chain has already sealed, the clock does not
    /// move, and latencies land on certificates and metrics — so a
    /// replication-on run audits byte-identically to a replication-off
    /// run. Only a lost quorum surfaces, as
    /// [`CoreError::Replication`].
    fn replicate_sealed(&mut self) -> Result<(), CoreError> {
        let Some(cluster) = self.replication.as_mut() else {
            return Ok(());
        };
        let before = cluster.stats();
        let mut certificates = Vec::with_capacity(self.last_sealed.len());
        let mut result = Ok(());
        for (height, digest) in &self.last_sealed {
            match cluster.replicate(*height, *digest, self.tick) {
                Ok(cert) => certificates.push(cert),
                Err(err) => {
                    result = Err(CoreError::Replication(err));
                    break;
                }
            }
        }
        let after = cluster.stats();
        let repl = self
            .metrics
            .repl
            .as_ref()
            .expect("replication metrics registered at cluster install");
        for cert in certificates {
            repl.commit_latency.record(cert.commit_latency_ticks);
            if cert.failover_ticks > 0 {
                repl.failover.record(cert.failover_ticks);
            }
        }
        repl.proposed.add(after.blocks_proposed - before.blocks_proposed);
        repl.committed.add(after.blocks_committed - before.blocks_committed);
        repl.acks_delivered.add(after.acks_delivered - before.acks_delivered);
        repl.acks_lost.add(after.acks_lost - before.acks_lost);
        repl.elections.add(after.leader_elections - before.leader_elections);
        repl.catch_ups.add(after.catch_ups - before.catch_ups);
        result
    }

    // ---- replication ------------------------------------------------------

    /// Installs (replaces) the replicated commit layer: every block
    /// sealed by future [`MetaversePlatform::commit_epoch`] calls is
    /// quorum-committed across the cluster's validator nodes. Also
    /// registers the `replication.*` instruments on the platform hub.
    pub fn install_replication(&mut self, cluster: ReplicationCluster) {
        if self.metrics.repl.is_none() {
            self.metrics.repl = Some(ReplicationMetrics::new(&self.metrics.hub));
        }
        self.replication = Some(cluster);
    }

    /// The installed replication cluster, if any.
    pub fn replication(&self) -> Option<&ReplicationCluster> {
        self.replication.as_ref()
    }

    /// Lifetime replication counters, if a cluster is installed.
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        self.replication.as_ref().map(ReplicationCluster::stats)
    }

    /// Installs a validator-scoped fault schedule on the replication
    /// cluster (crash, partition, delayed/dropped acks; target ids are
    /// `s<shard>-v<index>`). No-op without a cluster.
    pub fn install_validator_fault_plan(&mut self, plan: FaultPlan) {
        if let Some(cluster) = self.replication.as_mut() {
            cluster.install_fault_plan(plan);
        }
    }

    /// Drains the replication trace stream (proposed / acked /
    /// quorum-committed / leader-elected events), oldest first. Empty
    /// without a cluster or with its tracing disabled.
    pub fn drain_replication_events(&mut self) -> Vec<TraceEvent> {
        self.replication.as_mut().map(ReplicationCluster::drain_events).unwrap_or_default()
    }

    /// Blocks the commit while a rogue-validator fault is active.
    /// Submitted transactions stay in the mempool either way, so an
    /// aborted commit loses no records — only the epoch.
    fn await_honest_validators(&mut self) -> Result<(), CoreError> {
        let Some(rogue) = self.resilience.injector().rogue_validator(self.tick) else {
            return Ok(());
        };
        let rogue = rogue.to_string();
        if !self.resilience.enabled() {
            self.resilience.stats.commits_aborted += 1;
            return Err(CoreError::EpochAborted { validator: rogue });
        }
        // Resilient path: back off in logical time until the honest
        // validators regain the schedule, and make the outage auditable.
        self.modules.record_component_health(
            "ledger",
            HealthState::Healthy,
            HealthState::Degraded,
            &format!("rogue-validator:{rogue}"),
            self.tick,
        );
        let mut retry = self.resilience.config().commit_retry.begin(self.tick);
        loop {
            match retry.record_failure(self.tick) {
                RetryOutcome::RetryAt(due) => {
                    let wait = due.saturating_sub(self.tick).max(1);
                    self.advance_ticks(wait);
                    self.resilience.stats.commit_retries += 1;
                    if self.resilience.injector().rogue_validator(self.tick).is_none() {
                        self.modules.record_component_health(
                            "ledger",
                            HealthState::Degraded,
                            HealthState::Healthy,
                            "rogue-window-closed",
                            self.tick,
                        );
                        return Ok(());
                    }
                }
                RetryOutcome::GiveUp(cause) => {
                    self.resilience.stats.commits_aborted += 1;
                    self.modules.record_component_health(
                        "ledger",
                        HealthState::Degraded,
                        HealthState::Failed,
                        cause.label(),
                        self.tick,
                    );
                    return Err(CoreError::EpochAborted { validator: rogue });
                }
            }
        }
    }

    /// The underlying chain (read access for verification and light
    /// proofs).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// `(height, header digest)` of the blocks sealed by the most
    /// recent successful [`MetaversePlatform::commit_epoch`] (empty
    /// before the first sealing commit, and after a commit that had
    /// nothing to seal). The gateway's tracing layer stamps these onto
    /// `committed_in_epoch` trace events so every op's causal chain
    /// ends at a named, verifiable block.
    pub fn last_sealed_blocks(&self) -> &[(u64, Digest)] {
        &self.last_sealed
    }

    /// Verifies the whole ledger from genesis.
    pub fn verify_ledger(&self) -> Result<(), CoreError> {
        Ok(self.chain.verify_integrity()?)
    }
}

fn default_module_name(kind: ModuleKind) -> String {
    match kind {
        ModuleKind::DecisionMaking => "dao:one-person-one-vote".into(),
        ModuleKind::Privacy => "pets:firewall+pipeline".into(),
        ModuleKind::Reputation => "reputation:wilson-decay".into(),
        ModuleKind::Moderation => "moderation:hybrid-ladder".into(),
        ModuleKind::Assets => "assets:reputation-gated-market".into(),
        ModuleKind::Safety => "safety:apf-redirection".into(),
        ModuleKind::Trust => "trust:verification-incentives".into(),
        ModuleKind::Policy => "policy:gdpr".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_ledger::audit::{LawfulBasis, SensorClass};

    fn platform() -> MetaversePlatform {
        // Shallow key trees keep validator keygen fast in tests.
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .build();
        for u in ["alice", "bob", "carol"] {
            p.register_user(u).unwrap();
        }
        p
    }

    #[test]
    fn governance_roundtrip_lands_on_ledger() {
        let mut p = platform();
        let id = p.propose("privacy", "alice", "bubbles by default").unwrap();
        p.vote("privacy", "alice", id, true).unwrap();
        p.vote("privacy", "bob", id, true).unwrap();
        p.vote("privacy", "carol", id, false).unwrap();
        let (accepted, tally) = p.close_proposal("privacy", id).unwrap();
        assert!(accepted);
        assert_eq!(tally.yes, 2);
        let sealed = p.commit_epoch().unwrap();
        assert!(sealed >= 1);
        p.verify_ledger().unwrap();
        // The proposal lifecycle is publicly visible on-chain.
        let decided = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(t.payload, TxPayload::ProposalDecided { .. }))
            .count();
        assert_eq!(decided, 1);
    }

    #[test]
    fn asset_lifecycle_with_reputation_gate() {
        let mut p = platform();
        p.deposit("bob", 1000);
        let id = p.mint_asset("alice", "meta://art/1", b"pixels", 0.9).unwrap();
        p.list_asset("alice", id, 100).unwrap();
        p.buy_asset("bob", id).unwrap();
        assert_eq!(p.assets().get(id).unwrap().owner, "bob");
        // Tank alice below the gate; listing a new asset now fails.
        p.reputation_mut().system_delta("alice", -30_000, "scam", 0).unwrap();
        let id2 = p.mint_asset("alice", "meta://art/2", b"pixels2", 0.9).unwrap();
        assert!(p.list_asset("alice", id2, 100).is_err());
    }

    #[test]
    fn reports_escalate_and_record() {
        let mut p = platform();
        assert_eq!(p.report("alice", "carol").unwrap(), ModAction::Warn);
        assert_eq!(p.report("bob", "carol").unwrap(), ModAction::Mute);
        assert!(p.reputation_points("carol").unwrap() < 50.0);
        p.commit_epoch().unwrap();
        let actions = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(t.payload, TxPayload::ModerationAction { .. }))
            .count();
        assert_eq!(actions, 2);
    }

    #[test]
    fn firewall_events_reach_audit_and_chain() {
        let mut p = platform();
        {
            let fw = p.firewall_mut("alice").unwrap();
            fw.set_switch(SensorClass::Gaze, true);
            fw.set_rule(SensorClass::Gaze, "foveation", metaverse_privacy::firewall::FlowRule::Allow);
            fw.request_flow(SensorClass::Gaze, "render-svc", "foveation", LawfulBasis::Contract, 64, 0);
        }
        p.commit_epoch().unwrap();
        assert_eq!(p.audit().len(), 1);
        let on_chain = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(t.payload, TxPayload::DataCollection(_)))
            .count();
        assert_eq!(on_chain, 1);
    }

    #[test]
    fn privacy_defaults_deny() {
        let mut p = platform();
        let fw = p.firewall_mut("alice").unwrap();
        let d = fw.request_flow(
            SensorClass::Gaze,
            "ads",
            "profiling",
            LawfulBasis::None,
            64,
            0,
        );
        assert_eq!(d, metaverse_privacy::firewall::FirewallDecision::Deny);
    }

    #[test]
    fn jurisdiction_swap_changes_findings() {
        let mut p = platform();
        p.record_collection(DataCollectionEvent {
            collector: "corp".into(),
            subject: "alice".into(),
            sensor: SensorClass::Gaze,
            purpose: "analytics".into(),
            basis: LawfulBasis::LegitimateInterest,
            tick: 0,
            bytes: 100,
        });
        // Balance collection shares so the monopoly rule stays quiet and
        // the biometric rule is what distinguishes the jurisdictions.
        for c in ["b", "c", "d"] {
            p.record_collection(DataCollectionEvent {
                collector: c.into(),
                subject: "alice".into(),
                sensor: SensorClass::Audio,
                purpose: "voice".into(),
                basis: LawfulBasis::Consent,
                tick: 0,
                bytes: 100,
            });
        }
        assert!(!p.compliance_report().compliant, "GDPR flags biometric LI");
        p.set_jurisdiction(Jurisdiction::ccpa());
        assert_eq!(p.jurisdiction_name(), "CCPA");
        assert!(p.compliance_report().compliant, "CCPA tolerates it");
    }

    #[test]
    fn default_platform_is_fully_ethical() {
        let p = platform();
        let audit = p.ethics_audit();
        assert!(audit.fully_ethical(), "{:?}", audit.findings);
    }

    #[test]
    fn compliance_findings_break_ethics_base_layer() {
        let mut p = platform();
        p.record_collection(DataCollectionEvent {
            collector: "corp".into(),
            subject: "alice".into(),
            sensor: SensorClass::Audio,
            purpose: "x".into(),
            basis: LawfulBasis::None,
            tick: 0,
            bytes: 1,
        });
        let audit = p.ethics_audit();
        assert_eq!(audit.satisfied_up_to, None);
    }

    #[test]
    fn world_access_through_platform() {
        let mut p = platform();
        let a = p.enter_world("alice", "neo", Vec2::new(1.0, 1.0)).unwrap();
        let b = p.enter_world("bob", "smith", Vec2::new(2.0, 1.0)).unwrap();
        let out = p
            .world_mut()
            .interact(a, b, metaverse_world::world::InteractionKind::Chat)
            .unwrap();
        assert_eq!(out, metaverse_world::world::InteractionOutcome::Delivered);
    }

    #[test]
    fn first_commit_publishes_initial_modules_then_noop() {
        let mut p = platform();
        // Construction installs the eight default modules; the first
        // commit publishes those swap records for transparency.
        assert!(p.commit_epoch().unwrap() >= 1);
        let height = p.chain().height();
        // Nothing new happened: the next commit is a no-op.
        assert_eq!(p.commit_epoch().unwrap(), 0);
        assert_eq!(p.chain().height(), height);
    }

    #[test]
    fn duplicate_user_rejected() {
        let mut p = platform();
        assert!(p.register_user("alice").is_err());
    }

    #[test]
    fn irb_gates_flow_configuration() {
        use metaverse_privacy::firewall::FlowRule;
        let mut p = platform();
        // Unreviewed purpose: rejected.
        assert!(p
            .configure_flow("alice", SensorClass::Gaze, "render-svc", "foveation")
            .is_err());
        // Review it: biometric, non-safety → obfuscation required.
        let decision = p.review_collection_purpose(&ReviewRequest {
            collector: "render-svc".into(),
            sensor: SensorClass::Gaze,
            purpose: "foveation".into(),
            justification: "render quality".into(),
        });
        assert_eq!(decision, ReviewDecision::ApprovedWithObfuscation);
        let rule = p
            .configure_flow("alice", SensorClass::Gaze, "render-svc", "foveation")
            .unwrap();
        assert_eq!(rule, FlowRule::RequireObfuscation);
        // The firewall now permits obfuscated flows for that purpose.
        let fw = p.firewall_mut("alice").unwrap();
        let d = fw.request_flow(
            SensorClass::Gaze,
            "render-svc",
            "foveation",
            LawfulBasis::Consent,
            64,
            0,
        );
        assert_eq!(d, metaverse_privacy::firewall::FirewallDecision::AllowObfuscated);
        // IRB decisions land on the ledger at commit.
        p.commit_epoch().unwrap();
        let irb_notes = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(&t.payload, TxPayload::Note { text } if text.starts_with("irb:")))
            .count();
        assert_eq!(irb_notes, 1);
    }

    #[test]
    fn irb_rejects_biometric_profiling_outright() {
        let mut p = platform();
        let decision = p.review_collection_purpose(&ReviewRequest {
            collector: "ads-svc".into(),
            sensor: SensorClass::Gaze,
            purpose: "ads-profiling".into(),
            justification: "revenue".into(),
        });
        assert_eq!(decision, ReviewDecision::Rejected);
        assert!(p
            .configure_flow("alice", SensorClass::Gaze, "ads-svc", "ads-profiling")
            .is_err());
    }

    #[test]
    fn module_swap_goes_through_governance() {
        let mut p = platform();
        let mut opaque = ModuleDescriptor::open(ModuleKind::Moderation, "vendor-ai");
        opaque.transparent = false;
        let (id, descriptor) = p.propose_module_swap("alice", opaque).unwrap();
        // The community votes it down.
        p.vote("root", "alice", id, true).unwrap();
        p.vote("root", "bob", id, false).unwrap();
        p.vote("root", "carol", id, false).unwrap();
        let applied = p.close_module_swap(id, descriptor.clone()).unwrap();
        assert!(!applied, "rejected swap is not installed");
        assert!(p.ethics_audit().fully_ethical(), "platform unchanged");

        // A transparent replacement passes.
        let good = ModuleDescriptor::open(ModuleKind::Moderation, "community-ai");
        let (id2, descriptor2) = p.propose_module_swap("alice", good).unwrap();
        for (v, support) in [("alice", true), ("bob", true), ("carol", true)] {
            p.vote("root", v, id2, support).unwrap();
        }
        assert!(p.close_module_swap(id2, descriptor2).unwrap());
        assert_eq!(
            p.modules().installed(ModuleKind::Moderation).unwrap().name,
            "community-ai"
        );
    }

    #[test]
    fn resilient_moderation_defers_and_replays() {
        use metaverse_resilience::FaultKind;
        let mut p = platform();
        for u in ["dave", "erin", "mallory"] {
            p.register_user(u).unwrap();
        }
        p.install_fault_plan(
            FaultPlan::new().schedule(0, 30, FaultKind::Crash { module: "moderation".into() }),
        );
        // Three reports during the outage: all held, none lost.
        for rater in ["alice", "bob", "carol"] {
            assert_eq!(p.report(rater, "mallory").unwrap(), ModAction::Deferred);
        }
        assert_eq!(p.held_report_count(), 3);
        assert_eq!(p.module_health(ModuleKind::Moderation), HealthState::Failed);
        assert_eq!(p.ladder_offenses("mallory"), 0, "nothing adjudicated yet");

        // Past the fault window and the breaker cooldown, the first
        // successful report replays the backlog in order.
        p.advance_ticks(30);
        assert_eq!(p.report("dave", "mallory").unwrap(), ModAction::TempBan);
        assert_eq!(p.held_report_count(), 0);
        assert_eq!(p.ladder_offenses("mallory"), 4, "3 replayed + 1 live");
        assert_eq!(p.module_health(ModuleKind::Moderation), HealthState::Degraded);
        assert_eq!(p.report("erin", "mallory").unwrap(), ModAction::PermBan);
        assert_eq!(p.module_health(ModuleKind::Moderation), HealthState::Healthy);

        let stats = p.resilience_stats();
        assert_eq!(stats.deferred_reports, 3);
        assert_eq!(stats.replayed_reports, 3);
        assert_eq!(stats.breaker_opens, 1);

        // Every health transition and every adjudication is on-chain.
        p.commit_epoch().unwrap();
        p.verify_ledger().unwrap();
        let health: Vec<(String, String)> = p
            .chain()
            .iter_txs()
            .filter_map(|t| match &t.payload {
                TxPayload::HealthTransition { module, to, .. } if module == "moderation" => {
                    Some((module.clone(), to.clone()))
                }
                _ => None,
            })
            .collect();
        let states: Vec<&str> = health.iter().map(|(_, to)| to.as_str()).collect();
        assert_eq!(states, ["failed", "degraded", "healthy"]);
        let actions = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(t.payload, TxPayload::ModerationAction { .. }))
            .count();
        assert_eq!(actions, 5, "replayed reports reach the ledger too");
    }

    #[test]
    fn baseline_moderation_zombie_loses_adjudications() {
        use metaverse_resilience::FaultKind;
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .resilience(crate::resilience::ResilienceConfig {
                enabled: false,
                ..Default::default()
            })
            .build();
        for u in ["alice", "bob", "carol", "mallory"] {
            p.register_user(u).unwrap();
        }
        p.install_fault_plan(
            FaultPlan::new().schedule(0, 50, FaultKind::Crash { module: "moderation".into() }),
        );
        // The crashed module still answers — with a flat warning that
        // never escalates and never reaches the ledger.
        for rater in ["alice", "bob", "carol"] {
            assert_eq!(p.report(rater, "mallory").unwrap(), ModAction::Warn);
        }
        assert_eq!(p.ladder_offenses("mallory"), 0);
        assert_eq!(p.resilience_stats().zombie_ops, 3);
        p.commit_epoch().unwrap();
        let actions = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(t.payload, TxPayload::ModerationAction { .. }))
            .count();
        assert_eq!(actions, 0, "the mis-governance: decisions vanish");
    }

    #[test]
    fn privacy_fault_fails_closed_with_resilience_open_without() {
        use metaverse_privacy::firewall::FlowRule;
        use metaverse_resilience::FaultKind;
        let plan = || {
            FaultPlan::new().schedule(0, 40, FaultKind::Crash { module: "privacy".into() })
        };
        // Resilient: refusal, and the deny-by-default stance stands.
        let mut p = platform();
        p.install_fault_plan(plan());
        let err = p
            .configure_flow("alice", SensorClass::Gaze, "render-svc", "foveation")
            .unwrap_err();
        assert!(matches!(err, CoreError::ModuleUnavailable { ref module } if module == "privacy"));
        let d = p.firewall_mut("alice").unwrap().request_flow(
            SensorClass::Gaze,
            "render-svc",
            "foveation",
            LawfulBasis::Consent,
            64,
            0,
        );
        assert_eq!(d, metaverse_privacy::firewall::FirewallDecision::Deny);

        // Naive: the faulted module fails open, bypassing the IRB.
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .resilience(crate::resilience::ResilienceConfig {
                enabled: false,
                ..Default::default()
            })
            .build();
        p.register_user("alice").unwrap();
        p.install_fault_plan(plan());
        let rule = p
            .configure_flow("alice", SensorClass::Gaze, "render-svc", "foveation")
            .unwrap();
        assert_eq!(rule, FlowRule::Allow, "no IRB approval, yet allowed");
    }

    #[test]
    fn rogue_validator_aborts_naive_commit_but_resilient_waits_it_out() {
        use metaverse_resilience::FaultKind;
        let plan = || {
            FaultPlan::new().schedule(
                100,
                60,
                FaultKind::RogueValidator { validator: "validator-0".into() },
            )
        };
        // Naive platform: the commit that lands in the window aborts.
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .resilience(crate::resilience::ResilienceConfig {
                enabled: false,
                ..Default::default()
            })
            .build();
        for u in ["alice", "bob"] {
            p.register_user(u).unwrap();
        }
        p.install_fault_plan(plan());
        p.report("alice", "bob").unwrap();
        p.advance_ticks(120);
        let err = p.commit_epoch().unwrap_err();
        assert!(matches!(err, CoreError::EpochAborted { .. }));
        assert_eq!(p.resilience_stats().commits_aborted, 1);
        // The records were not lost, only the epoch; after the window
        // the backlog commits.
        p.advance_ticks(60);
        assert!(p.commit_epoch().unwrap() >= 1);

        // Resilient platform: same schedule, epoch survives.
        let mut p = platform();
        p.install_fault_plan(plan());
        p.report("alice", "bob").unwrap();
        p.advance_ticks(120);
        assert!(p.commit_epoch().unwrap() >= 1);
        assert!(p.tick() >= 160, "waited out the rogue window in logical time");
        let stats = p.resilience_stats();
        assert!(stats.commit_retries >= 1);
        assert_eq!(stats.commits_aborted, 0);
        p.verify_ledger().unwrap();
        // The outage is auditable: the ledger's own degradation lands
        // at the next commit.
        p.report("bob", "alice").unwrap();
        p.commit_epoch().unwrap();
        let ledger_health = p
            .chain()
            .iter_txs()
            .filter(|t| {
                matches!(&t.payload, TxPayload::HealthTransition { module, .. } if module == "ledger")
            })
            .count();
        assert_eq!(ledger_health, 2, "degraded + recovered");
    }

    #[test]
    fn commit_epoch_replays_reports_stranded_by_reopened_breaker() {
        use metaverse_resilience::FaultKind;
        let mut p = platform();
        for u in ["dave", "erin", "frank", "mallory"] {
            p.register_user(u).unwrap();
        }
        // Moderation crashes, briefly recovers, crashes again through
        // tick 100, then stays healthy.
        p.install_fault_plan(
            FaultPlan::new()
                .schedule(0, 30, FaultKind::Crash { module: "moderation".into() })
                .schedule(32, 68, FaultKind::Crash { module: "moderation".into() }),
        );
        for rater in ["alice", "bob", "carol"] {
            assert_eq!(p.report(rater, "mallory").unwrap(), ModAction::Deferred);
        }
        // Recovery window: the first live report replays the backlog.
        p.advance_ticks(30);
        assert_eq!(p.report("dave", "mallory").unwrap(), ModAction::TempBan);
        assert_eq!(p.held_report_count(), 0);
        // The module crashes again: the half-open probe fails and the
        // breaker reopens; subsequent reports are held once more.
        p.advance_ticks(3);
        assert_eq!(p.report("erin", "mallory").unwrap(), ModAction::Deferred);
        p.advance_ticks(7);
        assert_eq!(p.report("frank", "mallory").unwrap(), ModAction::Deferred);
        assert_eq!(p.held_report_count(), 2);

        // No further report() ever arrives. Before the fix the two held
        // reports were stranded: held_report_count() stayed at 2 and
        // resilience_stats() never balanced. The epoch boundary is the
        // backstop now that moderation is healthy again.
        p.advance_ticks(65); // tick 105: fault windows over, cooldown passed
        p.commit_epoch().unwrap();
        assert_eq!(p.held_report_count(), 0, "epoch commit drains the backlog");
        let stats = p.resilience_stats();
        assert_eq!(stats.deferred_reports, 5);
        assert_eq!(stats.replayed_reports, 5, "every deferred report replayed");
        assert_eq!(p.ladder_offenses("mallory"), 6, "5 replayed + 1 live");
        // Telemetry mirrors the fabric's books exactly.
        let snap = p.telemetry_snapshot();
        assert_eq!(snap.counters["moderation.reports_deferred"], 5);
        assert_eq!(snap.counters["moderation.reports_replayed"], 5);
        assert_eq!(snap.gauges["moderation.reports_held"], 0);
        // And the replayed adjudications made this commit, not a later one.
        let actions = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(t.payload, TxPayload::ModerationAction { .. }))
            .count();
        assert_eq!(actions, 6);
        p.verify_ledger().unwrap();
    }

    #[test]
    fn telemetry_meters_platform_operations() {
        let mut p = platform();
        let before = p.telemetry_snapshot();
        let id = p.propose("privacy", "alice", "bubbles").unwrap();
        p.vote("privacy", "alice", id, true).unwrap();
        p.vote("privacy", "bob", id, true).unwrap();
        p.advance_ticks(200); // past the voting deadline
        p.close_proposal("privacy", id).unwrap();
        p.endorse("alice", "bob").unwrap();
        p.report("alice", "carol").unwrap();
        p.commit_epoch().unwrap();
        let after = p.telemetry_snapshot();
        assert!(after.dominates(&before), "counters only ever grow");
        let d = after.delta(&before);
        assert_eq!(d.counters["ops.propose"], 1);
        assert_eq!(d.counters["ops.vote"], 2);
        assert_eq!(d.counters["module.decision-making.calls"], 4);
        assert_eq!(d.counters["module.reputation.calls"], 1);
        assert_eq!(d.counters["module.moderation.calls"], 1);
        assert_eq!(d.counters["epoch.commits"], 1);
        assert!(d.counters["epoch.txs_submitted"] >= 1);
        assert_eq!(d.counters["epoch.blocks_sealed"], d.histograms["epoch.merkle_ns"].count);
        assert_eq!(d.histograms["module.decision-making.latency_ns"].count, 4);
        assert_eq!(d.histograms["epoch.collect_ns"].count, 1);
        assert!(d.histograms["epoch.sign_ns"].count >= 1);
        assert!(d.histograms["epoch.append_ns"].count >= 1);
    }

    #[test]
    fn escape_hatches_are_metered() {
        let mut p = platform();
        p.with_reputation(|r| r.system_delta("alice", -5, "test", 0)).unwrap();
        let _ = p.governance_mut();
        p.with_irb(|_irb| {});
        let snap = p.telemetry_snapshot();
        assert_eq!(snap.counters["escape.reputation"], 1);
        assert_eq!(snap.counters["escape.governance"], 1);
        assert_eq!(snap.counters["escape.irb"], 1);
    }

    #[test]
    fn refused_and_zombie_calls_are_metered() {
        use metaverse_resilience::FaultKind;
        // Resilient: refusals counted.
        let mut p = platform();
        p.install_fault_plan(
            FaultPlan::new().schedule(0, 30, FaultKind::Crash { module: "moderation".into() }),
        );
        for rater in ["alice", "bob", "carol"] {
            p.report(rater, "bob").unwrap();
        }
        let snap = p.telemetry_snapshot();
        assert_eq!(snap.counters["module.moderation.refused"], 3);
        assert_eq!(snap.counters["module.moderation.zombie"], 0);

        // Naive: zombie passes counted.
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .resilience(crate::resilience::ResilienceConfig {
                enabled: false,
                ..Default::default()
            })
            .fault_plan(
                FaultPlan::new().schedule(0, 30, FaultKind::Crash { module: "moderation".into() }),
            )
            .build();
        for u in ["alice", "bob"] {
            p.register_user(u).unwrap();
        }
        p.report("alice", "bob").unwrap();
        let snap = p.telemetry_snapshot();
        assert_eq!(snap.counters["module.moderation.zombie"], 1);
        assert_eq!(snap.counters["module.moderation.refused"], 0);
    }

    #[test]
    fn user_count_is_cached_and_tracks_registrations() {
        let mut p = platform();
        assert_eq!(p.user_count(), 3);
        // Failed registrations do not bump the cache.
        assert!(p.register_user("alice").is_err());
        assert_eq!(p.user_count(), 3);
        for i in 0..50 {
            p.register_user(&format!("user-{i}")).unwrap();
        }
        assert_eq!(p.user_count(), 53);
        // The cache agrees with the underlying store it replaced as the
        // admission-check source of truth.
        assert_eq!(p.user_count(), p.with_reputation(|r| r.len()));
        assert_eq!(p.telemetry_snapshot().gauges["platform.users"], 53);
    }

    #[test]
    fn remote_rating_applies_base_magnitudes_and_climbs_ladder() {
        let mut p = platform();
        let before = p.reputation_points("carol").unwrap();
        p.apply_remote_rating("carol", true).unwrap();
        let endorsed = p.reputation_points("carol").unwrap();
        assert!(endorsed > before, "remote endorse raises the score");
        p.apply_remote_rating("carol", false).unwrap();
        assert!(p.reputation_points("carol").unwrap() < endorsed);
        assert_eq!(p.ladder_offenses("carol"), 1, "remote report escalates");
        // Both settle onto the ledger as system reputation deltas.
        p.commit_epoch().unwrap();
        let deltas = p
            .chain()
            .iter_txs()
            .filter(|t| matches!(&t.payload, TxPayload::ReputationDelta { reason, .. }
                if reason.contains("gateway:remote")))
            .count();
        assert_eq!(deltas, 2);
    }

    #[test]
    fn remote_rating_refused_while_module_down() {
        use metaverse_resilience::FaultKind;
        let mut p = platform();
        p.install_fault_plan(
            FaultPlan::new().schedule(0, 30, FaultKind::Crash { module: "moderation".into() }),
        );
        let err = p.apply_remote_rating("carol", false).unwrap_err();
        assert!(matches!(err, CoreError::ModuleUnavailable { ref module } if module == "moderation"));
        // Positive ratings ride the reputation slot, which is healthy.
        assert!(p.apply_remote_rating("carol", true).is_ok());
    }

    #[test]
    fn withdraw_pairs_with_deposit_for_zero_sum_transfers() {
        let mut p = platform();
        p.deposit("alice", 300);
        p.withdraw("alice", 120).unwrap();
        assert_eq!(p.market().balance("alice"), 180);
        assert!(p.withdraw("alice", 200).is_err());
        assert_eq!(p.market().balance("alice"), 180);
    }

    #[test]
    fn dp_spend_tracked_into_compliance() {
        let mut p = platform();
        p.record_dp_spend("alice", 1.5);
        p.record_dp_spend("alice", 1.0); // total 2.5 > GDPR's 2.0
        let report = p.compliance_report();
        assert!(!report.compliant);
    }
}
