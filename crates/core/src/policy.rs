//! Jurisdiction profiles and the compliance engine.
//!
//! §II-D: "Using a modular-based framework to construct the privacy
//! regulation protections will allow the metaverse to adapt to local
//! authorities' specifications and provide a homogeneous policy to
//! protect users' privacy." §III-E: "if the metaverse is required to
//! follow the local rules, the modules will swap accordingly."
//!
//! A [`Jurisdiction`] is a named bundle of [`PolicyRequirements`]
//! modelled on GDPR and CCPA; the [`PolicyEngine`] evaluates the
//! ledger's audit registry against the active jurisdiction and produces
//! a [`ComplianceReport`]. Experiment E12 runs one workload under
//! swapped jurisdiction modules and shows the findings change while the
//! *protection* (violations caught) stays homogeneous.

use metaverse_ledger::audit::{AuditRegistry, LawfulBasis, SensorClass};
use serde::{Deserialize, Serialize};

/// Machine-checkable regulatory requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRequirements {
    /// Biometric data requires explicit consent (GDPR Art. 9 style).
    pub biometric_requires_consent: bool,
    /// Every collection event needs *some* lawful basis.
    pub lawful_basis_required: bool,
    /// Maximum tolerated data-concentration HHI before the platform must
    /// act ("no data monopoly", §II-D). 1.0 disables the check.
    pub max_collection_hhi: f64,
    /// Users can demand the list of events about them (right of access).
    pub right_of_access: bool,
    /// Devices must emit visual cues when transmitting personal data.
    pub visual_cues_required: bool,
    /// Per-user differential-privacy budget ceiling for analytics
    /// releases (ε); `f64::INFINITY` disables the check.
    pub max_dp_epsilon: f64,
    /// Minimum registered events before the concentration (HHI) rule is
    /// evaluated — a handful of events is not a market.
    pub monopoly_min_events: usize,
}

/// A named jurisdiction: requirements plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jurisdiction {
    /// Name ("GDPR", "CCPA", "permissive").
    pub name: String,
    /// The requirements bundle.
    pub requirements: PolicyRequirements,
}

impl Jurisdiction {
    /// The EU General Data Protection Regulation profile.
    pub fn gdpr() -> Self {
        Jurisdiction {
            name: "GDPR".into(),
            requirements: PolicyRequirements {
                biometric_requires_consent: true,
                lawful_basis_required: true,
                max_collection_hhi: 0.25,
                right_of_access: true,
                visual_cues_required: true,
                max_dp_epsilon: 2.0,
                monopoly_min_events: 20,
            },
        }
    }

    /// The California Consumer Privacy Act profile (opt-out flavoured:
    /// lawful basis demanded, biometric consent not categorically).
    pub fn ccpa() -> Self {
        Jurisdiction {
            name: "CCPA".into(),
            requirements: PolicyRequirements {
                biometric_requires_consent: false,
                lawful_basis_required: true,
                max_collection_hhi: 0.4,
                right_of_access: true,
                visual_cues_required: false,
                max_dp_epsilon: 4.0,
                monopoly_min_events: 20,
            },
        }
    }

    /// A permissive profile — the unregulated baseline the paper warns
    /// about.
    pub fn permissive() -> Self {
        Jurisdiction {
            name: "permissive".into(),
            requirements: PolicyRequirements {
                biometric_requires_consent: false,
                lawful_basis_required: false,
                max_collection_hhi: 1.0,
                right_of_access: false,
                visual_cues_required: false,
                max_dp_epsilon: f64::INFINITY,
                monopoly_min_events: usize::MAX,
            },
        }
    }
}

/// One compliance finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComplianceFinding {
    /// A biometric event lacked consent.
    BiometricWithoutConsent {
        /// Offending collector.
        collector: String,
        /// Sensor involved.
        sensor: SensorClass,
    },
    /// An event had no lawful basis.
    MissingLawfulBasis {
        /// Offending collector.
        collector: String,
    },
    /// Data collection is over-concentrated.
    DataMonopoly {
        /// Dominant collector.
        collector: String,
        /// Measured HHI.
        hhi: f64,
    },
    /// DP budget exceeded for a subject.
    DpBudgetExceeded {
        /// Affected subject.
        subject: String,
        /// Epsilon spent.
        spent: f64,
    },
}

/// The outcome of a compliance evaluation — an E12 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// Jurisdiction evaluated under.
    pub jurisdiction: String,
    /// All findings.
    pub findings: Vec<ComplianceFinding>,
    /// Events examined.
    pub events_examined: usize,
    /// Whether the platform is compliant (no findings).
    pub compliant: bool,
}

/// Evaluates audit history against a jurisdiction.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    jurisdiction: Jurisdiction,
}

impl PolicyEngine {
    /// Creates an engine for a jurisdiction.
    pub fn new(jurisdiction: Jurisdiction) -> Self {
        PolicyEngine { jurisdiction }
    }

    /// The active jurisdiction.
    pub fn jurisdiction(&self) -> &Jurisdiction {
        &self.jurisdiction
    }

    /// Swaps the jurisdiction module (§III-E).
    pub fn set_jurisdiction(&mut self, jurisdiction: Jurisdiction) {
        self.jurisdiction = jurisdiction;
    }

    /// Evaluates an audit registry (plus optional per-subject DP spend)
    /// and reports findings.
    pub fn evaluate(
        &self,
        audit: &AuditRegistry,
        dp_spend: &[(String, f64)],
    ) -> ComplianceReport {
        let req = &self.jurisdiction.requirements;
        let mut findings = Vec::new();

        for event in audit.events() {
            if req.lawful_basis_required && event.basis == LawfulBasis::None {
                findings.push(ComplianceFinding::MissingLawfulBasis {
                    collector: event.collector.clone(),
                });
            }
            if req.biometric_requires_consent
                && event.sensor.is_biometric()
                && !matches!(event.basis, LawfulBasis::Consent | LawfulBasis::VitalInterest)
            {
                findings.push(ComplianceFinding::BiometricWithoutConsent {
                    collector: event.collector.clone(),
                    sensor: event.sensor,
                });
            }
        }

        if audit.len() >= req.monopoly_min_events && audit.has_monopoly(req.max_collection_hhi) {
            if let Some((collector, _share)) = audit.dominant_collector() {
                findings.push(ComplianceFinding::DataMonopoly {
                    collector,
                    hhi: audit.hhi(),
                });
            }
        }

        for (subject, spent) in dp_spend {
            if *spent > req.max_dp_epsilon {
                findings.push(ComplianceFinding::DpBudgetExceeded {
                    subject: subject.clone(),
                    spent: *spent,
                });
            }
        }

        ComplianceReport {
            jurisdiction: self.jurisdiction.name.clone(),
            events_examined: audit.len(),
            compliant: findings.is_empty(),
            findings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_ledger::audit::DataCollectionEvent;

    fn event(collector: &str, sensor: SensorClass, basis: LawfulBasis) -> DataCollectionEvent {
        DataCollectionEvent {
            collector: collector.into(),
            subject: "alice".into(),
            sensor,
            purpose: "test".into(),
            basis,
            tick: 0,
            bytes: 100,
        }
    }

    fn registry_with(events: Vec<DataCollectionEvent>) -> AuditRegistry {
        let mut reg = AuditRegistry::new();
        for e in events {
            reg.record(e);
        }
        reg
    }

    #[test]
    fn gdpr_flags_biometric_without_consent() {
        let audit = registry_with(vec![
            event("corp", SensorClass::Gaze, LawfulBasis::LegitimateInterest),
            event("corp", SensorClass::Gaze, LawfulBasis::Consent),
        ]);
        let report = PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&audit, &[]);
        assert!(!report.compliant);
        let biometric = report
            .findings
            .iter()
            .filter(|f| matches!(f, ComplianceFinding::BiometricWithoutConsent { .. }))
            .count();
        assert_eq!(biometric, 1);
    }

    #[test]
    fn ccpa_accepts_legitimate_interest_biometrics() {
        // Four equal collectors keep HHI at 0.25 so the monopoly check
        // stays quiet and the biometric rule is isolated.
        let audit = registry_with(vec![
            event("corp", SensorClass::Gaze, LawfulBasis::LegitimateInterest),
            event("b", SensorClass::Audio, LawfulBasis::Consent),
            event("c", SensorClass::Audio, LawfulBasis::Consent),
            event("d", SensorClass::Audio, LawfulBasis::Consent),
        ]);
        let gdpr = PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&audit, &[]);
        let ccpa = PolicyEngine::new(Jurisdiction::ccpa()).evaluate(&audit, &[]);
        assert!(!gdpr.compliant, "GDPR flags it");
        assert!(ccpa.compliant, "CCPA tolerates it");
    }

    #[test]
    fn both_flag_missing_basis_homogeneously() {
        // The "homogeneous protection" core: the worst practices are
        // caught under either regulation module.
        let audit = registry_with(vec![event("corp", SensorClass::Audio, LawfulBasis::None)]);
        for j in [Jurisdiction::gdpr(), Jurisdiction::ccpa()] {
            let report = PolicyEngine::new(j).evaluate(&audit, &[]);
            assert!(
                report
                    .findings
                    .iter()
                    .any(|f| matches!(f, ComplianceFinding::MissingLawfulBasis { .. })),
                "{report:?}"
            );
        }
    }

    #[test]
    fn permissive_flags_nothing() {
        let audit = registry_with(vec![
            event("corp", SensorClass::Gaze, LawfulBasis::None),
            event("corp", SensorClass::HeartRate, LawfulBasis::None),
        ]);
        let report = PolicyEngine::new(Jurisdiction::permissive()).evaluate(&audit, &[]);
        assert!(report.compliant);
        assert_eq!(report.events_examined, 2);
    }

    #[test]
    fn monopoly_detection_threshold_differs() {
        // One collector with 30% share... construct: shares 0.3/0.25/0.25/0.2
        // → HHI = 0.09+0.0625+0.0625+0.04 = 0.255: over GDPR's 0.25,
        // under CCPA's 0.4.
        let mut events = Vec::new();
        for (c, bytes) in [("a", 30u64), ("b", 25), ("c", 25), ("d", 20)] {
            // Ten events per collector so the min-events floor is met.
            for _ in 0..10 {
                let mut e = event(c, SensorClass::Audio, LawfulBasis::Consent);
                e.bytes = bytes;
                events.push(e);
            }
        }
        let audit = registry_with(events);
        let gdpr = PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&audit, &[]);
        let ccpa = PolicyEngine::new(Jurisdiction::ccpa()).evaluate(&audit, &[]);
        assert!(gdpr.findings.iter().any(|f| matches!(f, ComplianceFinding::DataMonopoly { .. })));
        assert!(ccpa.compliant);
    }

    #[test]
    fn dp_budget_check() {
        let audit = AuditRegistry::new();
        let spend = vec![("alice".to_string(), 3.0), ("bob".to_string(), 1.0)];
        let report = PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&audit, &spend);
        assert_eq!(report.findings.len(), 1);
        assert!(matches!(
            &report.findings[0],
            ComplianceFinding::DpBudgetExceeded { subject, .. } if subject == "alice"
        ));
    }

    #[test]
    fn jurisdiction_swap() {
        let mut engine = PolicyEngine::new(Jurisdiction::gdpr());
        assert_eq!(engine.jurisdiction().name, "GDPR");
        engine.set_jurisdiction(Jurisdiction::ccpa());
        assert_eq!(engine.jurisdiction().name, "CCPA");
    }
}
