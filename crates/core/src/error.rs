//! The unified error type of the platform façade.

use metaverse_assets::error::AssetError;
use metaverse_dao::error::DaoError;
use metaverse_ledger::error::LedgerError;
use metaverse_privacy::error::PrivacyError;
use metaverse_replication::ReplicationError;
use metaverse_reputation::error::ReputationError;
use metaverse_world::error::WorldError;

/// Any error a platform operation can surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Ledger subsystem error.
    Ledger(LedgerError),
    /// Governance subsystem error.
    Dao(DaoError),
    /// Reputation subsystem error.
    Reputation(ReputationError),
    /// Asset subsystem error.
    Asset(AssetError),
    /// Privacy subsystem error.
    Privacy(PrivacyError),
    /// World subsystem error.
    World(WorldError),
    /// A platform-level invariant was violated.
    Platform(String),
    /// A module slot is down (fault active or circuit breaker open) and
    /// the platform's fail-closed fallback is to refuse the operation.
    ModuleUnavailable {
        /// Slot label of the unavailable module (e.g. "privacy").
        module: String,
    },
    /// An epoch commit was abandoned because a validator misbehaved for
    /// longer than the platform was willing to wait.
    EpochAborted {
        /// Identity of the misbehaving validator.
        validator: String,
    },
    /// A sealed block could not be quorum-committed across the shard's
    /// replication cluster.
    Replication(ReplicationError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Ledger(e) => write!(f, "ledger: {e}"),
            CoreError::Dao(e) => write!(f, "governance: {e}"),
            CoreError::Reputation(e) => write!(f, "reputation: {e}"),
            CoreError::Asset(e) => write!(f, "assets: {e}"),
            CoreError::Privacy(e) => write!(f, "privacy: {e}"),
            CoreError::World(e) => write!(f, "world: {e}"),
            CoreError::Platform(msg) => write!(f, "platform: {msg}"),
            CoreError::ModuleUnavailable { module } => {
                write!(f, "resilience: module {module:?} unavailable, fail-closed fallback engaged")
            }
            CoreError::EpochAborted { validator } => {
                write!(f, "resilience: epoch commit aborted, rogue validator {validator:?}")
            }
            CoreError::Replication(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ledger(e) => Some(e),
            CoreError::Dao(e) => Some(e),
            CoreError::Reputation(e) => Some(e),
            CoreError::Asset(e) => Some(e),
            CoreError::Privacy(e) => Some(e),
            CoreError::World(e) => Some(e),
            CoreError::Replication(e) => Some(e),
            CoreError::Platform(_)
            | CoreError::ModuleUnavailable { .. }
            | CoreError::EpochAborted { .. } => None,
        }
    }
}

impl From<ReplicationError> for CoreError {
    fn from(e: ReplicationError) -> Self {
        CoreError::Replication(e)
    }
}

impl From<LedgerError> for CoreError {
    fn from(e: LedgerError) -> Self {
        CoreError::Ledger(e)
    }
}
impl From<DaoError> for CoreError {
    fn from(e: DaoError) -> Self {
        CoreError::Dao(e)
    }
}
impl From<ReputationError> for CoreError {
    fn from(e: ReputationError) -> Self {
        CoreError::Reputation(e)
    }
}
impl From<AssetError> for CoreError {
    fn from(e: AssetError) -> Self {
        CoreError::Asset(e)
    }
}
impl From<PrivacyError> for CoreError {
    fn from(e: PrivacyError) -> Self {
        CoreError::Privacy(e)
    }
}
impl From<WorldError> for CoreError {
    fn from(e: WorldError) -> Self {
        CoreError::World(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_subsystem() {
        let e: CoreError = LedgerError::NothingToSeal.into();
        assert!(e.to_string().starts_with("ledger:"));
        let e: CoreError = DaoError::UnknownScope { scope: "x".into() }.into();
        assert!(e.to_string().starts_with("governance:"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = LedgerError::NothingToSeal.into();
        assert!(e.source().is_some());
        assert!(CoreError::Platform("p".into()).source().is_none());
    }
}
