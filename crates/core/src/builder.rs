//! Fluent platform construction.
//!
//! [`PlatformBuilder`] is the platform's front door: it replaces the
//! grow-a-struct [`PlatformConfig`] constructor with a surface that can
//! say what it means — which jurisdiction, which module set, whether
//! telemetry records, which fault schedule to start under — without
//! every caller spelling out a full config. The legacy
//! [`MetaversePlatform::new`] remains as a thin shim over this builder
//! so existing callers keep compiling.

use metaverse_assets::market::AdmissionPolicy;
use metaverse_dao::dao::DaoConfig;
use metaverse_ledger::chain::ChainConfig;
use metaverse_replication::{ReplicationCluster, ReplicationConfig};
use metaverse_reputation::engine::EngineConfig;
use metaverse_resilience::FaultPlan;
use metaverse_telemetry::TelemetryHub;

use crate::module::ModuleDescriptor;
use crate::platform::{MetaversePlatform, PlatformConfig};
use crate::policy::Jurisdiction;
use crate::resilience::ResilienceConfig;

/// Builds a [`MetaversePlatform`]. Obtain one from
/// [`MetaversePlatform::builder`]; every knob has the same default as
/// [`PlatformConfig::default`], telemetry is **on**, and no faults are
/// scheduled.
///
/// ```
/// use metaverse_core::platform::MetaversePlatform;
/// use metaverse_core::policy::Jurisdiction;
///
/// let platform = MetaversePlatform::builder()
///     .jurisdiction(Jurisdiction::ccpa())
///     .validators(["v0"])
///     .telemetry(true)
///     .build();
/// assert_eq!(platform.jurisdiction_name(), "CCPA");
/// assert!(platform.telemetry().is_enabled());
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    config: PlatformConfig,
    telemetry: bool,
    fault_plan: Option<FaultPlan>,
    modules: Vec<ModuleDescriptor>,
    replication: Option<ReplicationConfig>,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        PlatformBuilder {
            config: PlatformConfig::default(),
            telemetry: true,
            fault_plan: None,
            modules: Vec::new(),
            replication: None,
        }
    }
}

impl PlatformBuilder {
    /// A builder with every default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing config (the legacy-shim path).
    pub fn from_config(config: PlatformConfig) -> Self {
        PlatformBuilder { config, ..Self::default() }
    }

    /// Active jurisdiction profile.
    pub fn jurisdiction(mut self, jurisdiction: Jurisdiction) -> Self {
        self.config.jurisdiction = jurisdiction;
        self
    }

    /// Governance scopes installed at start.
    pub fn scopes<I, S>(mut self, scopes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.scopes = scopes.into_iter().map(Into::into).collect();
        self
    }

    /// Chain validator set.
    pub fn validators<I, S>(mut self, validators: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.validators = validators.into_iter().map(Into::into).collect();
        self
    }

    /// Ledger tuning.
    pub fn chain_config(mut self, chain_config: ChainConfig) -> Self {
        self.config.chain_config = chain_config;
        self
    }

    /// DAO tuning shared by every scope.
    pub fn dao_config(mut self, dao_config: DaoConfig) -> Self {
        self.config.dao_config = dao_config;
        self
    }

    /// Whether new users get deny-by-default sensor firewalls.
    pub fn privacy_defaults(mut self, on: bool) -> Self {
        self.config.privacy_defaults_on = on;
        self
    }

    /// Marketplace admission policy.
    pub fn market_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.config.market_policy = policy;
        self
    }

    /// Reputation engine tuning.
    pub fn reputation_config(mut self, reputation: EngineConfig) -> Self {
        self.config.reputation_config = reputation;
        self
    }

    /// Graceful-degradation tuning.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Whether the platform records telemetry (default on). Off hands
    /// every subsystem no-op instruments; nothing else changes.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Installs a deterministic fault schedule from the first tick
    /// (equivalent to calling
    /// [`MetaversePlatform::install_fault_plan`] right after build).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a quorum-commit replication cluster (shard 0) over the
    /// sealed chain — equivalent to calling
    /// [`MetaversePlatform::install_replication`] right after build.
    /// Sharded callers (the gateway) install per-shard clusters
    /// directly instead.
    pub fn replication(mut self, config: ReplicationConfig) -> Self {
        self.replication = Some(config);
        self
    }

    /// Overrides the module filling one slot (repeatable). Slots not
    /// named keep the paper's recommended open defaults. The override
    /// is recorded as a swap on the ledger like any other install.
    pub fn module(mut self, descriptor: ModuleDescriptor) -> Self {
        self.modules.push(descriptor);
        self
    }

    /// Assembles the platform.
    pub fn build(self) -> MetaversePlatform {
        let hub = if self.telemetry { TelemetryHub::new() } else { TelemetryHub::disabled() };
        let mut platform = MetaversePlatform::assemble(self.config, hub);
        for descriptor in self.modules {
            platform.install_module(descriptor);
        }
        if let Some(plan) = self.fault_plan {
            platform.install_fault_plan(plan);
        }
        if let Some(config) = self.replication {
            platform.install_replication(ReplicationCluster::new(0, config));
        }
        platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleKind;
    use metaverse_resilience::{FaultKind, HealthState};

    #[test]
    #[allow(deprecated)] // the point of this test is the legacy shim
    fn defaults_match_legacy_constructor() {
        let built = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .build();
        let legacy = MetaversePlatform::new(PlatformConfig {
            chain_config: ChainConfig { key_tree_depth: 4, ..ChainConfig::default() },
            validators: vec!["validator-0".into()],
            ..PlatformConfig::default()
        });
        assert_eq!(built.jurisdiction_name(), legacy.jurisdiction_name());
        assert_eq!(built.modules().len(), legacy.modules().len());
        assert!(built.telemetry().is_enabled());
        assert!(legacy.telemetry().is_enabled());
    }

    #[test]
    fn telemetry_off_is_total() {
        let p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["v0"])
            .telemetry(false)
            .build();
        assert!(!p.telemetry().is_enabled());
        let snap = p.telemetry_snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn module_overrides_and_fault_plan_apply() {
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["v0"])
            .module(ModuleDescriptor::open(ModuleKind::Moderation, "community-ai"))
            .fault_plan(
                FaultPlan::new().schedule(0, 10, FaultKind::Crash { module: "privacy".into() }),
            )
            .build();
        assert_eq!(p.modules().installed(ModuleKind::Moderation).unwrap().name, "community-ai");
        p.register_user("alice").unwrap();
        assert!(p
            .configure_flow(
                "alice",
                metaverse_ledger::audit::SensorClass::Gaze,
                "svc",
                "purpose",
            )
            .is_err());
        assert_eq!(p.module_health(ModuleKind::Privacy), HealthState::Healthy);
    }

    #[test]
    fn scopes_and_privacy_defaults_flow_through() {
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["v0"])
            .scopes(["root"])
            .privacy_defaults(false)
            .build();
        p.register_user("alice").unwrap();
        // Allow-by-default firewall: an unreviewed flow is permitted.
        let d = p.firewall_mut("alice").unwrap().request_flow(
            metaverse_ledger::audit::SensorClass::Audio,
            "svc",
            "x",
            metaverse_ledger::audit::LawfulBasis::Consent,
            1,
            0,
        );
        assert_eq!(d, metaverse_privacy::firewall::FirewallDecision::Allow);
    }
}
