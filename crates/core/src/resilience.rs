//! Platform-level graceful degradation.
//!
//! The Figure-3 architecture is only as ethical as its worst failure
//! mode: a platform whose privacy module crashes *open*, or whose
//! moderation module silently stops recording actions, mis-governs
//! exactly when users are most exposed. This module wires the
//! `metaverse-resilience` primitives into the platform façade:
//!
//! * a per-slot [`CircuitBreaker`] converts observed operation failures
//!   into explicit [`HealthState`] transitions, which the module
//!   registry records on the ledger;
//! * while a slot is down, operations take their **fail-closed**
//!   fallback — privacy flows are refused (the firewall's deny-by-default
//!   stance stands), moderation reports are queued and replayed on
//!   recovery, governance writes are refused rather than silently lost;
//! * with resilience *disabled* the platform reproduces the naive
//!   failure modes the paper warns about ("zombie" modules that serve
//!   fail-open or silently-lossy results) so experiment E19 can measure
//!   the difference fault-for-fault.

use std::collections::BTreeMap;

use metaverse_ledger::Tick;
use metaverse_resilience::breaker::BreakerTransition;
use metaverse_resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultInjector, FaultPlan, HealthState,
    RetryPolicy,
};

use crate::module::ModuleKind;

/// Tuning for the platform's resilience layer.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Whether graceful degradation is active. Off reproduces the naive
    /// platform: faulted modules serve fail-open / silently-lossy
    /// results and a rogue validator aborts epoch commits.
    pub enabled: bool,
    /// Circuit-breaker tuning shared by every module slot.
    pub breaker: BreakerConfig,
    /// Retry policy for epoch commits waiting out a rogue validator,
    /// in logical ticks.
    pub commit_retry: RetryPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            enabled: true,
            breaker: BreakerConfig::default(),
            // Rogue-validator windows run tens to hundreds of ticks, so
            // the commit path backs off further than the default policy.
            commit_retry: RetryPolicy {
                max_retries: 8,
                base_backoff: 4,
                backoff_factor: 2,
                max_backoff: 128,
                timeout: 0,
            },
        }
    }
}

/// A moderation report held while the moderation slot is down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldReport {
    /// Who filed the report.
    pub rater: String,
    /// Who the report is about.
    pub subject: String,
    /// Tick the report was queued.
    pub queued_at: Tick,
}

/// Counters the degradation experiment (E19) reads out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Fail-closed refusals while a slot was down (resilient mode).
    pub fallback_denials: u64,
    /// Moderation reports queued for replay.
    pub deferred_reports: u64,
    /// Held reports replayed after recovery.
    pub replayed_reports: u64,
    /// Operations served by a faulted module with resilience off — each
    /// one is a mis-governed decision (fail-open flow, lost vote,
    /// unrecorded moderation action).
    pub zombie_ops: u64,
    /// Epoch-commit retries spent waiting out a rogue validator.
    pub commit_retries: u64,
    /// Epoch commits abandoned entirely.
    pub commits_aborted: u64,
    /// Times any slot's breaker opened.
    pub breaker_opens: u64,
}

/// How a guarded module operation may proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Availability {
    /// Module healthy: serve normally.
    Ok,
    /// Module faulted and resilience is off: the caller must emulate the
    /// naive failure mode (fail-open / silent loss).
    Zombie,
    /// Module faulted and resilience is on: fail closed.
    Refused,
}

/// Maps a breaker state onto the module-health lattice.
pub fn health_for(state: BreakerState) -> HealthState {
    match state {
        BreakerState::Closed => HealthState::Healthy,
        BreakerState::HalfOpen { .. } => HealthState::Degraded,
        BreakerState::Open { .. } => HealthState::Failed,
    }
}

/// The platform's resilience state: the fault injector (empty unless a
/// plan is installed), one circuit breaker per module slot, the held
/// moderation queue, and the experiment counters.
#[derive(Debug)]
pub struct ResilienceFabric {
    config: ResilienceConfig,
    injector: FaultInjector,
    breakers: BTreeMap<ModuleKind, CircuitBreaker>,
    pub(crate) held_reports: Vec<HeldReport>,
    pub(crate) stats: ResilienceStats,
}

impl ResilienceFabric {
    /// A fabric with closed breakers and no faults scheduled.
    pub fn new(config: ResilienceConfig) -> Self {
        let breakers = ModuleKind::ALL
            .iter()
            .map(|k| (*k, CircuitBreaker::new(config.breaker)))
            .collect();
        ResilienceFabric {
            config,
            injector: FaultInjector::default(),
            breakers,
            held_reports: Vec::new(),
            stats: ResilienceStats::default(),
        }
    }

    /// Whether graceful degradation is active.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The layer's tuning.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Replaces the fault schedule (experiments install one per run).
    pub fn install_plan(&mut self, plan: FaultPlan) {
        self.injector = plan.injector();
    }

    /// The active fault injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Whether a crash/stall fault on the slot is active at `tick`.
    pub fn module_down(&self, tick: Tick, kind: ModuleKind) -> bool {
        self.injector.module_down(tick, kind.label())
    }

    /// Current breaker state for a slot.
    pub fn breaker_state(&self, kind: ModuleKind) -> BreakerState {
        self.breakers[&kind].state()
    }

    /// Whether the slot's breaker admits a request at `now`.
    pub fn breaker_allows(&self, kind: ModuleKind, now: Tick) -> bool {
        self.breakers[&kind].allows_request(now)
    }

    /// Feeds one operation outcome into the slot's breaker. Returns
    /// every state transition that fired (cooldown expiry can fire a
    /// transition *and* the outcome another) so the platform can mirror
    /// each one into the registry's health map and onto the ledger.
    pub(crate) fn observe(
        &mut self,
        kind: ModuleKind,
        ok: bool,
        now: Tick,
    ) -> Vec<BreakerTransition> {
        let breaker = self.breakers.get_mut(&kind).expect("every slot has a breaker");
        let mut transitions = Vec::new();
        transitions.extend(breaker.poll(now));
        let outcome = if ok { breaker.record_success(now) } else { breaker.record_failure(now) };
        transitions.extend(outcome);
        self.stats.breaker_opens += transitions
            .iter()
            .filter(|t| matches!(t.to, BreakerState::Open { .. }))
            .count() as u64;
        transitions
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Reports currently queued for replay.
    pub fn held_report_count(&self) -> usize {
        self.held_reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_health_mapping() {
        assert_eq!(health_for(BreakerState::Closed), HealthState::Healthy);
        assert_eq!(health_for(BreakerState::HalfOpen { successes: 1 }), HealthState::Degraded);
        assert_eq!(health_for(BreakerState::Open { until: 9 }), HealthState::Failed);
    }

    #[test]
    fn observe_opens_breaker_and_counts() {
        let mut fabric = ResilienceFabric::new(ResilienceConfig::default());
        let threshold = fabric.config().breaker.failure_threshold;
        let mut transitions = Vec::new();
        for t in 0..threshold as u64 {
            transitions.extend(fabric.observe(ModuleKind::Privacy, false, t));
        }
        assert_eq!(transitions.len(), 1, "threshold-th failure opens");
        assert!(matches!(transitions[0].to, BreakerState::Open { .. }));
        assert_eq!(fabric.stats().breaker_opens, 1);
        assert!(!fabric.breaker_allows(ModuleKind::Privacy, threshold as u64));
        // Other slots are independent.
        assert!(fabric.breaker_allows(ModuleKind::Moderation, threshold as u64));
    }

    #[test]
    fn observe_surfaces_cooldown_transition_before_success() {
        let mut fabric = ResilienceFabric::new(ResilienceConfig::default());
        let cfg = fabric.config().breaker;
        for t in 0..cfg.failure_threshold as u64 {
            fabric.observe(ModuleKind::Assets, false, t);
        }
        let after_cooldown = cfg.failure_threshold as u64 + cfg.cooldown;
        let transitions = fabric.observe(ModuleKind::Assets, true, after_cooldown);
        // Open → HalfOpen fires from the poll; the success alone is not
        // enough to close, so exactly one transition surfaces.
        assert_eq!(transitions.len(), 1);
        assert!(matches!(transitions[0].to, BreakerState::HalfOpen { .. }));
    }

    #[test]
    fn empty_injector_never_faults() {
        let fabric = ResilienceFabric::new(ResilienceConfig::default());
        for kind in ModuleKind::ALL {
            assert!(!fabric.module_down(0, kind));
            assert!(!fabric.module_down(10_000, kind));
        }
    }
}
