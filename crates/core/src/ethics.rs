//! The 'Ethical Hierarchy of Needs' auditor (experiment E14).
//!
//! §IV-C aligns the metaverse with the Ethical Hierarchy of Needs
//! (Balkan's pyramid, CC BY 4.0): **human rights** at the base, **human
//! effort** above it, **human experience** at the top — a layer can only
//! be satisfied if the layers beneath it are. The auditor turns each
//! layer into concrete checks over a platform snapshot and scores them.

use serde::{Deserialize, Serialize};

use crate::module::{ModuleKind, ModuleRegistry, Stakeholder};
use crate::policy::ComplianceReport;

/// The three layers of the hierarchy, base first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EthicsLayer {
    /// Privacy, inclusivity, transparency, no monopoly.
    HumanRights,
    /// Reputation, participation of all stakeholders in decisions.
    HumanEffort,
    /// Accessibility, avatar freedom, immersion.
    HumanExperience,
}

/// One failed check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthicsFinding {
    /// Which layer the finding belongs to.
    pub layer: EthicsLayer,
    /// What failed.
    pub check: String,
}

/// The inputs the auditor inspects — a snapshot of platform facts.
#[derive(Debug, Clone)]
pub struct EthicsSnapshot<'a> {
    /// The installed module registry.
    pub modules: &'a ModuleRegistry,
    /// Latest compliance report from the policy engine.
    pub compliance: &'a ComplianceReport,
    /// Whether privacy protections (bubbles, firewall deny-default) are
    /// on by default for new users.
    pub privacy_defaults_on: bool,
    /// Whether PETs are available to users.
    pub pets_available: bool,
    /// Whether a reputation system is live.
    pub reputation_live: bool,
    /// Whether users can create/customise avatars freely.
    pub avatar_freedom: bool,
    /// Whether the platform offers accessibility accommodations.
    pub accessibility_features: bool,
    /// Number of distinct communities/venues users can join.
    pub community_count: usize,
}

/// The audit result — an E14 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EthicsAudit {
    /// Checks passed per layer `(passed, total)`.
    pub scores: Vec<(EthicsLayer, usize, usize)>,
    /// All failed checks.
    pub findings: Vec<EthicsFinding>,
    /// Highest layer fully satisfied, respecting the hierarchy (a layer
    /// counts only if every layer below it also passes). `None` when
    /// even human rights fail.
    pub satisfied_up_to: Option<EthicsLayer>,
}

impl EthicsAudit {
    /// Whether the configuration passes the full hierarchy.
    pub fn fully_ethical(&self) -> bool {
        self.satisfied_up_to == Some(EthicsLayer::HumanExperience)
    }
}

/// The auditor.
#[derive(Debug, Default, Clone, Copy)]
pub struct EthicsAuditor;

impl EthicsAuditor {
    /// Creates the auditor.
    pub fn new() -> Self {
        EthicsAuditor
    }

    /// Runs every check against a snapshot.
    pub fn audit(&self, snapshot: &EthicsSnapshot<'_>) -> EthicsAudit {
        let mut findings = Vec::new();
        let mut scores = Vec::new();

        // ---- Human rights -------------------------------------------------
        let mut passed = 0;
        let mut total = 0;
        let check = |ok: bool, layer: EthicsLayer, name: &str, findings: &mut Vec<EthicsFinding>| {
            if ok {
                1
            } else {
                findings.push(EthicsFinding { layer, check: name.to_string() });
                0
            }
        };

        for (ok, name) in [
            (snapshot.privacy_defaults_on, "privacy protections on by default"),
            (snapshot.pets_available, "PETs available to users"),
            (snapshot.compliance.compliant, "no outstanding compliance findings"),
            (
                snapshot.modules.opaque_modules().is_empty() && !snapshot.modules.is_empty(),
                "all modules transparent",
            ),
            (
                snapshot.modules.installed(ModuleKind::Policy).is_some(),
                "regulation-adaptation module installed",
            ),
        ] {
            total += 1;
            passed += check(ok, EthicsLayer::HumanRights, name, &mut findings);
        }
        scores.push((EthicsLayer::HumanRights, passed, total));
        let rights_ok = passed == total;

        // ---- Human effort -------------------------------------------------
        let (mut passed, mut total) = (0, 0);
        for (ok, name) in [
            (snapshot.reputation_live, "reputation system live"),
            (
                snapshot.modules.installed(ModuleKind::DecisionMaking).is_some(),
                "decision-making module installed",
            ),
            (
                snapshot.modules.all_involve(Stakeholder::Users),
                "users involved in every module",
            ),
            (
                snapshot.modules.all_involve(Stakeholder::Regulators),
                "regulators involved in every module",
            ),
        ] {
            total += 1;
            passed += check(ok, EthicsLayer::HumanEffort, name, &mut findings);
        }
        scores.push((EthicsLayer::HumanEffort, passed, total));
        let effort_ok = passed == total;

        // ---- Human experience ---------------------------------------------
        let (mut passed, mut total) = (0, 0);
        for (ok, name) in [
            (snapshot.avatar_freedom, "avatar customisation freedom"),
            (snapshot.accessibility_features, "accessibility accommodations"),
            (snapshot.community_count >= 2, "plurality of communities"),
        ] {
            total += 1;
            passed += check(ok, EthicsLayer::HumanExperience, name, &mut findings);
        }
        scores.push((EthicsLayer::HumanExperience, passed, total));
        let experience_ok = passed == total;

        let satisfied_up_to = if !rights_ok {
            None
        } else if !effort_ok {
            Some(EthicsLayer::HumanRights)
        } else if !experience_ok {
            Some(EthicsLayer::HumanEffort)
        } else {
            Some(EthicsLayer::HumanExperience)
        };

        EthicsAudit { scores, findings, satisfied_up_to }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleDescriptor;
    use crate::policy::{Jurisdiction, PolicyEngine};
    use metaverse_ledger::audit::AuditRegistry;

    fn full_registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        for kind in ModuleKind::ALL {
            reg.install(ModuleDescriptor::open(kind, format!("{kind:?}-impl")));
        }
        reg
    }

    fn clean_compliance() -> ComplianceReport {
        PolicyEngine::new(Jurisdiction::gdpr()).evaluate(&AuditRegistry::new(), &[])
    }

    fn good_snapshot<'a>(
        modules: &'a ModuleRegistry,
        compliance: &'a ComplianceReport,
    ) -> EthicsSnapshot<'a> {
        EthicsSnapshot {
            modules,
            compliance,
            privacy_defaults_on: true,
            pets_available: true,
            reputation_live: true,
            avatar_freedom: true,
            accessibility_features: true,
            community_count: 5,
        }
    }

    #[test]
    fn fully_ethical_configuration() {
        let modules = full_registry();
        let compliance = clean_compliance();
        let audit = EthicsAuditor::new().audit(&good_snapshot(&modules, &compliance));
        assert!(audit.fully_ethical(), "{:?}", audit.findings);
        assert!(audit.findings.is_empty());
        assert_eq!(audit.satisfied_up_to, Some(EthicsLayer::HumanExperience));
    }

    #[test]
    fn rights_failure_blocks_everything() {
        let modules = full_registry();
        let compliance = clean_compliance();
        let mut snap = good_snapshot(&modules, &compliance);
        snap.privacy_defaults_on = false;
        let audit = EthicsAuditor::new().audit(&snap);
        assert_eq!(audit.satisfied_up_to, None, "base layer gates the pyramid");
        assert!(!audit.fully_ethical());
    }

    #[test]
    fn effort_failure_caps_at_rights() {
        let modules = full_registry();
        let compliance = clean_compliance();
        let mut snap = good_snapshot(&modules, &compliance);
        snap.reputation_live = false;
        let audit = EthicsAuditor::new().audit(&snap);
        assert_eq!(audit.satisfied_up_to, Some(EthicsLayer::HumanRights));
    }

    #[test]
    fn experience_failure_caps_at_effort() {
        let modules = full_registry();
        let compliance = clean_compliance();
        let mut snap = good_snapshot(&modules, &compliance);
        snap.community_count = 1;
        let audit = EthicsAuditor::new().audit(&snap);
        assert_eq!(audit.satisfied_up_to, Some(EthicsLayer::HumanEffort));
        assert_eq!(audit.findings.len(), 1);
        assert_eq!(audit.findings[0].layer, EthicsLayer::HumanExperience);
    }

    #[test]
    fn opaque_module_is_rights_violation() {
        let mut modules = full_registry();
        let mut opaque = ModuleDescriptor::open(ModuleKind::Moderation, "blackbox");
        opaque.transparent = false;
        modules.install(opaque);
        let compliance = clean_compliance();
        let audit = EthicsAuditor::new().audit(&good_snapshot(&modules, &compliance));
        assert_eq!(audit.satisfied_up_to, None);
        assert!(audit
            .findings
            .iter()
            .any(|f| f.check.contains("transparent")));
    }

    #[test]
    fn scores_totals_stable() {
        let modules = full_registry();
        let compliance = clean_compliance();
        let audit = EthicsAuditor::new().audit(&good_snapshot(&modules, &compliance));
        let totals: Vec<usize> = audit.scores.iter().map(|(_, _, t)| *t).collect();
        assert_eq!(totals, vec![5, 4, 3]);
    }
}
