//! E2 — secondary avatars vs. behavioural linkage.
//!
//! Claim (§II-B): with secondary avatars "other avatars in the metaverse
//! cannot recognise the real owner […] and, therefore, cannot infer any
//! behavioural information about the users." The experiment shows the
//! claim holds *only when the clone's behaviour is decoupled*: a naive
//! clone is trivially linkable.

use metaverse_world::clones::{linkage_experiment, CloneStrategy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

/// Runs E2.
pub fn run(seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "linkage-attack accuracy vs clone strategy and population",
        &["population", "strategy", "linkage acc", "chance"],
    );

    for &population in &[10usize, 25, 50, 100] {
        for (label, strategy) in
            [("naive", CloneStrategy::Naive), ("randomized", CloneStrategy::Randomized)]
        {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ population as u64);
            let acc = linkage_experiment(population, 12, 200, strategy, &mut rng);
            table.row(vec![
                population.to_string(),
                label.to_string(),
                f3(acc),
                f3(1.0 / population as f64),
            ]);
        }
    }

    ExperimentResult {
        id: "E2".into(),
        title: "Secondary avatars (clones) vs behavioural linkage".into(),
        claim: "Secondary avatars prevent observers from inferring behavioural information \
                (§II-B)"
            .into(),
        tables: vec![table],
        notes: vec![
            "a clone that keeps its owner's habits is linked with high accuracy at every \
             population size — the paper's claim requires behaviour randomization, not just \
             a fresh handle"
                .into(),
            "randomized clones drop the attacker to near chance (1/N)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_beats_randomized_everywhere() {
        let result = run(7);
        let t = &result.tables[0];
        for pair in t.rows.chunks(2) {
            let naive: f64 = pair[0][2].parse().unwrap();
            let randomized: f64 = pair[1][2].parse().unwrap();
            assert!(naive > randomized, "{pair:?}");
            assert!(naive > 0.5);
        }
    }
}
