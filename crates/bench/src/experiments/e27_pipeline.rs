//! E27 — breaking the epoch barrier: pipelined pre-route, parallel
//! sealing, and dense-index hot paths, gated on byte-identical audits.
//!
//! Claim (§II / §VI): E22 measured ~1.0x parallel speedup beyond 2
//! shards — the sequential pre-route and the per-shard seal barrier
//! were the Amdahl walls. This experiment replays E21's seeded 120k-op
//! stream at 1, 2, 4, and 8 shards three times per shard count:
//!
//! * **sequential** — 1 worker, batched plan loop, sequential sealing
//!   (the E22 baseline);
//! * **parallel** — 1 worker per shard, batched plan loop (E22's
//!   parallel mode, the 0.94x-at-4-shards configuration);
//! * **pipelined** — 1 worker per shard, the plan loop *streaming* ops
//!   to the workers while they execute, with host-sized parallel
//!   sealing inside each shard's chain.
//!
//! Wall-clock columns are non-deterministic (they scale with the
//! host's cores and degrade gracefully to ~1.0x on a single-core
//! host); everything else — settlement ledger, conservation report,
//! DP-budget report, and the full causal trace stream — must be
//! byte-identical across all three modes at every shard count. That
//! identity is the deterministic half CI gates on.
//!
//! A second table isolates the seal barrier: one chain drains the same
//! mempool sequentially and with parallel seal workers, reporting
//! per-phase totals aggregated *explicitly* from the per-block
//! [`SealProfile`]s (`seal_all_profiled` returns one profile per
//! block, not pre-summed totals) and the head digest each drain ends
//! on.

use std::time::Instant;

use metaverse_gateway::router::{ConservationReport, GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{DriveReport, WorkloadConfig, WorkloadEngine};
use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::tx::{Transaction, TxPayload};

use crate::report::{ExperimentResult, Table};

/// Shard counts the workload is replayed at (same as E21/E22).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct users in the workload (each registers first).
const USERS: usize = 512;
/// Mixed ops generated after the registers.
const OPS: usize = 120_000;
/// Submissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2048;
/// Router trace-ring capacity for the traced identity runs.
const TRACE_CAPACITY: usize = 1 << 20;
/// Transactions submitted to the standalone seal-barrier drive.
const SEAL_TXS: usize = 20_000;
/// Mempool chunking for the seal-barrier drive.
const SEAL_MAX_TXS: usize = 64;

/// Which epoch configuration a replay runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// 1 worker, batched plan loop, sequential sealing.
    Sequential,
    /// 1 worker per shard, batched plan loop (E22's parallel mode).
    Parallel,
    /// 1 worker per shard, streaming plan loop, host-sized sealing.
    Pipelined,
}

/// One replay at a fixed shard count and mode.
struct Run {
    workers: usize,
    drive: DriveReport,
    conservation: ConservationReport,
    /// Full rendered settlement ledger — a byte-identity witness.
    ledger_debug: String,
    /// Full rendered DP-budget report — a byte-identity witness.
    dp_debug: String,
    elapsed_ns: u128,
}

/// All modes replayed at one shard count, plus the traced identity
/// runs' trace streams.
struct Cell {
    shards: usize,
    sequential: Run,
    parallel: Run,
    pipelined: Run,
    /// Ledger, conservation, DP report, and drive report identical
    /// across all three untraced modes, AND the traced sequential and
    /// traced pipelined runs produced byte-identical trace streams and
    /// audits.
    identical: bool,
    trace_fp_sequential: u64,
    trace_fp_pipelined: u64,
}

#[allow(clippy::too_many_arguments)]
fn replay(
    seed: u64,
    shards: usize,
    mode: Mode,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth: usize,
    trace_capacity: usize,
) -> (Run, String) {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let workers = match mode {
        Mode::Sequential => 1,
        Mode::Parallel | Mode::Pipelined => shards,
    };
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(workers)
            .pipeline(mode == Mode::Pipelined)
            // Host-sized seal workers only in pipelined mode, so the
            // other modes measure the legacy sequential seal barrier.
            .seal_workers(if mode == Mode::Pipelined { 0 } else { 1 })
            .tracing(trace_capacity)
            // Generous admission, as in E21/E22: this measures the
            // epoch pipeline, not the rate limiter.
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(depth)
            .build(),
    );
    let started = Instant::now();
    let drive = engine.drive(&mut router, per_epoch);
    let elapsed_ns = started.elapsed().as_nanos();
    let jsonl = if trace_capacity > 0 { router.trace_jsonl() } else { String::new() };
    let run = Run {
        workers: router.worker_threads(),
        conservation: router.conservation_report(),
        ledger_debug: format!("{:?}", router.settlement_ledger()),
        dp_debug: format!("{:?}", router.dp_budget_report()),
        drive,
        elapsed_ns,
    };
    (run, jsonl)
}

/// FNV-1a over a rendered witness: a short fingerprint for the tables
/// (equality is checked on the full strings, not the hash).
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn kops_per_sec(ops: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (ops as f64) / (elapsed_ns as f64 / 1e9) / 1e3
}

/// Two untraced audits byte-identical?
fn same_audit(a: &Run, b: &Run) -> bool {
    a.ledger_debug == b.ledger_debug
        && a.dp_debug == b.dp_debug
        && a.conservation == b.conservation
        && a.drive == b.drive
}

/// One standalone mempool drain measuring the seal barrier itself:
/// submits `txs` notes across four validators and drains with
/// `seal_workers` workers. Returns per-phase totals aggregated
/// explicitly from the per-block profiles, plus the final head digest
/// (the chain-identity witness).
struct SealDrive {
    workers: usize,
    blocks: usize,
    merkle_ns: u64,
    sign_ns: u64,
    append_ns: u64,
    elapsed_ns: u128,
    head_fp: u64,
}

fn seal_drive(seal_workers: usize, txs: usize, max_txs: usize, depth: usize) -> SealDrive {
    let mut chain = Chain::poa(
        &["v0", "v1", "v2", "v3"],
        ChainConfig {
            max_txs_per_block: max_txs,
            key_tree_depth: depth,
            seal_workers,
            ..ChainConfig::default()
        },
    );
    for i in 0..txs {
        chain
            .submit(Transaction::new(
                format!("user{}", i % 97),
                TxPayload::Note { text: format!("seal barrier tx {i}") },
            ))
            .expect("fresh notes never collide");
    }
    let started = Instant::now();
    let (blocks, profiles) = chain.seal_all_profiled().expect("mempool drains");
    let elapsed_ns = started.elapsed().as_nanos();
    chain.verify_integrity().expect("parallel drain must verify");
    // `seal_all_profiled` returns one profile PER BLOCK; the per-phase
    // totals below are aggregated here, explicitly.
    SealDrive {
        workers: match seal_workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        },
        blocks,
        merkle_ns: profiles.iter().map(|p| p.merkle_ns).sum(),
        sign_ns: profiles.iter().map(|p| p.sign_ns).sum(),
        append_ns: profiles.iter().map(|p| p.append_ns).sum(),
        elapsed_ns,
        head_fp: fingerprint(chain.head().id().as_bytes()),
    }
}

/// Runs E27 at the full committed size (E21's stream). Key-tree depth
/// scales down with shard count exactly as in E21/E22.
///
/// E27 replays the stream five times per shard count (three untraced
/// modes + two traced identity runs), so a debug build — which only
/// the `experiment_smoke` suite exercises — runs a sized-down stream;
/// every recorded number comes from the release binary.
pub fn run(seed: u64) -> ExperimentResult {
    if cfg!(debug_assertions) {
        return run_sized(seed, 48, 4_000, 256, 6, 1 << 17, 600);
    }
    run_with(seed, USERS, OPS, OPS_PER_EPOCH, TRACE_CAPACITY, SEAL_TXS, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E27 with explicit sizing (tests use a small stream, shallow
/// key trees, and a small seal drive).
pub fn run_sized(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    key_tree_depth: usize,
    trace_capacity: usize,
    seal_txs: usize,
) -> ExperimentResult {
    run_with(seed, users, ops, per_epoch, trace_capacity, seal_txs, |_| key_tree_depth)
}

#[allow(clippy::too_many_arguments)]
fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    trace_capacity: usize,
    seal_txs: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let cells: Vec<Cell> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let depth = depth_for(shards);
            let (sequential, _) =
                replay(seed, shards, Mode::Sequential, users, ops, per_epoch, depth, 0);
            let (parallel, _) =
                replay(seed, shards, Mode::Parallel, users, ops, per_epoch, depth, 0);
            let (pipelined, _) =
                replay(seed, shards, Mode::Pipelined, users, ops, per_epoch, depth, 0);
            // Traced identity runs: the unpipelined baseline vs the
            // fully pipelined path, trace stream compared byte-for-byte.
            let (t_seq, seq_jsonl) = replay(
                seed,
                shards,
                Mode::Sequential,
                users,
                ops,
                per_epoch,
                depth,
                trace_capacity,
            );
            let (t_pipe, pipe_jsonl) = replay(
                seed,
                shards,
                Mode::Pipelined,
                users,
                ops,
                per_epoch,
                depth,
                trace_capacity,
            );
            let identical = same_audit(&sequential, &parallel)
                && same_audit(&sequential, &pipelined)
                && same_audit(&t_seq, &t_pipe)
                && !pipe_jsonl.is_empty()
                && seq_jsonl == pipe_jsonl;
            Cell {
                shards,
                sequential,
                parallel,
                pipelined,
                identical,
                trace_fp_sequential: fingerprint(seq_jsonl.as_bytes()),
                trace_fp_pipelined: fingerprint(pipe_jsonl.as_bytes()),
            }
        })
        .collect();

    let mut throughput = Table::new(
        "one seeded op stream per shard count in three modes — sequential (1 worker, \
         batched), parallel (1 worker per shard, batched; E22's mode), pipelined (plan \
         loop streaming to workers + host-sized parallel sealing); ms / kops/s / speedup \
         are wall-clock, every other column is seed-deterministic",
        &[
            "shards", "workers", "seq ms", "par ms", "pipe ms", "par speedup",
            "pipe speedup", "pipe kops/s", "committed", "identical audit+trace",
        ],
    );
    for c in &cells {
        let speedup = |run: &Run| {
            if run.elapsed_ns > 0 {
                c.sequential.elapsed_ns as f64 / run.elapsed_ns as f64
            } else {
                1.0
            }
        };
        throughput.row(vec![
            c.shards.to_string(),
            c.pipelined.workers.to_string(),
            format!("{:.0}", c.sequential.elapsed_ns as f64 / 1e6),
            format!("{:.0}", c.parallel.elapsed_ns as f64 / 1e6),
            format!("{:.0}", c.pipelined.elapsed_ns as f64 / 1e6),
            format!("{:.2}x", speedup(&c.parallel)),
            format!("{:.2}x", speedup(&c.pipelined)),
            format!("{:.1}", kops_per_sec(c.pipelined.drive.accepted, c.pipelined.elapsed_ns)),
            c.pipelined.drive.committed.to_string(),
            c.identical.to_string(),
        ]);
    }

    let mut audit = Table::new(
        "the determinism gate: FNV-1a fingerprints over the full rendered settlement \
         ledger, DP-budget report, and merged JSONL trace stream, unpipelined baseline vs \
         pipelined (equality is checked on the full bytes; fingerprints are for reading)",
        &[
            "shards", "ledger fp seq", "ledger fp pipe", "dp fp seq", "dp fp pipe",
            "trace fp seq", "trace fp pipe", "identical", "conserved",
        ],
    );
    for c in &cells {
        audit.row(vec![
            c.shards.to_string(),
            format!("{:016x}", fingerprint(c.sequential.ledger_debug.as_bytes())),
            format!("{:016x}", fingerprint(c.pipelined.ledger_debug.as_bytes())),
            format!("{:016x}", fingerprint(c.sequential.dp_debug.as_bytes())),
            format!("{:016x}", fingerprint(c.pipelined.dp_debug.as_bytes())),
            format!("{:016x}", c.trace_fp_sequential),
            format!("{:016x}", c.trace_fp_pipelined),
            c.identical.to_string(),
            c.pipelined.conservation.conserved.to_string(),
        ]);
    }

    // The seal barrier in isolation: same mempool, sequential drain vs
    // host-sized parallel drain. Depth 9 holds 512 blocks per
    // validator; the drive needs ceil(seal_txs / SEAL_MAX_TXS) / 4.
    let seal_seq = seal_drive(1, seal_txs, SEAL_MAX_TXS, 9);
    let seal_par = seal_drive(0, seal_txs, SEAL_MAX_TXS, 9);
    let mut seal = Table::new(
        "the seal barrier in isolation: one mempool drained sequentially vs with \
         host-sized seal workers (4 validators); phase columns are per-block \
         SealProfiles aggregated explicitly — ns totals over every sealed block",
        &[
            "mode", "seal workers", "blocks", "merkle ms", "sign ms", "append ms",
            "wall ms", "head fp", "identical chain",
        ],
    );
    let chains_identical = seal_seq.head_fp == seal_par.head_fp;
    for (label, d) in [("sequential", &seal_seq), ("parallel", &seal_par)] {
        seal.row(vec![
            label.to_string(),
            d.workers.to_string(),
            d.blocks.to_string(),
            format!("{:.1}", d.merkle_ns as f64 / 1e6),
            format!("{:.1}", d.sign_ns as f64 / 1e6),
            format!("{:.1}", d.append_ns as f64 / 1e6),
            format!("{:.0}", d.elapsed_ns as f64 / 1e6),
            format!("{:016x}", d.head_fp),
            chains_identical.to_string(),
        ]);
    }

    let all_identical = cells.iter().all(|c| c.identical);
    let all_conserved = cells.iter().all(|c| {
        c.sequential.conservation.conserved
            && c.parallel.conservation.conserved
            && c.pipelined.conservation.conserved
    });
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let at4 = cells.iter().find(|c| c.shards == 4).expect("4 shards is in the sweep");
    let pipe_speedup_at4 =
        at4.sequential.elapsed_ns as f64 / at4.pipelined.elapsed_ns.max(1) as f64;
    let par_speedup_at4 =
        at4.sequential.elapsed_ns as f64 / at4.parallel.elapsed_ns.max(1) as f64;

    ExperimentResult {
        id: "E27".into(),
        title: "Pipelined epochs, parallel sealing, dense indexes: multi-core scaling with \
                byte-identical audits and traces"
            .into(),
        claim: "Streaming the pre-route plan loop to shard workers and parallelising the \
                seal barrier changes wall-clock only: the same seeded stream produces \
                byte-identical settlement ledgers, conservation reports, DP-budget \
                reports, and causal trace streams in every mode at every shard count — \
                the Amdahl walls E22 measured fall without giving up a single audit byte \
                (§II, §VI)"
            .into(),
        tables: vec![throughput, audit, seal],
        notes: vec![
            format!(
                "determinism gate: all three modes are {} at every shard count (full \
                 settlement ledger, conservation report, DP-budget report, drive report, \
                 and — between the traced baseline and traced pipelined runs — the merged \
                 JSONL trace stream, compared byte-for-byte), supply {} on every run, and \
                 the sequential and parallel seal drains end on {} chain head",
                if all_identical { "BYTE-IDENTICAL" } else { "DIVERGENT" },
                if all_conserved { "balanced exactly" } else { "FAILED to balance" },
                if chains_identical { "the identical" } else { "a DIVERGENT" },
            ),
            format!(
                "host has {host_threads} hardware thread(s) available to the worker pool; \
                 wall-clock speedup is bounded above by that number — the ≥2x-at-4-shards \
                 target needs a multi-core host, and on a single-core host the pipelined \
                 path degrades gracefully to ~1.0x (scheduling overhead only) while the \
                 determinism gate still holds",
            ),
            format!(
                "at 4 shards: batched parallel {par_speedup_at4:.2}x (E22 measured 0.94x \
                 here — the plan loop and seal barrier serialised the epoch), pipelined + \
                 parallel sealing {pipe_speedup_at4:.2}x over the sequential baseline",
            ),
            "seal table aggregates per-block SealProfiles explicitly (seal_all_profiled \
             returns one profile per block; nothing pre-sums them), so the phase totals \
             are auditable against the block count"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_produce_identical_audits_and_traces() {
        let result = run_sized(7, 32, 1_500, 256, 6, 1 << 16, 300);
        assert!(result.notes[0].contains("BYTE-IDENTICAL"), "{}", result.notes[0]);
        assert!(result.notes[0].contains("balanced exactly"), "{}", result.notes[0]);
        assert!(result.notes[0].contains("the identical chain head"), "{}", result.notes[0]);
        for row in &result.tables[1].rows {
            assert_eq!(row[1], row[2], "ledger fingerprints diverged: {row:?}");
            assert_eq!(row[3], row[4], "dp fingerprints diverged: {row:?}");
            assert_eq!(row[5], row[6], "trace fingerprints diverged: {row:?}");
            assert_eq!(row[7], "true");
            assert_eq!(row[8], "true");
        }
    }

    #[test]
    fn deterministic_columns_reproduce_for_a_seed() {
        let a = run_sized(11, 32, 1_500, 256, 6, 1 << 16, 300);
        let b = run_sized(11, 32, 1_500, 256, 6, 1 << 16, 300);
        // The audit table carries no wall-clock columns at all.
        assert_eq!(a.tables[1].rows, b.tables[1].rows);
    }
}
