//! E22 — parallel per-shard epoch execution: speedup and determinism.
//!
//! Claim (§II / §VI): the paper's modular architecture is worth having
//! only if governance modules can scale *without* giving up
//! auditability. PR 4 made the gateway's per-shard epoch phase run on
//! scoped worker threads; this experiment replays E21's seeded 120k-op
//! stream at 1, 2, 4, and 8 shards twice per shard count — once with
//! the per-shard phase pinned to one worker (sequential) and once with
//! one worker per shard (parallel) — and measures:
//!
//! * **throughput / speedup** — wall-clock ops/s for each mode and the
//!   parallel-over-sequential ratio (non-deterministic; scales with the
//!   host's cores, degrades to ~1.0x on a single-core host);
//! * **identical audit** — the settlement ledger (every entry, in
//!   order, with outcomes, epochs, and requeue counts) and the
//!   conservation report must be *byte-identical* between the
//!   sequential and parallel runs at every shard count. This is the
//!   deterministic half of the experiment and the part CI gates on.

use std::time::Instant;

use metaverse_gateway::router::{ConservationReport, GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{DriveReport, WorkloadConfig, WorkloadEngine};

use crate::report::{ExperimentResult, Table};

/// Shard counts the workload is replayed at (same as E21).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct users in the workload (each registers first).
const USERS: usize = 512;
/// Mixed ops generated after the registers.
const OPS: usize = 120_000;
/// Submissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2048;

/// One replay at a fixed shard count and worker count.
struct Run {
    workers: usize,
    drive: DriveReport,
    conservation: ConservationReport,
    /// Full rendered settlement ledger — the byte-identity witness.
    ledger_debug: String,
    elapsed_ns: u128,
}

/// Sequential + parallel replays of the same stream at one shard count.
struct Pair {
    shards: usize,
    sequential: Run,
    parallel: Run,
    /// Ledger AND conservation report byte-identical across modes.
    identical: bool,
}

fn replay(
    seed: u64,
    shards: usize,
    workers: usize,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth: usize,
) -> Run {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(workers)
            // Generous admission, as in E21: this measures the epoch
            // pipeline, not the rate limiter.
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(depth)
            .build(),
    );
    let started = Instant::now();
    let drive = engine.drive(&mut router, per_epoch);
    let elapsed_ns = started.elapsed().as_nanos();
    Run {
        workers: router.worker_threads(),
        conservation: router.conservation_report(),
        ledger_debug: format!("{:?}", router.settlement_ledger()),
        drive,
        elapsed_ns,
    }
}

/// FNV-1a over the rendered ledger: a short fingerprint for the tables
/// (equality is checked on the full strings, not the hash).
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn kops_per_sec(ops: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (ops as f64) / (elapsed_ns as f64 / 1e9) / 1e3
}

/// Runs E22 at the full committed size (E21's stream). Key-tree depth
/// scales down with shard count exactly as in E21.
pub fn run(seed: u64) -> ExperimentResult {
    run_with(seed, USERS, OPS, OPS_PER_EPOCH, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E22 with explicit sizing (tests use a small stream and shallow
/// key trees to keep shard setup cheap).
pub fn run_sized(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    key_tree_depth: usize,
) -> ExperimentResult {
    run_with(seed, users, ops, per_epoch, |_| key_tree_depth)
}

fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let pairs: Vec<Pair> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let depth = depth_for(shards);
            let sequential = replay(seed, shards, 1, users, ops, per_epoch, depth);
            let parallel = replay(seed, shards, shards, users, ops, per_epoch, depth);
            let identical = sequential.ledger_debug == parallel.ledger_debug
                && sequential.conservation == parallel.conservation
                && sequential.drive == parallel.drive;
            Pair { shards, sequential, parallel, identical }
        })
        .collect();

    let mut throughput = Table::new(
        "one seeded op stream per shard count, sequential (1 worker) vs parallel (1 worker \
         per shard); ms and kops/s are wall-clock, every other column is seed-deterministic",
        &[
            "shards", "workers", "seq ms", "par ms", "speedup", "seq kops/s", "par kops/s",
            "committed", "identical audit",
        ],
    );
    for p in &pairs {
        let speedup = if p.parallel.elapsed_ns > 0 {
            p.sequential.elapsed_ns as f64 / p.parallel.elapsed_ns as f64
        } else {
            1.0
        };
        throughput.row(vec![
            p.shards.to_string(),
            p.parallel.workers.to_string(),
            format!("{:.0}", p.sequential.elapsed_ns as f64 / 1e6),
            format!("{:.0}", p.parallel.elapsed_ns as f64 / 1e6),
            format!("{speedup:.2}x"),
            format!("{:.1}", kops_per_sec(p.sequential.drive.accepted, p.sequential.elapsed_ns)),
            format!("{:.1}", kops_per_sec(p.parallel.drive.accepted, p.parallel.elapsed_ns)),
            p.parallel.drive.committed.to_string(),
            p.identical.to_string(),
        ]);
    }

    let mut audit = Table::new(
        "the determinism gate: settlement-ledger fingerprints (FNV-1a over the full \
         rendered ledger) and conservation, sequential vs parallel",
        &[
            "shards", "seq ledger fp", "par ledger fp", "identical", "minted tokens",
            "in wallets", "in escrow", "conserved",
        ],
    );
    for p in &pairs {
        let c = &p.parallel.conservation;
        audit.row(vec![
            p.shards.to_string(),
            format!("{:016x}", fingerprint(p.sequential.ledger_debug.as_bytes())),
            format!("{:016x}", fingerprint(p.parallel.ledger_debug.as_bytes())),
            p.identical.to_string(),
            c.tokens_minted.to_string(),
            c.tokens_on_shards.to_string(),
            c.tokens_in_flight.to_string(),
            c.conserved.to_string(),
        ]);
    }

    let all_identical = pairs.iter().all(|p| p.identical);
    let all_conserved = pairs
        .iter()
        .all(|p| p.sequential.conservation.conserved && p.parallel.conservation.conserved);
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let best = pairs
        .iter()
        .map(|p| {
            (p.shards, p.sequential.elapsed_ns as f64 / p.parallel.elapsed_ns.max(1) as f64)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("shard counts are non-empty");

    ExperimentResult {
        id: "E22".into(),
        title: "Parallel per-shard epochs: wall-clock scaling with a byte-identical audit"
            .into(),
        claim: "Running each shard's epoch slice on its own worker thread changes wall-clock \
                only: the same seeded stream produces byte-identical settlement ledgers and \
                conservation reports at 1 worker and N workers, at every shard count — \
                auditability survives parallelism (§II, §VI)"
            .into(),
        tables: vec![throughput, audit],
        notes: vec![
            format!(
                "determinism gate: sequential and parallel runs are {} at every shard count \
                 (full settlement ledger, conservation report, and drive report compared \
                 byte-for-byte), and supply {} on every run",
                if all_identical { "BYTE-IDENTICAL" } else { "DIVERGENT" },
                if all_conserved { "balanced exactly" } else { "FAILED to balance" },
            ),
            format!(
                "host has {host_threads} hardware thread(s) available to the worker pool; \
                 parallel speedup is bounded above by that number — on a single-core host \
                 the parallel path degrades gracefully to ~1.0x (scheduling overhead only) \
                 while the determinism gate still holds",
            ),
            format!(
                "best observed speedup: {:.2}x at {} shards with one worker per shard; \
                 the sequential baseline runs the identical pre-route/merge pipeline with \
                 the fan-out pinned to the caller's thread, so the comparison isolates \
                 thread-level parallelism, not a code-path change",
                best.1, best.0,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_audits_are_identical() {
        let result = run_sized(7, 48, 3_000, 256, 6);
        assert!(result.notes[0].contains("BYTE-IDENTICAL"), "{}", result.notes[0]);
        assert!(result.notes[0].contains("balanced exactly"), "{}", result.notes[0]);
        for row in &result.tables[1].rows {
            assert_eq!(row[1], row[2], "ledger fingerprints diverged: {row:?}");
            assert_eq!(row[3], "true");
            assert_eq!(row[7], "true");
        }
    }

    #[test]
    fn deterministic_columns_reproduce_for_a_seed() {
        let a = run_sized(11, 48, 3_000, 256, 6);
        let b = run_sized(11, 48, 3_000, 256, 6);
        // Audit table has no wall-clock columns at all.
        assert_eq!(a.tables[1].rows, b.tables[1].rows);
        // Throughput table: committed + identical-audit columns.
        let det = |r: &ExperimentResult| -> Vec<Vec<String>> {
            r.tables[0].rows.iter().map(|row| vec![row[0].clone(), row[7].clone(), row[8].clone()]).collect()
        };
        assert_eq!(det(&a), det(&b));
    }
}
