//! E19 — fault injection and graceful module degradation.
//!
//! Claim (§IV-C): the modular framework's modules "can take independent
//! decisions … but are still connected to other decision modules,
//! resources, and policies" — which raises the question the paper never
//! tests: what happens to governance when a module *fails*? This
//! experiment injects deterministic fault schedules (module crashes and
//! stalls, a misbehaving PoA validator) into two otherwise identical
//! platforms: one with the resilience fabric on (fail-closed fallbacks,
//! circuit breakers, queue-and-hold moderation, commit retries) and one
//! naive baseline whose faulted modules fail open or silently lose
//! work. Identical fault plans and workloads, measurably different
//! outcomes: epochs survived, governance-decision error, adjudications
//! lost, and recovery time — the last read *from the ledger itself*,
//! since every health transition is recorded on-chain.

use metaverse_core::platform::MetaversePlatform;
use metaverse_core::resilience::ResilienceConfig;
use metaverse_core::{CoreError, ReviewRequest};
use metaverse_ledger::chain::ChainConfig;
use metaverse_ledger::tx::TxPayload;
use metaverse_resilience::FaultPlan;

use crate::report::{f3, ExperimentResult, Table};

const HORIZON: u64 = 1000;
const EPOCH: u64 = 100;
const CITIZENS: [&str; 6] = ["alice", "bob", "carol", "dave", "erin", "frank"];
const TROLLS: [&str; 4] = ["troll-0", "troll-1", "troll-2", "troll-3"];
const FAULT_MODULES: [&str; 4] = ["moderation", "privacy", "decision-making", "assets"];

/// Everything one simulated platform run is scored on.
#[derive(Debug, Default)]
struct Outcome {
    commits_ok: u64,
    commits_aborted: u64,
    proposals_closed: u64,
    mis_decided: u64,
    reports_issued: u64,
    adjudicated: u64,
    still_deferred: u64,
    zombie_ops: u64,
    fallback_denials: u64,
    deferred: u64,
    replayed: u64,
    breaker_opens: u64,
    health_txs: u64,
    mean_recovery: Option<f64>,
}

impl Outcome {
    fn survival_pct(&self) -> f64 {
        let attempts = self.commits_ok + self.commits_aborted;
        if attempts == 0 {
            return 100.0;
        }
        100.0 * self.commits_ok as f64 / attempts as f64
    }

    fn lost_adjudications(&self) -> u64 {
        self.reports_issued - self.adjudicated - self.still_deferred
    }
}

/// A ballot still waiting to be accepted by the decision-making module.
struct PendingVote {
    scope: &'static str,
    voter: &'static str,
    id: metaverse_dao::proposal::ProposalId,
}

fn build_platform(resilient: bool) -> MetaversePlatform {
    let mut p = MetaversePlatform::builder()
        .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
        .validators(["validator-0"])
        .resilience(ResilienceConfig { enabled: resilient, ..ResilienceConfig::default() })
        .build();
    for u in CITIZENS.iter().chain(TROLLS.iter()) {
        p.register_user(u).expect("fresh platform accepts every user");
    }
    // Pre-approve the one collection purpose the workload configures, so
    // a refusal during the run is attributable to the fault fabric, not
    // the review board.
    p.review_collection_purpose(&ReviewRequest {
        collector: "render-svc".into(),
        sensor: metaverse_ledger::audit::SensorClass::Gaze,
        purpose: "foveation".into(),
        justification: "render quality".into(),
    });
    p
}

/// Reads mean failed→healthy recovery time off the sealed chain.
fn mean_recovery_from_ledger(p: &MetaversePlatform) -> Option<f64> {
    let mut failed_at: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut durations = Vec::new();
    for tx in p.chain().iter_txs() {
        if let TxPayload::HealthTransition { module, to, tick, .. } = &tx.payload {
            match to.as_str() {
                "failed" => {
                    failed_at.entry(module.clone()).or_insert(*tick);
                }
                "healthy" => {
                    if let Some(start) = failed_at.remove(module) {
                        durations.push(tick.saturating_sub(start) as f64);
                    }
                }
                _ => {}
            }
        }
    }
    if durations.is_empty() {
        None
    } else {
        Some(durations.iter().sum::<f64>() / durations.len() as f64)
    }
}

/// Drives one platform through the scripted workload under `plan`.
fn simulate(plan: FaultPlan, resilient: bool) -> Outcome {
    let mut p = build_platform(resilient);
    p.install_fault_plan(plan);
    let mut out = Outcome::default();

    let mut pending_votes: Vec<PendingVote> = Vec::new();
    // (id, opened_at) pairs awaiting closure once their window ends.
    let mut open_proposals: Vec<(metaverse_dao::proposal::ProposalId, u64)> = Vec::new();
    let mut pending_proposal: Option<&'static str> = None;
    let mut epoch_index = 0;

    while p.tick() < HORIZON {
        let t = p.tick();

        // Epoch start: one unanimous-support proposal.
        if t.is_multiple_of(EPOCH) {
            pending_proposal = Some(CITIZENS[(t / EPOCH) as usize % CITIZENS.len()]);
        }
        if let Some(proposer) = pending_proposal {
            // On Err the decision-making module is down: retry next tick.
            if let Ok(id) = p.propose("root", proposer, "fund the commons") {
                pending_proposal = None;
                open_proposals.push((id, t));
                for voter in CITIZENS.iter().chain(TROLLS.iter()) {
                    pending_votes.push(PendingVote { scope: "root", voter, id });
                }
            }
        }

        // Ballots retry every tick until the module accepts them (the
        // naive platform "accepts" zombie ballots instantly — and loses
        // them).
        pending_votes.retain(|v| match p.vote(v.scope, v.voter, v.id, true) {
            Ok(()) => false,
            Err(CoreError::ModuleUnavailable { .. }) => true,
            Err(_) => false, // voting window closed: the ballot is forfeit
        });

        // Moderation: a report every 10 ticks.
        if t.is_multiple_of(10) {
            let i = (t / 10) as usize;
            let rater = CITIZENS[i % CITIZENS.len()];
            let subject = TROLLS[i % TROLLS.len()];
            if p.report(rater, subject).is_ok() {
                out.reports_issued += 1;
            }
        }
        // Reputation: an endorsement every 7 ticks.
        if t.is_multiple_of(7) {
            let i = (t / 7) as usize;
            let _ = p.endorse(CITIZENS[i % CITIZENS.len()], CITIZENS[(i + 1) % CITIZENS.len()]);
        }
        // Privacy: a flow (re)configuration every 25 ticks.
        if t.is_multiple_of(25) {
            let user = CITIZENS[(t / 25) as usize % CITIZENS.len()];
            let _ = p.configure_flow(
                user,
                metaverse_ledger::audit::SensorClass::Gaze,
                "render-svc",
                "foveation",
            );
        }
        // Assets: a mint-and-list every 50 ticks.
        if t.is_multiple_of(50) {
            let creator = CITIZENS[(t / 50) as usize % CITIZENS.len()];
            if let Ok(id) =
                p.mint_asset(creator, &format!("meta://art/{t}"), b"pixels", 0.8)
            {
                let _ = p.list_asset(creator, id, 100);
            }
        }

        p.advance_ticks(1);

        // Epoch end: close expired proposals, then commit.
        if p.tick().is_multiple_of(EPOCH) {
            epoch_index += 1;
            let now = p.tick();
            let mut still_open = Vec::new();
            for (id, opened_at) in open_proposals.drain(..) {
                if now < opened_at + EPOCH {
                    still_open.push((id, opened_at));
                    continue;
                }
                match p.close_proposal("root", id) {
                    Ok((accepted, _tally)) => {
                        out.proposals_closed += 1;
                        if !accepted {
                            out.mis_decided += 1;
                        }
                        pending_votes.retain(|v| v.id != id);
                    }
                    Err(_) => still_open.push((id, opened_at)),
                }
            }
            open_proposals = still_open;
            match p.commit_epoch() {
                Ok(_) => out.commits_ok += 1,
                Err(_) => out.commits_aborted += 1,
            }
        }
        // A resilient commit can spend many logical ticks waiting out a
        // rogue validator; the loop condition handles the jump.
        if epoch_index > 2 * (HORIZON / EPOCH) {
            break; // safety net; never hit with sane plans
        }
    }

    // Final epoch: flush whatever the run left behind.
    match p.commit_epoch() {
        Ok(_) => out.commits_ok += 1,
        Err(_) => out.commits_aborted += 1,
    }

    let stats = p.resilience_stats();
    out.zombie_ops = stats.zombie_ops;
    out.fallback_denials = stats.fallback_denials;
    out.deferred = stats.deferred_reports;
    out.replayed = stats.replayed_reports;
    out.breaker_opens = stats.breaker_opens;
    out.still_deferred = p.held_report_count() as u64;
    out.adjudicated = p
        .chain()
        .iter_txs()
        .filter(|t| matches!(t.payload, TxPayload::ModerationAction { .. }))
        .count() as u64;
    out.health_txs = p
        .chain()
        .iter_txs()
        .filter(|t| matches!(t.payload, TxPayload::HealthTransition { .. }))
        .count() as u64;
    out.mean_recovery = mean_recovery_from_ledger(&p);
    p.verify_ledger().expect("chain stays verifiable under faults");
    out
}

/// Runs E19.
pub fn run(seed: u64) -> ExperimentResult {
    let mut survival = Table::new(
        "epoch survival and governance error vs fault intensity (1000 ticks, 100-tick epochs)",
        &[
            "faults", "mode", "commits", "aborted", "survival", "proposals", "mis-decided",
            "reports", "adjudicated", "lost", "zombie ops",
        ],
    );
    let mut machinery = Table::new(
        "degradation machinery, resilient mode (recovery measured from on-chain health records)",
        &["faults", "denials", "deferred", "replayed", "breaker opens", "health txs", "mean recovery"],
    );

    let mut resilient_min_survival = 100.0f64;
    let mut baseline_misgoverned = 0u64;
    for &faults in &[0usize, 2, 4, 8] {
        let plan = || {
            FaultPlan::random(
                seed.wrapping_add(faults as u64 * 7919),
                HORIZON,
                faults,
                &FAULT_MODULES,
                &["validator-0"],
            )
        };
        for (mode, resilient) in [("resilient", true), ("baseline", false)] {
            let out = simulate(plan(), resilient);
            survival.row(vec![
                faults.to_string(),
                mode.into(),
                out.commits_ok.to_string(),
                out.commits_aborted.to_string(),
                format!("{:.0}%", out.survival_pct()),
                out.proposals_closed.to_string(),
                out.mis_decided.to_string(),
                out.reports_issued.to_string(),
                out.adjudicated.to_string(),
                out.lost_adjudications().to_string(),
                out.zombie_ops.to_string(),
            ]);
            if resilient {
                resilient_min_survival = resilient_min_survival.min(out.survival_pct());
                machinery.row(vec![
                    faults.to_string(),
                    out.fallback_denials.to_string(),
                    out.deferred.to_string(),
                    out.replayed.to_string(),
                    out.breaker_opens.to_string(),
                    out.health_txs.to_string(),
                    out.mean_recovery.map(f3).unwrap_or_else(|| "-".into()),
                ]);
            } else {
                baseline_misgoverned +=
                    out.commits_aborted + out.mis_decided + out.lost_adjudications();
            }
        }
    }

    ExperimentResult {
        id: "E19".into(),
        title: "Fault injection and graceful module degradation".into(),
        claim: "A modular platform must degrade gracefully: faulted modules fail closed, \
                lose no adjudications, and leave an auditable health trail (§IV-C)"
            .into(),
        tables: vec![survival, machinery],
        notes: vec![
            format!(
                "resilient worst-case epoch survival {resilient_min_survival:.0}% (acceptance \
                 floor 95%); the baseline accumulated {baseline_misgoverned} mis-governed \
                 outcomes (aborted epochs + mis-decided proposals + lost adjudications) over \
                 the same fault plans"
            ),
            "every breaker transition is a HealthTransition transaction, so recovery time is \
             computed from the sealed chain itself — outages are auditable after the fact"
                .into(),
            "fail-closed beats fail-open: the resilient platform refuses work it cannot govern \
             (denials) and replays held moderation reports on recovery, while the baseline's \
             zombie modules answer with fail-open flows, lost ballots, and unrecorded warnings"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_the_seed() {
        let a = run(7);
        let b = run(7);
        assert_eq!(a.tables[0].rows, b.tables[0].rows);
        assert_eq!(a.tables[1].rows, b.tables[1].rows);
        let c = run(8);
        assert_ne!(a.tables[0].rows, c.tables[0].rows, "seed changes the fault plans");
    }

    #[test]
    fn resilient_survives_baseline_misgoverns() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        assert_eq!(rows.len(), 8, "4 intensities x 2 modes");
        let num = |row: &Vec<String>, col: usize| row[col].parse::<u64>().unwrap();
        let mut baseline_errors = 0;
        for pair in rows.chunks(2) {
            let (res, base) = (&pair[0], &pair[1]);
            assert_eq!(res[1], "resilient");
            assert_eq!(base[1], "baseline");
            // Acceptance: resilient commits never abort and no
            // adjudication is ever lost, at any intensity.
            assert_eq!(num(res, 3), 0, "resilient aborted an epoch: {res:?}");
            assert_eq!(num(res, 9), 0, "resilient lost adjudications: {res:?}");
            assert_eq!(num(res, 10), 0, "resilient never serves zombie ops");
            baseline_errors += num(base, 3) + num(base, 6) + num(base, 9);
        }
        assert!(baseline_errors > 0, "the naive baseline must visibly mis-govern");
        // Zero faults: the two modes are indistinguishable.
        let (res0, base0) = (&rows[0], &rows[1]);
        assert_eq!(res0[2..], base0[2..], "no faults, no difference");
    }

    #[test]
    fn recovery_measured_from_ledger_at_high_intensity() {
        let result = run(7);
        let machinery = &result.tables[1].rows;
        assert_eq!(machinery.len(), 4);
        // At the highest intensity the fabric visibly worked: breakers
        // opened, health transitions were sealed on-chain, and a
        // failed→healthy recovery is measurable from the chain.
        let hottest = &machinery[3];
        assert!(hottest[4].parse::<u64>().unwrap() > 0, "breakers opened: {hottest:?}");
        assert!(hottest[5].parse::<u64>().unwrap() > 0, "health txs sealed: {hottest:?}");
    }
}
