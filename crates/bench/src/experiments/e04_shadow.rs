//! E4 — shadow avatars in co-located multi-user VR.
//!
//! Claim (§II-C, citing Langbehn et al.): visualising co-located users
//! as shadow avatars avoids collisions in multi-user VR.

use metaverse_safety::room::PhysicalRoom;
use metaverse_safety::shadow::{run_shadow_sim, ShadowConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

/// Runs E4.
pub fn run(seed: u64) -> ExperimentResult {
    let room = PhysicalRoom::empty(6.0, 6.0);
    let mut table = Table::new(
        "user–user collisions per 100 m, 6×6 m room, 150 m walked each",
        &["users", "shadows", "collisions", "per 100 m"],
    );

    for &users in &[2usize, 3, 4, 5] {
        for shadows in [false, true] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ users as u64);
            let report = run_shadow_sim(
                &room,
                &ShadowConfig { users, shadows_enabled: shadows, ..ShadowConfig::default() },
                &mut rng,
            );
            table.row(vec![
                users.to_string(),
                if shadows { "on" } else { "off" }.to_string(),
                report.person_collisions.to_string(),
                f3(report.collisions_per_100m),
            ]);
        }
    }

    ExperimentResult {
        id: "E4".into(),
        title: "Shadow avatars vs co-located collisions".into(),
        claim: "Shadow avatars avoid collisions of physically co-located users (§II-C)".into(),
        tables: vec![table],
        notes: vec![
            "at every density, rendering co-located users as shadow avatars cuts the \
             user–user collision rate; the baseline grows with density"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadows_help_at_every_density() {
        let result = run(7);
        for pair in result.tables[0].rows.chunks(2) {
            let off: f64 = pair[0][3].parse().unwrap();
            let on: f64 = pair[1][3].parse().unwrap();
            assert!(on < off, "shadows must reduce collisions: {pair:?}");
        }
    }
}
