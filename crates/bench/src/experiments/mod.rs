//! One module per experiment; see DESIGN.md §2 for the index.

pub mod e01_pets;
pub mod e02_clones;
pub mod e03_bubbles;
pub mod e04_shadow;
pub mod e05_redirect;
pub mod e06_audit;
pub mod e07_dao_scale;
pub mod e08_moderation;
pub mod e09_incentives;
pub mod e10_nft_policies;
pub mod e11_misinfo;
pub mod e12_jurisdiction;
pub mod e13_twins;
pub mod e14_ethics_audit;
pub mod e15_bystanders;
pub mod e16_juries;
pub mod e17_accessibility;
pub mod e18_sybil;
pub mod e19_degradation;
pub mod e20_observability;
pub mod e21_gateway;
pub mod e22_parallel;
pub mod e23_tracing;
pub mod e24_replication;
pub mod e25_net;
pub mod e26_governance;
pub mod e27_pipeline;
pub mod e28_ops;

use crate::report::ExperimentResult;

/// Runs the direct-call experiments (E1–E19) with the given seed, in id
/// order. These are pure functions of the seed and cheap enough to
/// replay several times inside one test; the gateway-scale experiments
/// (E20–E28) replay a large op stream per cell and have their own
/// dedicated re-run/byte-identity gates (`gateway/tests/determinism.rs`,
/// `gateway/tests/replication_determinism.rs`, and each experiment's
/// shape tests), so the smoke suite reruns only this subset.
pub fn run_direct(seed: u64) -> Vec<ExperimentResult> {
    vec![
        e01_pets::run(seed),
        e02_clones::run(seed),
        e03_bubbles::run(seed),
        e04_shadow::run(seed),
        e05_redirect::run(seed),
        e06_audit::run(seed),
        e07_dao_scale::run(seed),
        e08_moderation::run(seed),
        e09_incentives::run(seed),
        e10_nft_policies::run(seed),
        e11_misinfo::run(seed),
        e12_jurisdiction::run(seed),
        e13_twins::run(seed),
        e14_ethics_audit::run(seed),
        e15_bystanders::run(seed),
        e16_juries::run(seed),
        e17_accessibility::run(seed),
        e18_sybil::run(seed),
        e19_degradation::run(seed),
    ]
}

/// Runs every experiment with the given seed, in id order.
pub fn run_all(seed: u64) -> Vec<ExperimentResult> {
    let mut results = run_direct(seed);
    results.extend([
        e20_observability::run(seed),
        e21_gateway::run(seed),
        e22_parallel::run(seed),
        e23_tracing::run(seed),
        e24_replication::run(seed),
        e25_net::run(seed),
        e26_governance::run(seed),
        e27_pipeline::run(seed),
        e28_ops::run(seed),
    ]);
    results
}
