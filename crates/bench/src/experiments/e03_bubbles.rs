//! E3 — privacy bubbles vs. harassment incidents.
//!
//! Claim (§II-B, §II-D): privacy bubbles restrict unwanted interaction,
//! but "users are either not fully aware of them or do not know how to
//! use them". The experiment sweeps bubble *awareness* (the fraction of
//! users who actually enable the tool) and reports delivered-incident
//! rates, separating protected from unprotected victims.

use metaverse_world::harassment::{run_harassment, HarassmentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

/// Runs E3.
pub fn run(seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "harassment incidents vs bubble awareness (50 victims, 5 harassers, 200 ticks)",
        &["awareness", "attempts", "delivered", "blocked", "per victim", "per unprotected"],
    );

    for &awareness in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let report = run_harassment(
            &HarassmentConfig { bubble_awareness: awareness, ..HarassmentConfig::default() },
            &mut rng,
        );
        table.row(vec![
            format!("{awareness:.2}"),
            report.attempts.to_string(),
            report.delivered.to_string(),
            report.blocked.to_string(),
            f3(report.incidents_per_victim),
            f3(report.incidents_per_unprotected),
        ]);
    }

    // Ablation: undersized bubble radius leaks.
    let mut radius_table = Table::new(
        "full awareness, bubble radius sweep (interaction range = 3.0)",
        &["radius", "delivered", "blocked"],
    );
    for &radius in &[0.5, 1.5, 2.5, 3.5, 4.5] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let report = run_harassment(
            &HarassmentConfig {
                bubble_awareness: 1.0,
                bubble_radius: radius,
                ..HarassmentConfig::default()
            },
            &mut rng,
        );
        radius_table.row(vec![
            format!("{radius:.1}"),
            report.delivered.to_string(),
            report.blocked.to_string(),
        ]);
    }

    ExperimentResult {
        id: "E3".into(),
        title: "Privacy bubbles vs harassment".into(),
        claim: "Privacy bubbles restrict unwanted access; poor awareness limits their value \
                (§II-B, §II-D)"
            .into(),
        tables: vec![table, radius_table],
        notes: vec![
            "delivered incidents fall monotonically with awareness; protected victims see \
             zero incidents when the bubble covers the interaction range"
                .into(),
            "a bubble smaller than the interaction range leaks approaches from just outside \
             it — tool *configuration*, not just adoption, matters"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awareness_monotone() {
        let result = run(7);
        let per_victim: Vec<f64> =
            result.tables[0].rows.iter().map(|r| r[4].parse().unwrap()).collect();
        for w in per_victim.windows(2) {
            assert!(w[1] <= w[0], "{per_victim:?}");
        }
        assert_eq!(per_victim.last().copied().unwrap(), 0.0);
    }

    #[test]
    fn radius_sweep_monotone_blocking() {
        let result = run(7);
        let delivered: Vec<u64> =
            result.tables[1].rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(delivered[0] > 0, "tiny bubble leaks");
        assert_eq!(*delivered.last().unwrap(), 0, "oversized bubble seals");
    }
}
