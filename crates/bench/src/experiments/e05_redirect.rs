//! E5 — redirected walking via artificial potential fields.
//!
//! Claim (§II-C, citing Bachmann et al.): "Redirecting users' walking
//! […] reduces the collision with physical objects in their
//! surroundings." Figure of merit: resets per 100 m walked, with a gain
//! ablation (DESIGN.md §3) and a furnished-room condition.

use metaverse_safety::redirect::{simulate_walk, RedirectionConfig};
use metaverse_safety::room::PhysicalRoom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const DISTANCE: f64 = 400.0;

/// Runs E5.
pub fn run(seed: u64) -> ExperimentResult {
    let empty = PhysicalRoom::empty(5.0, 5.0);
    let furnished = {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        PhysicalRoom::furnished(5.0, 5.0, 3, &mut rng)
    };

    let mut table = Table::new(
        "resets per 100 m, 5×5 m room, 400 m walked",
        &["room", "redirection", "gain", "resets", "resets/100m", "collisions"],
    );

    for (room_label, room) in [("empty", &empty), ("furnished(3)", &furnished)] {
        // Baseline: no redirection.
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let off = simulate_walk(
            room,
            &RedirectionConfig { enabled: false, ..RedirectionConfig::default() },
            DISTANCE,
            &mut rng,
        );
        table.row(vec![
            room_label.into(),
            "off".into(),
            "-".into(),
            off.resets.to_string(),
            f3(off.resets_per_100m),
            off.collisions.to_string(),
        ]);
        // Gain sweep.
        for &gain in &[0.1, 0.25, 0.5, 1.0] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
            let out = simulate_walk(
                room,
                &RedirectionConfig { enabled: true, gain, ..RedirectionConfig::default() },
                DISTANCE,
                &mut rng,
            );
            table.row(vec![
                room_label.into(),
                "apf".into(),
                format!("{gain:.2}"),
                out.resets.to_string(),
                f3(out.resets_per_100m),
                out.collisions.to_string(),
            ]);
        }
    }

    ExperimentResult {
        id: "E5".into(),
        title: "APF redirected walking vs resets".into(),
        claim: "Redirected walking reduces collisions with physical objects (§II-C)".into(),
        tables: vec![table],
        notes: vec![
            "APF steering cuts resets per 100 m versus the 1:1 baseline in both rooms; \
             higher (less perceptually safe) gains help more — the gain ablation of \
             DESIGN.md §3"
                .into(),
            "collisions stay at or near zero throughout: the reset mechanism is the safety \
             backstop, redirection only reduces how often it must fire (a rare fast approach \
             in the furnished room can still make contact before the reset triggers)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirection_beats_baseline_in_both_rooms() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        // Rows 0..5 = empty (off + 4 gains), 5..10 = furnished.
        for block in rows.chunks(5) {
            let baseline: f64 = block[0][4].parse().unwrap();
            let best: f64 = block[1..]
                .iter()
                .map(|r| r[4].parse::<f64>().unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(best < baseline, "APF should beat baseline: {block:?}");
        }
    }

    #[test]
    fn collisions_stay_near_zero() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        // Empty room: no obstacle can be approached faster than the
        // reset backstop reacts, so collisions are structurally zero.
        for row in &rows[..5] {
            assert_eq!(row[5], "0", "empty room must be collision-free: {row:?}");
        }
        // Furnished room: a fast approach can still make contact before
        // the reset fires, but it must stay rare over 400 m, and APF
        // steering must never collide more than the 1:1 baseline.
        let collisions =
            |row: &Vec<String>| row[5].parse::<u64>().expect("collision count");
        let baseline = collisions(&rows[5]);
        for row in &rows[5..] {
            assert!(collisions(row) <= 2, "collisions must stay rare: {row:?}");
            assert!(
                collisions(row) <= baseline.max(1),
                "redirection should not collide more than baseline: {row:?}"
            );
        }
    }
}
