//! E15 — bystander protection in spatial scans.
//!
//! Claim (§II-A): XR sensor scans "can collect information that might be
//! sensible to users and bystanders that are in the coverage zone of the
//! monitoring". The experiment scrubs spatial scans under three policies
//! and reports how precisely an observer can still localise the
//! bystanders, against how much occupancy information (useful for
//! collision safety) survives.

use metaverse_privacy::bystander::{
    bystander_localization_error, scan_with_known_bystanders, scrub_scan, ScrubPolicy,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

/// Runs E15.
pub fn run(seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "bystander scrubbing (8×6 m room, 3 bystanders, 1200 scan points, 20 trials)",
        &["policy", "points kept", "precise person pts", "mean localisation err (m)"],
    );

    let policies = [
        ScrubPolicy::None,
        ScrubPolicy::Coarsen { cell: 1.0 },
        ScrubPolicy::Coarsen { cell: 3.0 },
        ScrubPolicy::Remove,
    ];

    for policy in policies {
        let mut kept = 0usize;
        let mut input = 0usize;
        let mut precise = 0usize;
        let mut errors = Vec::new();
        for trial in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed + trial);
            let (scan, centres) = scan_with_known_bystanders(8.0, 6.0, 3, 1200, &mut rng);
            let (scrubbed, report) = scrub_scan(&scan, policy);
            kept += report.output_points;
            input += report.input_points;
            precise += report.precise_person_points;
            if let Some(err) = bystander_localization_error(&scrubbed, &centres) {
                errors.push(err);
            }
        }
        let mean_err = if errors.is_empty() {
            f64::INFINITY
        } else {
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        let label = match policy {
            ScrubPolicy::None => "none".to_string(),
            ScrubPolicy::Remove => "remove".to_string(),
            ScrubPolicy::Coarsen { cell } => format!("coarsen({cell:.0}m)"),
        };
        table.row(vec![
            label,
            format!("{:.2}", kept as f64 / input as f64),
            precise.to_string(),
            if mean_err.is_finite() { f3(mean_err) } else { "∞ (no signal)".into() },
        ]);
    }

    ExperimentResult {
        id: "E15".into(),
        title: "Bystander protection for spatial scans".into(),
        claim: "Sensor scans capture bystanders who never consented; on-device processing \
                should protect them (§II-A, §II-D)"
            .into(),
        tables: vec![table],
        notes: vec![
            "raw scans localise every bystander to centimetres; removal gives perfect \
             protection but loses the occupancy signal collision-safety features need"
                .into(),
            "coarsening is the compromise: the localisation error scales with the cell size \
             while every point (and thus occupancy) is retained — the in-sensor processing \
             practice the paper advocates"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrubbing_degrades_localisation_monotonically() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let err = |i: usize| rows[i][3].parse::<f64>().unwrap_or(f64::INFINITY);
        assert!(err(0) < 0.2, "raw scans leak: {}", rows[0][3]);
        assert!(err(1) > err(0), "1 m cells worse for the observer");
        assert!(err(2) > err(1), "3 m cells worse still");
        assert_eq!(rows[3][3], "∞ (no signal)", "removal leaves nothing");
        // Coarsening keeps all points; removal drops them.
        assert_eq!(rows[1][1], "1.00");
        assert!(rows[3][1].parse::<f64>().unwrap() < 1.0);
    }
}
