//! E8 — moderator capacity vs. community growth.
//!
//! Claim (§III): "moderators […] cannot keep up with the demand" as
//! communities grow; platforms add automation and member reports. The
//! experiment sweeps community size against a fixed human pool, then
//! sweeps the automation fraction as the rescue, reporting backlog and
//! report staleness.

use metaverse_moderation::pipeline::{ModerationPipeline, PipelineConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{ExperimentResult, Table};

const TICKS: u64 = 250;

/// Runs E8.
pub fn run(seed: u64) -> ExperimentResult {
    let mut growth_table = Table::new(
        "fixed pool (5 moderators × 2/tick) vs community size, 250 ticks",
        &["members", "arrivals/tick", "final backlog", "oldest report age"],
    );
    for &size in &[500usize, 1000, 2000, 4000, 8000] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pipeline = ModerationPipeline::new(PipelineConfig {
            community_size: size,
            ..PipelineConfig::default()
        });
        let series = pipeline.run(TICKS, &mut rng);
        let last = series.last().unwrap();
        growth_table.row(vec![
            size.to_string(),
            format!("{:.1}", size as f64 * 0.01),
            last.backlog.to_string(),
            last.oldest_age.to_string(),
        ]);
    }

    let mut automation_table = Table::new(
        "8000 members, automation fraction sweep (accuracy 0.9)",
        &["automation", "final backlog", "oldest age", "auto errors"],
    );
    for &coverage in &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pipeline = ModerationPipeline::new(PipelineConfig {
            community_size: 8000,
            automation_coverage: coverage,
            ..PipelineConfig::default()
        });
        let series = pipeline.run(TICKS, &mut rng);
        let last = series.last().unwrap();
        automation_table.row(vec![
            format!("{coverage:.2}"),
            last.backlog.to_string(),
            last.oldest_age.to_string(),
            pipeline.auto_errors().to_string(),
        ]);
    }

    ExperimentResult {
        id: "E8".into(),
        title: "Moderation backlog vs community growth and automation".into(),
        claim: "Moderators cannot keep up with community growth; automation tools and member \
                reports are the response (§III)"
            .into(),
        tables: vec![growth_table, automation_table],
        notes: vec![
            "once arrivals exceed the human pool's 10 reports/tick, backlog and report \
             staleness grow without bound — the paper's 'cannot keep up', quantified"
                .into(),
            "automation rescues throughput but buys it with classification errors \
             (≈10% of auto-resolved reports), reproducing the accuracy/scale trade-off \
             behind the paper's call for explainable, auditable AI moderation"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_grows_with_size() {
        let result = run(7);
        let backlogs: Vec<u64> =
            result.tables[0].rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(backlogs[0] < 50, "small community keeps up: {backlogs:?}");
        assert!(backlogs[4] > backlogs[2], "overload grows: {backlogs:?}");
    }

    #[test]
    fn automation_shrinks_backlog_but_adds_errors() {
        let result = run(7);
        let rows = &result.tables[1].rows;
        let backlog = |i: usize| rows[i][1].parse::<u64>().unwrap();
        let errors = |i: usize| rows[i][3].parse::<u64>().unwrap();
        assert!(backlog(5) < backlog(0) / 10);
        assert!(errors(5) > errors(0));
        assert_eq!(errors(0), 0);
    }
}
