//! E21 — sharded gateway throughput and cross-shard conservation.
//!
//! Claim (§II / §VI): "the metaverse" is not one platform but many
//! interoperating ones, and the governance properties the paper argues
//! for — accountable asset ownership, auditable token flows, refusals
//! that are typed rather than silent — must survive *sharding*. This
//! experiment replays one seeded multi-user workload (the same op
//! stream, byte for byte) through a [`ShardRouter`] at 1, 2, 4, and 8
//! shards and measures what sharding buys and what it must not change:
//!
//! * **throughput** — wall-clock ops/s of the batched epoch pipeline
//!   (non-deterministic, excluded from the determinism gates);
//! * **conservation** — the [`ConservationReport`] (token supply =
//!   wallets + escrow; every minted asset has exactly one owner) must
//!   be *identical* at every shard count, even though at 8 shards
//!   purchases and ratings cross shard boundaries through the
//!   settlement queue;
//! * **batching** — per-shard batch latency from the shared telemetry
//!   hub, showing the work actually spreading across shards.

use std::time::Instant;

use metaverse_gateway::router::{ConservationReport, GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{DriveReport, WorkloadConfig, WorkloadEngine};
use metaverse_telemetry::{names, TelemetrySnapshot};

use crate::report::{ExperimentResult, Table};

/// Shard counts the workload is replayed at.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct users in the workload (each registers first).
const USERS: usize = 512;
/// Mixed ops generated after the registers.
const OPS: usize = 120_000;
/// Submissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2048;

/// One replay of the stream at a fixed shard count.
struct Run {
    shards: usize,
    drive: DriveReport,
    conservation: ConservationReport,
    snapshot: TelemetrySnapshot,
    settled_applied: u64,
    settled_rejected: u64,
    elapsed_ns: u128,
}

fn replay(seed: u64, shards: usize, users: usize, ops: usize, per_epoch: usize, depth: usize) -> Run {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            // Generous admission: E21 measures the execution pipeline, so
            // only the hottest zipf users should ever hit the rate limit.
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(depth)
            .build(),
    );
    let started = Instant::now();
    let drive = engine.drive(&mut router, per_epoch);
    let elapsed_ns = started.elapsed().as_nanos();
    let ledger = router.settlement_ledger();
    Run {
        shards,
        conservation: router.conservation_report(),
        snapshot: router.telemetry_snapshot(),
        settled_applied: ledger.applied,
        settled_rejected: ledger.rejected,
        drive,
        elapsed_ns,
    }
}

fn kops_per_sec(ops: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (ops as f64) / (elapsed_ns as f64 / 1e9) / 1e3
}

/// Runs E21 at the full committed size. Key-tree depth scales down
/// with shard count — blocks spread across shards, so the single-shard
/// replay needs ~2^10 signatures where the 8-shard one needs ~2^8 —
/// keeping keygen (exponential in depth) off the critical path. Depth
/// never affects outcomes, only signing capacity.
pub fn run(seed: u64) -> ExperimentResult {
    run_with(seed, USERS, OPS, OPS_PER_EPOCH, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E21 with explicit sizing (tests use a small stream and a
/// shallow per-validator key tree to keep shard setup cheap).
pub fn run_sized(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    key_tree_depth: usize,
) -> ExperimentResult {
    run_with(seed, users, ops, per_epoch, |_| key_tree_depth)
}

fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let runs: Vec<Run> = SHARD_COUNTS
        .iter()
        .map(|&n| replay(seed, n, users, ops, per_epoch, depth_for(n)))
        .collect();

    let mut throughput = Table::new(
        "one seeded op stream replayed per shard count (kops/s is wall-clock; all other columns are seed-deterministic)",
        &[
            "shards", "submitted", "accepted", "rejected", "committed", "failed", "epochs",
            "settled x-shard", "refused x-shard", "kops/s",
        ],
    );
    for run in &runs {
        throughput.row(vec![
            run.shards.to_string(),
            run.drive.submitted.to_string(),
            run.drive.accepted.to_string(),
            run.drive.rejected.to_string(),
            run.drive.committed.to_string(),
            run.drive.failed.to_string(),
            run.drive.epochs.to_string(),
            run.settled_applied.to_string(),
            run.settled_rejected.to_string(),
            format!("{:.1}", kops_per_sec(run.drive.accepted, run.elapsed_ns)),
        ]);
    }

    let mut conservation = Table::new(
        "conservation audit — identical at every shard count by construction",
        &[
            "shards", "users", "minted tokens", "in wallets", "in escrow", "assets",
            "single-owner", "conserved",
        ],
    );
    for run in &runs {
        let c = &run.conservation;
        conservation.row(vec![
            run.shards.to_string(),
            c.users.to_string(),
            c.tokens_minted.to_string(),
            c.tokens_on_shards.to_string(),
            c.tokens_in_flight.to_string(),
            c.assets_minted.to_string(),
            c.assets_single_owner.to_string(),
            c.conserved.to_string(),
        ]);
    }

    let eight = runs.last().expect("shard counts are non-empty");
    let mut batches = Table::new(
        "per-shard batch execution at 8 shards (ns columns are wall-clock)",
        &["shard", "batches", "p50 ns", "p99 ns"],
    );
    for shard in 0..eight.shards {
        let hist = &eight.snapshot.histograms[&names::gateway::shard_batch_ns(shard)];
        batches.row(vec![
            shard.to_string(),
            hist.count.to_string(),
            hist.quantile(0.5).to_string(),
            hist.quantile(0.99).to_string(),
        ]);
    }

    let single = &runs[0];
    let invariant = runs.iter().all(|r| r.conservation == single.conservation);
    let all_conserved = runs.iter().all(|r| r.conservation.conserved);
    let speedup = if eight.elapsed_ns > 0 {
        single.elapsed_ns as f64 / eight.elapsed_ns as f64
    } else {
        1.0
    };
    let rate_limited = eight
        .snapshot
        .counters
        .get(names::gateway::REJECTED_RATE_LIMITED)
        .copied()
        .unwrap_or(0);

    ExperimentResult {
        id: "E21".into(),
        title: "Sharded gateway: throughput scaling with conserved global invariants".into(),
        claim: "Sharding the platform multiplies batched op throughput while token supply \
                and asset ownership stay exactly conserved — the same seeded stream yields \
                the identical conservation audit at 1, 2, 4, and 8 shards (§II, §VI)"
            .into(),
        tables: vec![throughput, conservation, batches],
        notes: vec![
            format!(
                "conservation audit {} across shard counts {{1, 2, 4, 8}} and {} on every run \
                 (supply = wallets + escrow; every minted asset has exactly one owner)",
                if invariant { "is IDENTICAL" } else { "DIVERGED" },
                if all_conserved { "balanced exactly" } else { "FAILED to balance" },
            ),
            format!(
                "the 8-shard gateway executed {} of {} submitted ops ({} admission refusals, \
                 all typed) in {} epochs, settling {} cross-shard effects ({} refused and \
                 refunded) — the 1-shard run settles {} because nothing crosses shards",
                eight.drive.committed,
                eight.drive.submitted,
                eight.drive.rejected,
                eight.drive.epochs,
                eight.settled_applied,
                eight.settled_rejected,
                single.settled_applied,
            ),
            format!(
                "wall-clock speedup at 8 shards over 1: {speedup:.2}x (single-threaded \
                 batching — the win is smaller mailbox drains and per-shard epoch \
                 pipelines, not parallelism); {rate_limited} ops were rate-limited at the \
                 hottest zipf sessions",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Everything except the wall-clock kops/s column.
    fn deterministic_throughput_cols(result: &ExperimentResult) -> Vec<Vec<String>> {
        result.tables[0].rows.iter().map(|r| r[..9].to_vec()).collect()
    }

    #[test]
    fn conservation_is_identical_across_shard_counts() {
        let result = run_sized(7, 48, 3_000, 256, 6);
        assert!(result.notes[0].contains("IDENTICAL"), "{}", result.notes[0]);
        assert!(result.notes[0].contains("balanced exactly"), "{}", result.notes[0]);
        let rows = &result.tables[1].rows;
        assert_eq!(rows.len(), SHARD_COUNTS.len());
        for row in rows {
            assert_eq!(row[1..], rows[0][1..], "conservation diverged: {row:?}");
            assert_eq!(row[7], "true");
        }
    }

    #[test]
    fn counters_deterministic_in_the_seed() {
        let a = run_sized(11, 48, 3_000, 256, 6);
        let b = run_sized(11, 48, 3_000, 256, 6);
        assert_eq!(deterministic_throughput_cols(&a), deterministic_throughput_cols(&b));
        assert_eq!(a.tables[1].rows, b.tables[1].rows);
    }

    #[test]
    fn work_spreads_across_all_eight_shards() {
        let result = run_sized(7, 48, 3_000, 256, 6);
        let batches = &result.tables[2].rows;
        assert_eq!(batches.len(), 8);
        for row in batches {
            assert!(row[1].parse::<u64>().unwrap() > 0, "idle shard: {row:?}");
        }
    }
}
