//! E24 — replicated quorum commit under the fault matrix.
//!
//! Claim (§IV / §VI): decentralized governance of virtual assets needs
//! commit infrastructure that keeps its audit trail intact when
//! individual validators misbehave — availability faults must never
//! become integrity faults. This experiment replays one seeded 120k-op
//! stream at 1, 2, 4, and 8 shards with every shard's chain replicated
//! across 3 simulated validators, under a four-case fault matrix:
//!
//! * **none** — the fault-free baseline;
//! * **leader crash** — each shard's initial leader crashes mid-run and
//!   later restarts with its log (failover + catch-up path);
//! * **f=1 partition** — one follower per shard is partitioned away and
//!   heals (quorum-of-2 path);
//! * **ack delay** — one follower's acks are delayed and another's
//!   briefly dropped (latency-accounting path).
//!
//! Measured per cell: commit latency in ticks (mean / max over every
//! quorum certificate), failover ticks where elections happened, and
//! the **identical audit** verdict — the settlement ledger,
//! conservation report, and drive report must be byte-identical to the
//! fault-free unreplicated baseline at the same shard count. That
//! verdict is what CI gates on: replication (and its faults, within
//! f = 1) is observationally invisible to the platform's audit.

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_replication::{ReplicationConfig, ReplicationStats};
use metaverse_resilience::{FaultKind, FaultPlan};
use metaverse_telemetry::names;

use crate::report::{ExperimentResult, Table};

/// Shard counts the stream is replayed at (same as E21/E22).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct users in the workload (each registers first).
const USERS: usize = 512;
/// Mixed ops generated after the registers.
const OPS: usize = 120_000;
/// Submissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2048;

/// The fault matrix, one row per case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultCase {
    None,
    LeaderCrash,
    Partition,
    AckDelay,
}

impl FaultCase {
    const ALL: [FaultCase; 4] =
        [FaultCase::None, FaultCase::LeaderCrash, FaultCase::Partition, FaultCase::AckDelay];

    fn label(self) -> &'static str {
        match self {
            FaultCase::None => "none",
            FaultCase::LeaderCrash => "leader crash",
            FaultCase::Partition => "f=1 partition",
            FaultCase::AckDelay => "ack delay",
        }
    }

    /// The validator fault plan for `shard`'s cluster, windowed a few
    /// epochs into the run (tick ≈ epoch at `epoch_ticks = 1`) so the
    /// stream exercises both the fault and the recovery.
    fn plan(self, shard: usize) -> Option<FaultPlan> {
        let v = |index: usize| format!("s{shard}-v{index}");
        match self {
            FaultCase::None => None,
            FaultCase::LeaderCrash => Some(
                FaultPlan::new().schedule(4, 8, FaultKind::ValidatorCrash { validator: v(0) }),
            ),
            FaultCase::Partition => Some(
                FaultPlan::new()
                    .schedule(4, 8, FaultKind::ValidatorPartition { validator: v(1) }),
            ),
            FaultCase::AckDelay => Some(
                FaultPlan::new()
                    .schedule(4, 12, FaultKind::AckDelay { validator: v(2), delay: 3 })
                    .schedule(6, 4, FaultKind::AckDrop { validator: v(1) }),
            ),
        }
    }
}

/// One replay of the stream: the audit fingerprint plus, when
/// replicated, the protocol's stats and latency histograms.
struct Run {
    audit: String,
    stats: Option<ReplicationStats>,
    latency_sum: u64,
    latency_count: u64,
    latency_max: u64,
    failover_count: u64,
    failover_max: u64,
}

/// One cell's sizing: stream dimensions plus the per-shard key-tree
/// depth.
#[derive(Clone, Copy)]
struct Sizing {
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth: usize,
}

fn replay(seed: u64, shards: usize, sizing: Sizing, replicated: bool, case: FaultCase) -> Run {
    let Sizing { users, ops, per_epoch, depth } = sizing;
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let mut builder = GatewayConfig::builder()
        .shards(shards)
        // Generous admission, as in E21/E22: this measures the commit
        // layer, not the rate limiter.
        .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
        .mailbox_capacity(4096)
        .key_tree_depth(depth);
    if replicated {
        builder = builder.replication(ReplicationConfig::default());
    }
    let mut router = ShardRouter::new(builder.build());
    if replicated {
        for shard in 0..shards {
            if let Some(plan) = case.plan(shard) {
                router.install_validator_fault_plan(shard, plan);
            }
        }
    }
    let drive = engine.drive(&mut router, per_epoch);
    let audit = format!(
        "{drive:?}\n{:?}\n{:?}",
        router.settlement_ledger(),
        router.conservation_report(),
    );
    let mut run = Run {
        audit,
        stats: router.replication_stats(),
        latency_sum: 0,
        latency_count: 0,
        latency_max: 0,
        failover_count: 0,
        failover_max: 0,
    };
    for shard in 0..shards {
        let snap = router.shard_platform(shard).telemetry_snapshot();
        if let Some(h) = snap.histograms.get(names::replication::COMMIT_LATENCY_TICKS) {
            run.latency_sum += h.sum;
            run.latency_count += h.count;
            run.latency_max = run.latency_max.max(h.max);
        }
        if let Some(h) = snap.histograms.get(names::replication::FAILOVER_TICKS) {
            run.failover_count += h.count;
            run.failover_max = run.failover_max.max(h.max);
        }
    }
    run
}

fn mean(sum: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

/// Runs E24 at the full committed size (E21's stream). Key-tree depth
/// scales down with shard count exactly as in E21/E22.
pub fn run(seed: u64) -> ExperimentResult {
    run_with(seed, USERS, OPS, OPS_PER_EPOCH, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E24 with explicit sizing (tests use a small stream and shallow
/// key trees to keep shard setup cheap).
pub fn run_sized(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    key_tree_depth: usize,
) -> ExperimentResult {
    run_with(seed, users, ops, per_epoch, |_| key_tree_depth)
}

fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let mut matrix = Table::new(
        "one seeded op stream per shard count, 3 validators per shard; every cell's audit \
         (settlement ledger + conservation + drive report) is compared byte-for-byte to the \
         unreplicated fault-free baseline at the same shard count",
        &[
            "shards", "fault", "proposed", "committed", "quorum rate", "elections", "catch-ups",
            "acks lost", "commit lat (mean/max ticks)", "failover (n/max ticks)",
            "identical audit",
        ],
    );
    let mut all_identical = true;
    let mut all_quorum = true;
    let mut worst_failover = 0u64;
    for &shards in &SHARD_COUNTS {
        let sizing = Sizing { users, ops, per_epoch, depth: depth_for(shards) };
        let baseline = replay(seed, shards, sizing, false, FaultCase::None);
        for case in FaultCase::ALL {
            let run = replay(seed, shards, sizing, true, case);
            let identical = run.audit == baseline.audit;
            all_identical &= identical;
            let stats = run.stats.unwrap_or_default();
            let quorum_ok = stats.blocks_proposed == stats.blocks_committed;
            all_quorum &= quorum_ok;
            worst_failover = worst_failover.max(run.failover_max);
            matrix.row(vec![
                shards.to_string(),
                case.label().to_string(),
                stats.blocks_proposed.to_string(),
                stats.blocks_committed.to_string(),
                if quorum_ok { "100%".into() } else { "PARTIAL".into() },
                stats.leader_elections.to_string(),
                stats.catch_ups.to_string(),
                stats.acks_lost.to_string(),
                format!(
                    "{:.2}/{}",
                    mean(run.latency_sum, run.latency_count),
                    run.latency_max
                ),
                format!("{}/{}", run.failover_count, run.failover_max),
                identical.to_string(),
            ]);
        }
    }

    ExperimentResult {
        id: "E24".into(),
        title: "Quorum-commit replication: failover and catch-up with a byte-identical audit"
            .into(),
        claim: "Replicating every shard's chain across 3 validators — and crashing, \
                partitioning, or delaying any single one of them mid-run — changes nothing \
                the platform audits: the settlement ledger, conservation report, and drive \
                report stay byte-identical to the unreplicated fault-free baseline at every \
                shard count, while every sealed block still reaches quorum (§IV, §VI)"
            .into(),
        tables: vec![matrix],
        notes: vec![
            format!(
                "identical-audit gate: every fault-matrix cell is {} with the unreplicated \
                 fault-free baseline at its shard count, and quorum commit is {} in every cell",
                if all_identical { "BYTE-IDENTICAL" } else { "DIVERGENT" },
                if all_quorum { "100%" } else { "PARTIAL" },
            ),
            format!(
                "failover latency is bounded by the election timeout ({} ticks by default): \
                 worst observed failover across the whole matrix was {worst_failover} ticks, \
                 accounted into the affected block's commit latency rather than stalling the \
                 platform clock",
                ReplicationConfig::default().election_timeout,
            ),
            "replication is an observational overlay on the sealed chain: leaders propose \
             after the platform's own epoch commit, follower acks and elections are \
             simulated on the deterministic tick clock, and no replication outcome feeds \
             back into op execution — which is why the audit byte-identity holds by \
             construction and CI can gate on it"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_matrix_audits_are_identical_and_quorum_holds() {
        let result = run_sized(7, 48, 3_000, 256, 6);
        assert!(result.notes[0].contains("BYTE-IDENTICAL"), "{}", result.notes[0]);
        assert!(result.notes[0].contains("100%"), "{}", result.notes[0]);
        for row in &result.tables[0].rows {
            assert_eq!(row[4], "100%", "quorum missed: {row:?}");
            assert_eq!(row[10], "true", "audit diverged: {row:?}");
        }
    }

    #[test]
    fn leader_crash_rows_report_failover_ticks() {
        let result = run_sized(13, 48, 3_000, 256, 6);
        let crash_rows: Vec<_> = result.tables[0]
            .rows
            .iter()
            .filter(|row| row[1] == "leader crash")
            .collect();
        assert_eq!(crash_rows.len(), SHARD_COUNTS.len());
        for row in crash_rows {
            assert_ne!(row[5], "0", "a crashed leader must force an election: {row:?}");
            assert_ne!(row[9], "0/0", "failover latency must be recorded: {row:?}");
        }
    }
}
