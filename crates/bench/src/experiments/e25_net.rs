//! E25 — the network front door: tens of thousands of simulated client
//! connections served through the readiness loop, with the admission
//! journal proving the run replayable.
//!
//! Claim (§II / §VI): a governable metaverse platform must meet its
//! users at a *wire*, and nothing about crossing that wire may cost
//! auditability. This experiment drives one seeded op stream through
//! [`NetServer`] as a fleet of framed, chunk-split, backpressured
//! simulated connections — at 1, 2, 4, and 8 shards and at 2,500 and
//! 10,000 concurrent connections — and measures:
//!
//! * **throughput** — wall-clock kops/s of the full serve loop (read,
//!   decode, admit, ack, epoch), non-deterministic;
//! * **admission latency** — p50/p99 wall-clock nanoseconds around the
//!   `ingress_wire` call itself, reported but never branched on;
//! * **replayability** — the cell's admission journal, replayed into a
//!   fresh offline router (no sockets, no clock), must reproduce the
//!   settlement ledger, conservation audit, and op-trace stream byte
//!   for byte. This is the deterministic half CI gates on.

use std::time::Instant;

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_net::{sim_clients, AdmissionJournal, NetServer, NetServerConfig};
use metaverse_resilience::FaultPlan;

use crate::report::{ExperimentResult, Table};

/// Shard counts each fleet is served at.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Concurrent simulated connections per fleet (one user per conn).
const CONN_COUNTS: [usize; 2] = [2_500, 10_000];
/// Mixed ops generated after the per-user registers.
const OPS_PER_CONN: usize = 3;
/// Admissions between epoch boundaries.
const OPS_PER_EPOCH: u64 = 2048;
/// Flight-recorder capacity: holds every event of the largest cell.
const TRACE_CAPACITY: usize = 1 << 18;
/// Largest read the simulated streams deliver in one chunk.
const MAX_CHUNK: usize = 4096;

/// One served fleet at a fixed shard and connection count.
struct Run {
    shards: usize,
    conns: usize,
    offers: u64,
    admitted: u64,
    refused: u64,
    epochs: u64,
    sweeps: u64,
    journal_bytes: usize,
    p50_ns: u64,
    p99_ns: u64,
    elapsed_ns: u128,
    /// Offline replay reproduced the audit byte-for-byte.
    replay_identical: bool,
}

/// The router every cell (and its offline replay) starts from:
/// generous admission — E25 measures the serving layer, not the rate
/// limiter — and tracing on, so the replay gate covers the trace
/// stream too.
fn router(shards: usize, depth: usize) -> ShardRouter {
    ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .tracing(TRACE_CAPACITY)
            .key_tree_depth(depth)
            .build(),
    )
}

/// The audited fingerprint the replay gate compares byte-for-byte.
fn fingerprint(router: &mut ShardRouter) -> String {
    let trace = router.trace_jsonl();
    format!("{:?}\n{:?}\n{trace}", router.settlement_ledger(), router.conservation_report())
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn serve(seed: u64, shards: usize, conns: usize, ops_per_conn: usize, depth: usize) -> Run {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: conns,
        ops: conns * ops_per_conn,
        seed,
        ..WorkloadConfig::default()
    });
    let mut server = NetServer::new(
        router(shards, depth),
        NetServerConfig { ops_per_epoch: OPS_PER_EPOCH, ..NetServerConfig::default() },
    );
    for stream in sim_clients(&engine, conns, seed, MAX_CHUNK, &FaultPlan::new()) {
        server.accept(stream);
    }
    let expected = engine.generate().len() as u64;
    let started = Instant::now();
    let report = server.run_to_completion();
    let elapsed_ns = started.elapsed().as_nanos();
    assert!(!report.stalled, "E25 fleet failed to drain: {report:?}");
    assert_eq!(
        report.admitted, expected,
        "every generated op must eventually be admitted (refusals park and retry)"
    );

    let mut latencies = server.admission_latencies_ns().to_vec();
    latencies.sort_unstable();
    let (mut live, journal) = server.into_parts();

    // The replay gate: journal bytes → fresh router → identical audit.
    let journal_bytes = journal.to_bytes();
    let journal = AdmissionJournal::from_bytes(&journal_bytes).expect("journal round-trips");
    let mut offline = router(shards, depth);
    let replayed = journal.replay_into(&mut offline);
    let replay_identical =
        replayed.divergences == 0 && fingerprint(&mut live) == fingerprint(&mut offline);

    Run {
        shards,
        conns,
        offers: report.offers,
        admitted: report.admitted,
        refused: report.refused,
        epochs: report.epochs,
        sweeps: report.sweeps,
        journal_bytes: journal_bytes.len(),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        elapsed_ns,
        replay_identical,
    }
}

fn kops_per_sec(ops: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (ops as f64) / (elapsed_ns as f64 / 1e9) / 1e3
}

/// Runs E25 at the full committed size. Key-tree depth scales down
/// with shard count exactly as in E21 — depth never affects outcomes,
/// only per-shard signing capacity.
pub fn run(seed: u64) -> ExperimentResult {
    run_with(seed, &CONN_COUNTS, OPS_PER_CONN, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E25 with explicit sizing (tests use a small fleet and shallow
/// key trees to keep shard setup cheap).
pub fn run_sized(
    seed: u64,
    conn_counts: &[usize],
    ops_per_conn: usize,
    key_tree_depth: usize,
) -> ExperimentResult {
    run_with(seed, conn_counts, ops_per_conn, |_| key_tree_depth)
}

fn run_with(
    seed: u64,
    conn_counts: &[usize],
    ops_per_conn: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let runs: Vec<Run> = conn_counts
        .iter()
        .flat_map(|&conns| {
            SHARD_COUNTS
                .iter()
                .map(move |&shards| (shards, conns))
                .collect::<Vec<_>>()
        })
        .map(|(shards, conns)| serve(seed, shards, conns, ops_per_conn, depth_for(shards)))
        .collect();

    let mut table = Table::new(
        "one seeded fleet per cell, served through the readiness loop (kops/s and ns \
         columns are wall-clock; offers/admitted/epochs and the replay verdict are \
         seed-deterministic)",
        &[
            "conns", "shards", "offers", "admitted", "refused", "epochs", "sweeps",
            "journal KiB", "kops/s", "p50 adm ns", "p99 adm ns", "replay",
        ],
    );
    for run in &runs {
        table.row(vec![
            run.conns.to_string(),
            run.shards.to_string(),
            run.offers.to_string(),
            run.admitted.to_string(),
            run.refused.to_string(),
            run.epochs.to_string(),
            run.sweeps.to_string(),
            (run.journal_bytes / 1024).to_string(),
            format!("{:.1}", kops_per_sec(run.admitted, run.elapsed_ns)),
            run.p50_ns.to_string(),
            run.p99_ns.to_string(),
            if run.replay_identical { "identical".into() } else { "DIVERGED".into() },
        ]);
    }

    let all_replayed = runs.iter().all(|r| r.replay_identical);
    let first_try = runs.iter().all(|r| r.refused == 0);
    let worst_refused = runs.iter().map(|r| r.refused).max().unwrap_or(0);
    let max_conns = runs.iter().map(|r| r.conns).max().unwrap_or(0);
    let worst_p99 = runs.iter().map(|r| r.p99_ns).max().unwrap_or(0);

    ExperimentResult {
        id: "E25".into(),
        title: "Network front door: connection-oriented serving with a replayable \
                admission journal"
            .into(),
        claim: "A wire-framed serving layer can carry tens of thousands of concurrent \
                client connections into the deterministic epoch core without losing \
                auditability — every cell's admission journal replays offline to a \
                byte-identical settlement ledger, conservation audit, and trace stream \
                (§II, §VI)"
            .into(),
        tables: vec![table],
        notes: vec![
            format!(
                "replay gate: {} — every cell's journal replayed into a fresh router \
                 reproduced the audit byte-for-byte",
                if all_replayed { "HELD" } else { "FAILED" }
            ),
            format!(
                "largest fleet served: {max_conns} concurrent connections; worst-cell \
                 p99 admission latency {worst_p99} ns (wall-clock, reporting only)"
            ),
            format!(
                "admission health: {} — a refusal parks the connection and the op is \
                 re-offered next sweep, so nothing is dropped (asserted per cell: \
                 admitted = every generated op)",
                if first_try {
                    "every offer admitted on first try".to_string()
                } else {
                    format!(
                        "transient rate-limit refusals only (worst cell re-offered \
                         {worst_refused} ops)"
                    )
                }
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape gate: a small fleet replays byte-identically at every
    /// shard count and renders the full table.
    #[test]
    fn small_fleet_replays_and_renders() {
        let result = run_sized(7, &[64], 3, 5);
        assert_eq!(result.id, "E25");
        assert_eq!(result.tables[0].rows.len(), SHARD_COUNTS.len());
        assert!(
            result.notes.iter().any(|n| n.contains("replay gate: HELD")),
            "replay gate must hold: {result:?}"
        );
    }
}
