//! E18 — reputation as an attack counterbalance.
//!
//! Claim (§IV-C): "A reputation-based system under the Blockchain will
//! enable the metaverse with a tool to counterbalance attacks during
//! decision-making processes." Three attacks are mounted against the
//! reputation system and the governance it weights:
//!
//! 1. **Sybil bury** — puppet accounts mass-report a victim;
//! 2. **whitewashing** — a sanctioned account re-registers to shed its
//!    history (swept over the newcomer prior);
//! 3. **governance takeover** — a Sybil swarm votes as a bloc, under
//!    flat 1p1v versus reputation-weighted ballots.

use metaverse_dao::dao::{Dao, DaoConfig};
use metaverse_dao::voting::{Choice, VotingScheme};
use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use metaverse_reputation::sybil::{SybilAttack, WhitewashAttack};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

fn engine(prior_millis: i64) -> ReputationEngine {
    let mut e = ReputationEngine::new(EngineConfig {
        neutral_prior_millis: prior_millis,
        min_rater_weight: 0.05,
        epoch_action_limit: 100,
        decay_half_life: 0,
        ..EngineConfig::default()
    });
    e.register("victim", 0).unwrap();
    e
}

/// Governance takeover: `sybils` puppets vote yes, 5 established
/// members vote no. Returns whether the attack wins.
fn takeover(sybils: usize, weighted: bool, prior_millis: i64) -> bool {
    let mut reputation = ReputationEngine::new(EngineConfig {
        neutral_prior_millis: prior_millis,
        epoch_action_limit: u32::MAX,
        decay_half_life: 0,
        ..EngineConfig::default()
    });
    let scheme = if weighted {
        VotingScheme::ExternalWeighted
    } else {
        VotingScheme::OnePersonOneVote
    };
    let mut dao = Dao::new("gov", DaoConfig { scheme, ..DaoConfig::default() });
    for m in 0..5 {
        let name = format!("member-{m}");
        reputation.register(&name, 0).unwrap();
        reputation.system_delta(&name, 55_000, "history", 0).unwrap();
        dao.add_member(&name).unwrap();
    }
    for s in 0..sybils {
        let name = format!("sybil-{s}");
        reputation.register(&name, 0).unwrap();
        dao.add_member(&name).unwrap();
    }
    let id = dao.propose("member-0", "attack", 0).unwrap();
    for s in 0..sybils {
        let name = format!("sybil-{s}");
        if weighted {
            let w = reputation.voting_weight(&name, 100).unwrap();
            dao.vote_weighted(&name, id, Choice::Yes, w, 0).unwrap();
        } else {
            dao.vote(&name, id, Choice::Yes, 0).unwrap();
        }
    }
    for m in 0..5 {
        let name = format!("member-{m}");
        if weighted {
            let w = reputation.voting_weight(&name, 100).unwrap();
            dao.vote_weighted(&name, id, Choice::No, w, 0).unwrap();
        } else {
            dao.vote(&name, id, Choice::No, 0).unwrap();
        }
    }
    let tally = dao.tally(id).unwrap();
    tally.yes > tally.no
}

/// Runs E18.
pub fn run(seed: u64) -> ExperimentResult {
    // 1. Sybil bury distortion vs puppet budget.
    let mut bury_table = Table::new(
        "sybil bury: score distortion vs puppet budget (established victim at 50 pts, newcomers enter at 10)",
        &["puppets", "victim before", "victim after", "distortion"],
    );
    for &puppets in &[5usize, 20, 50, 100] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let _ = &mut rng;
        let mut eng = engine(10_000); // low newcomer prior = weak puppets
        // The victim is an established account in good standing.
        eng.system_delta("victim", 40_000, "earned standing", 0).unwrap();
        let attack = SybilAttack {
            puppet_prefix: format!("sybil{puppets}"),
            puppets,
            actions_per_puppet: 1,
        };
        let out = attack.bury(&mut eng, "victim", 0).unwrap();
        bury_table.row(vec![
            puppets.to_string(),
            f3(out.before),
            f3(out.after),
            f3(out.distortion()),
        ]);
    }

    // 2. Whitewashing profitability vs newcomer prior.
    let mut wash_table = Table::new(
        "whitewashing: is abandoning a sanctioned identity profitable?",
        &["newcomer prior", "damaged score", "reborn score", "profitable"],
    );
    for &prior in &[10_000i64, 30_000, 50_000] {
        let mut eng = engine(prior);
        eng.system_delta("victim", -(prior - 5_000), "sanctions", 0).unwrap();
        let attack = WhitewashAttack {
            old_identity: "victim".into(),
            new_identity: "victim-reborn".into(),
        };
        let (old, new) = attack.run(&mut eng, 1).unwrap();
        wash_table.row(vec![
            f3(prior as f64 / 1000.0),
            f3(old),
            f3(new),
            (new > old).to_string(),
        ]);
    }

    // 3. Governance takeover resistance.
    let mut takeover_table = Table::new(
        "governance takeover: sybil bloc vs 5 established members",
        &["sybils", "1p1v wins", "reputation-weighted wins"],
    );
    for &sybils in &[3usize, 10, 30, 100] {
        takeover_table.row(vec![
            sybils.to_string(),
            takeover(sybils, false, 5_000).to_string(),
            takeover(sybils, true, 5_000).to_string(),
        ]);
    }

    ExperimentResult {
        id: "E18".into(),
        title: "Reputation vs Sybil, whitewashing, and takeover attacks".into(),
        claim: "A reputation system counterbalances attacks during decision-making (§IV-C)"
            .into(),
        tables: vec![bury_table, wash_table, takeover_table],
        notes: vec![
            "puppet reports are weight-limited by the puppets' own (low) standing, so even \
             100 puppets cannot zero out an established account the way 100 trusted \
             accounts could"
                .into(),
            "whitewashing pays exactly when the newcomer prior exceeds the damaged score — \
             the quantitative argument for admitting new accounts at modest standing"
                .into(),
            "under 1p1v a 10-sybil bloc already outvotes 5 established members; \
             reputation weighting raises the required swarm by an order of magnitude \
             (holding to 30, falling only at 100) — reputation *counterbalances* but does \
             not replace admission control, which is why the paper pairs it with IRB-style \
             gatekeeping and moderation"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distortion_bounded_and_submodular() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let distortion = |i: usize| rows[i][3].parse::<f64>().unwrap();
        assert!(distortion(0) < distortion(3), "more puppets distort more");
        // 100 one-shot puppet reports at full weight would erase 40 pts;
        // low standing must keep it well below that.
        assert!(
            distortion(3) < 45.0,
            "100 weak puppets cannot erase 50 earned points outright: {}",
            distortion(3)
        );
    }

    #[test]
    fn whitewash_profitability_depends_on_prior() {
        let result = run(7);
        let rows = &result.tables[1].rows;
        // Every swept configuration leaves the damaged score below the
        // fresh prior, so whitewashing pays — the point is the *margin*
        // shrinks as the prior drops.
        let margin = |i: usize| {
            rows[i][2].parse::<f64>().unwrap() - rows[i][1].parse::<f64>().unwrap()
        };
        assert!(margin(0) < margin(2), "low prior shrinks the payoff");
    }

    #[test]
    fn weighted_voting_raises_takeover_cost_by_an_order_of_magnitude() {
        let result = run(7);
        let rows = &result.tables[2].rows;
        let wins = |i: usize, col: usize| rows[i][col] == "true";
        // 1p1v falls at 10 sybils; weighted holds at 10 and 30.
        assert!(wins(1, 1), "1p1v falls to 10 sybils");
        assert!(!wins(1, 2), "weighted holds at 10");
        assert!(!wins(2, 2), "weighted holds at 30");
        // Honest limit: an unbounded swarm (100) eventually wins even
        // weighted — reputation complements, not replaces, admission
        // control.
        assert!(wins(3, 2));
    }
}
